//! Federation integration tests: WAL-shipping replication convergence,
//! proxy routing to the module owner, discovery-driven failover, and
//! lease-based leader elections (promotion, split-brain fencing).

use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens::client::ClientError;
use clarens::config::FederationRole;
use clarens_federation::{federation_pki, FederationCluster, FederationNode, NodeOptions};
use clarens_wire::fault::codes;
use clarens_wire::Value;
use monalisa_sim::station::wait_until;
use monalisa_sim::StationServer;

#[test]
fn two_node_replication_converges() {
    let cluster = FederationCluster::start(2);
    // `user_session` already proves the session record crossed the wire:
    // it waits until the follower authenticates a session minted on the
    // leader.
    let session = cluster.user_session();
    assert_eq!(session.len(), 64);

    // An arbitrary leader-side write lands on the follower via the WAL
    // stream, not via any shared storage.
    let leader_store = std::sync::Arc::clone(&cluster.leader().core().store);
    leader_store
        .put("fedtest", "k1", b"replicate-me".to_vec())
        .expect("leader write");
    let follower_store = std::sync::Arc::clone(&cluster.nodes[1].core().store);
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_store.get("fedtest", "k1").as_deref() == Some(b"replicate-me".as_ref())
        }),
        "leader write never reached the follower"
    );
    assert!(cluster.nodes[1].replication_applied() > 0);

    // The follower's lag gauge drains to zero once it has caught up, and
    // the leader's WAL offset gauge reflects a non-empty log.
    let follower_telemetry = std::sync::Arc::clone(&cluster.nodes[1].core().telemetry);
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_telemetry.gauge("db.replication_lag") == Some(0)
        }),
        "replication lag never drained"
    );
    assert!(cluster.leader().core().telemetry.gauge("db.wal_offset") > Some(0));
    cluster.cleanup();
}

#[test]
fn proxy_call_routes_to_module_owner() {
    let cluster = FederationCluster::start(2);
    let session = cluster.user_session();

    // Only the leader exports the file module; the follower must forward.
    let mut client = cluster.nodes[1].client();
    client.set_session(session.clone());
    let listing = client
        .call(
            "proxy.call",
            vec![
                Value::Str("file.ls".into()),
                Value::Array(vec![Value::Str("/".into())]),
            ],
        )
        .expect("proxied file.ls");
    assert!(matches!(listing, Value::Array(_)));
    let follower_core = cluster.nodes[1].core();
    assert!(follower_core.telemetry.federation.forwarded.get() >= 1);
    assert_eq!(follower_core.telemetry.federation.forward_failures.get(), 0);

    // A method no node in the federation exports is a fault, not a hang.
    let err = client
        .call("proxy.call", vec![Value::Str("nosuch.method".into())])
        .expect_err("unroutable method");
    assert!(matches!(err, ClientError::Fault(_)));
    cluster.cleanup();
}

#[test]
fn balanced_client_fails_over_when_its_node_dies() {
    let mut cluster = FederationCluster::start(3);
    let session = cluster.user_session();
    let mut client = cluster
        .balanced_client(&session, 0x5EED)
        .with_call_deadline(Duration::from_secs(2));

    let mut wrong = 0u64;
    let echo = |client: &mut clarens_federation::BalancedClient, i: u64, wrong: &mut u64| {
        let payload = format!("fed-{i}");
        match client.call("echo.echo", vec![Value::Str(payload.clone())]) {
            Ok(Value::Str(s)) if s == payload => {}
            _ => *wrong += 1,
        }
    };
    for i in 0..10 {
        echo(&mut client, i, &mut wrong);
    }
    assert_eq!(wrong, 0, "healthy cluster returned wrong answers");

    // Kill the node the client is pinned to: the next calls must fail
    // over to a surviving node via discovery re-resolution.
    let pinned = client
        .current_url()
        .expect("pinned after calls")
        .to_string();
    let index = cluster
        .nodes
        .iter()
        .position(|n| n.url == pinned)
        .expect("pinned node in cluster");
    let killed = cluster.kill(index);
    for i in 10..30 {
        echo(&mut client, i, &mut wrong);
    }
    assert_eq!(wrong, 0, "failover produced wrong answers");
    assert!(client.failovers() >= 1, "client never failed over");
    assert!(client.resolutions() >= 2, "client never re-resolved");
    assert_ne!(client.current_url(), Some(killed.as_str()));
    cluster.cleanup();
}

#[test]
fn leader_failover_promotes_follower_without_losing_acked_writes() {
    let mut cluster = FederationCluster::start_elections(3, 500, 100);
    // The session is an acked replicated write: `user_session` returns
    // only after every node authenticates it.
    let session = cluster.user_session();
    let old_index = cluster.leader_index().expect("initial leader");
    let old_addr = cluster.nodes[old_index].addr.clone();
    let old_epoch = cluster.nodes[old_index].core().federation.epoch();
    assert!(old_epoch >= 1, "startup leader should claim an epoch");

    let killed_at = Instant::now();
    cluster.kill(old_index);
    // A follower must detect the lease lapse and promote itself. The
    // `repro failover` drill enforces the tight ~3-lease bound; here we
    // stay clear of CI-scheduler noise but still catch a stuck election.
    let (new_addr, new_epoch) = {
        let new_leader = cluster.leader();
        (
            new_leader.addr.clone(),
            new_leader.core().federation.epoch(),
        )
    };
    let elapsed = killed_at.elapsed();
    assert_ne!(new_addr, old_addr, "a follower must take over");
    assert!(
        new_epoch > old_epoch,
        "promotion must claim a newer epoch ({new_epoch} vs {old_epoch})"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "promotion took {elapsed:?}"
    );

    // Zero acked-then-lost: the pre-kill session authenticates on the
    // new leader immediately — its log already contained the record when
    // it promoted (that is what "most caught-up" buys).
    let user_dn = federation_pki().user.certificate.subject.to_string();
    let mut probe = cluster.leader().client();
    probe.set_session(session.clone());
    assert_eq!(
        probe
            .call("system.whoami", vec![])
            .expect("acked session lost across failover")
            .as_str(),
        Some(user_dn.as_str())
    );

    // The surviving follower noticed the dead leader (jittered-backoff
    // fetch errors), re-pointed at the new one, and resyncs — after which
    // a fresh replicated write propagates everywhere: `user_session`
    // mints on the new leader and waits for full convergence.
    let survivor = cluster
        .nodes
        .iter()
        .position(|n| n.addr != new_addr)
        .expect("one follower survives");
    assert!(
        wait_until(Duration::from_secs(10), || {
            let core = cluster.nodes[survivor].core();
            core.telemetry.federation.replication_fetch_errors.get() >= 1
                && core.federation.leader() == new_addr
        }),
        "survivor never re-pointed at the new leader"
    );
    let session2 = cluster.user_session();
    assert_ne!(session2, session);

    // Write-aware routing: a balanced client's replicated writes end up
    // aimed at the new leader (learned from NOT_LEADER redirect hints
    // whenever resolution lands it on a follower).
    let mut balanced = cluster
        .balanced_client(&session, 0xFA11)
        .with_repin_every(1)
        .with_call_deadline(Duration::from_secs(2));
    assert!(
        wait_until(Duration::from_secs(15), || {
            // Reads re-pin uniformly; the write path reuses the pin, so
            // within a few rounds a write goes through a follower and the
            // redirect hint teaches the client where the leader is.
            let _ = balanced.call("echo.echo", vec![Value::Str("spin".into())]);
            balanced
                .call(
                    "im.send",
                    vec![
                        Value::Str(user_dn.clone()),
                        Value::Str("post-failover".into()),
                    ],
                )
                .is_ok()
                && balanced.believed_leader() == Some(new_addr.as_str())
        }),
        "balanced writes never learned the new leader"
    );
    cluster.cleanup();
}

#[test]
fn equal_epoch_rivals_resolve_to_a_single_leader() {
    let cluster = FederationCluster::start_elections(2, 300, 60);
    let leader_index = cluster.leader_index().expect("startup leader");
    let epoch = cluster.nodes[leader_index].core().federation.epoch();
    assert!(epoch >= 1, "startup leader should claim an epoch");

    // Force the other node into a rival leadership at the SAME epoch —
    // the state two concurrent candidates reach when both pass the
    // pre-claim recheck (e.g. each skipped the other as unreachable
    // while ranking). Equal epochs never fence each other, so without a
    // deterministic tie-break both would stay writable forever.
    let rival = 1 - leader_index;
    {
        let fed = &cluster.nodes[rival].core().federation;
        fed.observe_epoch(epoch);
        fed.set_leader(&cluster.nodes[rival].addr);
        fed.set_role(FederationRole::Leader);
        fed.manage_lease();
    }

    // The conflict resolves by address: the lower address keeps the
    // lease, the higher one demotes and re-points at the survivor.
    let survivor = if cluster.nodes[0].addr < cluster.nodes[1].addr {
        0
    } else {
        1
    };
    let loser = 1 - survivor;
    assert!(
        wait_until(Duration::from_secs(10), || {
            cluster.nodes[survivor].is_leader() && !cluster.nodes[loser].is_leader()
        }),
        "equal-epoch rivals never resolved to a single leader"
    );
    let loser_core = cluster.nodes[loser].core();
    assert!(
        loser_core.telemetry.federation.demotions.get() >= 1,
        "the losing rival never counted its demotion"
    );
    assert_eq!(
        loser_core.federation.leader(),
        cluster.nodes[survivor].addr,
        "the demoted rival must re-point at the surviving leader"
    );
    cluster.cleanup();
}

#[test]
fn leaderless_station_network_still_elects() {
    // The configured leader never comes up (dead address) and the
    // station network holds no cluster-leader descriptor at all — the
    // "stations restarted and lost their retained state" shape. The
    // follower must treat a sustained leaderless view as a lapsed lease
    // and stand for election, not wait forever for a lease to appear.
    let station = Arc::new(StationServer::spawn("boot-station", "127.0.0.1:0").expect("station"));
    let scratch = std::env::temp_dir().join(format!(
        "clarens-bootstrap-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let node = FederationNode::start(
        NodeOptions {
            index: 1,
            role: FederationRole::Follower,
            leader: Some("127.0.0.1:1".into()),
            db_path: Some(scratch.join("node.wal")),
            leader_lease_ms: 300,
            election_jitter_ms: 60,
            ..Default::default()
        },
        vec![Arc::clone(&station)],
    )
    .expect("follower node");
    assert!(
        wait_until(Duration::from_secs(10), || {
            node.is_leader() && node.core().federation.epoch() >= 1
        }),
        "a leaderless cluster never elected a leader"
    );
    node.kill();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn split_brain_fences_stale_leader_and_demotes_on_heal() {
    let cluster = FederationCluster::start_elections(3, 400, 80);
    let session = cluster.user_session();
    let stale_index = cluster.leader_index().expect("initial leader");
    let old_epoch = cluster.nodes[stale_index].core().federation.epoch();
    let user_dn = federation_pki().user.certificate.subject.to_string();

    // Cut the leader's election traffic (its RPC plane stays up — the
    // whole point). Its lease decays unrenewed; the survivors see the
    // lapse and elect a rival under epoch N+1.
    cluster.nodes[stale_index].set_partitioned(true);
    assert!(
        wait_until(Duration::from_secs(10), || {
            cluster.nodes.iter().enumerate().any(|(i, n)| {
                i != stale_index && n.is_leader() && n.core().federation.epoch() > old_epoch
            })
        }),
        "no rival leader emerged behind the partition"
    );

    // The deposed leader still believes it leads, but its lapsed lease
    // makes `is_writable` false: a direct replicated write is fenced
    // before the handler runs — acked by nobody, applied by nobody.
    let stale = &cluster.nodes[stale_index];
    let fenced_before = stale.core().telemetry.federation.fenced_writes.get();
    let mut stale_client = stale.client();
    stale_client.set_session(session.clone());
    match stale_client.call(
        "im.send",
        vec![
            Value::Str(user_dn.clone()),
            Value::Str("split-brain".into()),
        ],
    ) {
        Err(ClientError::Fault(f)) => assert_eq!(f.code, codes::NOT_LEADER, "{f:?}"),
        other => panic!("stale leader accepted a write: {other:?}"),
    }
    assert!(
        stale.core().telemetry.federation.fenced_writes.get() > fenced_before,
        "fence counter never ticked"
    );
    // 100% of stale writes rejected: the message exists on no node.
    let mut count_probe = cluster.leader().client();
    count_probe.set_session(session.clone());
    assert_eq!(
        count_probe.call("im.count", vec![]).expect("im.count"),
        Value::Int(0),
        "a fenced write leaked into the replicated store"
    );

    // Heal the partition: the revived leader observes the rival's higher
    // epoch, demotes itself, re-points, and resyncs as a follower.
    let new_addr = cluster.leader().addr.clone();
    let new_epoch = cluster.leader().core().federation.epoch();
    cluster.nodes[stale_index].set_partitioned(false);
    assert!(
        wait_until(Duration::from_secs(10), || {
            let core = cluster.nodes[stale_index].core();
            !cluster.nodes[stale_index].is_leader()
                && core.telemetry.federation.demotions.get() >= 1
                && core.federation.epoch() == new_epoch
                && core.federation.leader() == new_addr
        }),
        "partitioned leader never demoted after healing"
    );
    // And it converges on post-election leader state through the
    // ordinary replication stream.
    cluster
        .leader()
        .core()
        .store
        .put("fedtest", "post-heal", b"converged".to_vec())
        .expect("leader write");
    let healed_store = std::sync::Arc::clone(&cluster.nodes[stale_index].core().store);
    assert!(
        wait_until(Duration::from_secs(10), || {
            healed_store.get("fedtest", "post-heal").as_deref() == Some(b"converged".as_ref())
        }),
        "healed node never resynced from the new leader"
    );
    cluster.cleanup();
}
