//! Federation integration tests: WAL-shipping replication convergence,
//! proxy routing to the module owner, and discovery-driven failover.

use std::time::Duration;

use clarens::client::ClientError;
use clarens_federation::FederationCluster;
use clarens_wire::Value;
use monalisa_sim::station::wait_until;

#[test]
fn two_node_replication_converges() {
    let cluster = FederationCluster::start(2);
    // `user_session` already proves the session record crossed the wire:
    // it waits until the follower authenticates a session minted on the
    // leader.
    let session = cluster.user_session();
    assert_eq!(session.len(), 64);

    // An arbitrary leader-side write lands on the follower via the WAL
    // stream, not via any shared storage.
    let leader_store = std::sync::Arc::clone(&cluster.leader().core().store);
    leader_store
        .put("fedtest", "k1", b"replicate-me".to_vec())
        .expect("leader write");
    let follower_store = std::sync::Arc::clone(&cluster.nodes[1].core().store);
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_store.get("fedtest", "k1").as_deref() == Some(b"replicate-me".as_ref())
        }),
        "leader write never reached the follower"
    );
    assert!(cluster.nodes[1].replication_applied() > 0);

    // The follower's lag gauge drains to zero once it has caught up, and
    // the leader's WAL offset gauge reflects a non-empty log.
    let follower_telemetry = std::sync::Arc::clone(&cluster.nodes[1].core().telemetry);
    assert!(
        wait_until(Duration::from_secs(10), || {
            follower_telemetry.gauge("db.replication_lag") == Some(0)
        }),
        "replication lag never drained"
    );
    assert!(cluster.leader().core().telemetry.gauge("db.wal_offset") > Some(0));
    cluster.cleanup();
}

#[test]
fn proxy_call_routes_to_module_owner() {
    let cluster = FederationCluster::start(2);
    let session = cluster.user_session();

    // Only the leader exports the file module; the follower must forward.
    let mut client = cluster.nodes[1].client();
    client.set_session(session.clone());
    let listing = client
        .call(
            "proxy.call",
            vec![
                Value::Str("file.ls".into()),
                Value::Array(vec![Value::Str("/".into())]),
            ],
        )
        .expect("proxied file.ls");
    assert!(matches!(listing, Value::Array(_)));
    let follower_core = cluster.nodes[1].core();
    assert!(follower_core.telemetry.federation.forwarded.get() >= 1);
    assert_eq!(follower_core.telemetry.federation.forward_failures.get(), 0);

    // A method no node in the federation exports is a fault, not a hang.
    let err = client
        .call("proxy.call", vec![Value::Str("nosuch.method".into())])
        .expect_err("unroutable method");
    assert!(matches!(err, ClientError::Fault(_)));
    cluster.cleanup();
}

#[test]
fn balanced_client_fails_over_when_its_node_dies() {
    let mut cluster = FederationCluster::start(3);
    let session = cluster.user_session();
    let mut client = cluster
        .balanced_client(&session, 0x5EED)
        .with_call_deadline(Duration::from_secs(2));

    let mut wrong = 0u64;
    let echo = |client: &mut clarens_federation::BalancedClient, i: u64, wrong: &mut u64| {
        let payload = format!("fed-{i}");
        match client.call("echo.echo", vec![Value::Str(payload.clone())]) {
            Ok(Value::Str(s)) if s == payload => {}
            _ => *wrong += 1,
        }
    };
    for i in 0..10 {
        echo(&mut client, i, &mut wrong);
    }
    assert_eq!(wrong, 0, "healthy cluster returned wrong answers");

    // Kill the node the client is pinned to: the next calls must fail
    // over to a surviving node via discovery re-resolution.
    let pinned = client
        .current_url()
        .expect("pinned after calls")
        .to_string();
    let index = cluster
        .nodes
        .iter()
        .position(|n| n.url == pinned)
        .expect("pinned node in cluster");
    let killed = cluster.kill(index);
    for i in 10..30 {
        echo(&mut client, i, &mut wrong);
    }
    assert_eq!(wrong, 0, "failover produced wrong answers");
    assert!(client.failovers() >= 1, "client never failed over");
    assert!(client.resolutions() >= 2, "client never re-resolved");
    assert_ne!(client.current_url(), Some(killed.as_str()));
    cluster.cleanup();
}
