//! The follower side of WAL-shipping replication.
//!
//! A [`Replicator`] thread polls the leader's `replication.fetch` RPC with
//! an `(epoch, offset)` cursor and applies the decoded operations to the
//! local store through the ordinary `put`/`delete` path — so every applied
//! record bumps the target bucket's generation and the epoch-invalidated
//! caches (sessions, VO, ACL) see replicated state exactly as they see
//! local writes.
//!
//! Resync rules mirror the leader's `Store::wal_read` contract:
//! * the leader answers a stale or unknown cursor by restarting the
//!   stream at `(current_epoch, 0)` — the follower adopts whatever cursor
//!   the chunk actually carries;
//! * a chunk that fails `decode_stream` (torn frame, CRC mismatch —
//!   should be impossible given the leader trims to whole frames, but the
//!   network is the network) forces a restart from offset 0;
//! * `len` in every response is the leader's committed high-water mark;
//!   the published `db.replication_lag` gauge is `len - applied_offset`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use clarens::client::{ClarensClient, ClientError};
use clarens::core::ClarensCore;
use clarens_db::{decode_stream, LogOp};
use clarens_pki::cert::Credential;
use clarens_wire::Value;

/// Fetch budget per poll (matches the leader-side `MAX_FETCH_BYTES` cap).
const FETCH_BYTES: i64 = 1 << 20;

/// A running replication follower loop.
pub struct Replicator {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    applied: Arc<AtomicU64>,
    chunks: Arc<AtomicU64>,
}

impl Replicator {
    /// Start replicating `leader` (a `host:port` address) into `core`'s
    /// store, authenticating as `admin` (replication is site-admin gated:
    /// the WAL carries session secrets). Polls every `poll_ms` when idle.
    pub fn start(
        core: Arc<ClarensCore>,
        leader: String,
        admin: Credential,
        poll_ms: u64,
    ) -> Replicator {
        let stop = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicU64::new(0));
        let chunks = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let applied = Arc::clone(&applied);
            let chunks = Arc::clone(&chunks);
            std::thread::Builder::new()
                .name(format!("replicator-{leader}"))
                .spawn(move || run(&core, &leader, admin, poll_ms, &stop, &applied, &chunks))
                .expect("spawn replicator thread")
        };
        Replicator {
            stop,
            thread: Some(thread),
            applied,
            chunks,
        }
    }

    /// Operations applied so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Non-empty chunks received so far.
    pub fn chunks(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Stop the loop and join the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.halt();
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    core: &Arc<ClarensCore>,
    leader: &str,
    admin: Credential,
    poll_ms: u64,
    stop: &AtomicBool,
    applied: &AtomicU64,
    chunks: &AtomicU64,
) {
    let pause = Duration::from_millis(poll_ms.max(1));
    let mut client = ClarensClient::new(leader)
        .with_credential(admin)
        .with_retries(1)
        .with_call_deadline(Duration::from_secs(5));
    let mut logged_in = false;
    let mut epoch = 0u64;
    let mut offset = 0u64;
    while !stop.load(Ordering::SeqCst) {
        if !logged_in {
            logged_in = client.login().is_ok();
            if !logged_in {
                // Leader not up yet (or mid-restart): keep trying.
                std::thread::sleep(pause);
                continue;
            }
        }
        let chunk = client.call(
            "replication.fetch",
            vec![
                Value::Int(epoch as i64),
                Value::Int(offset as i64),
                Value::Int(FETCH_BYTES),
            ],
        );
        let chunk = match chunk {
            Ok(value) => value,
            Err(ClientError::Fault(_)) => {
                // Session expired, ACL change, degraded leader — re-login
                // and retry; a persistent fault just keeps the loop warm.
                logged_in = false;
                std::thread::sleep(pause);
                continue;
            }
            Err(_) => {
                std::thread::sleep(pause);
                continue;
            }
        };
        let served_epoch = chunk.get("epoch").and_then(Value::as_int).unwrap_or(0) as u64;
        let served_offset = chunk.get("offset").and_then(Value::as_int).unwrap_or(0) as u64;
        let committed = chunk.get("len").and_then(Value::as_int).unwrap_or(0) as u64;
        let data = chunk
            .get("data")
            .and_then(Value::coerce_bytes)
            .unwrap_or_default();
        if served_epoch != epoch || served_offset != offset {
            // The leader restarted the stream (compaction bumped the
            // epoch, or our cursor outran a rewritten log). The compacted
            // log is a full-state snapshot, so replaying it from 0
            // converges — adopt the served cursor.
            epoch = served_epoch;
            offset = served_offset;
        }
        if data.is_empty() {
            core.replication_lag
                .store(committed.saturating_sub(offset), Ordering::Relaxed);
            std::thread::sleep(pause);
            continue;
        }
        let Some(ops) = decode_stream(&data) else {
            // Torn or corrupt run: restart the stream from the top.
            offset = 0;
            continue;
        };
        chunks.fetch_add(1, Ordering::Relaxed);
        for op in &ops {
            let result = match op {
                LogOp::Put { bucket, key, value } => {
                    core.store.put(bucket, key, value.clone()).map(|_| ())
                }
                LogOp::Delete { bucket, key } => core.store.delete(bucket, key).map(|_| ()),
            };
            if result.is_ok() {
                applied.fetch_add(1, Ordering::Relaxed);
            }
        }
        offset = served_offset + data.len() as u64;
        core.replication_lag
            .store(committed.saturating_sub(offset), Ordering::Relaxed);
        // More may be waiting: loop immediately while we are behind.
        if committed <= offset {
            std::thread::sleep(pause);
        }
    }
}
