//! The follower side of WAL-shipping replication.
//!
//! A [`Replicator`] thread polls the leader's `replication.fetch` RPC with
//! an `(epoch, offset)` cursor and applies the decoded operations to the
//! local store through the ordinary `put`/`delete` path — so every applied
//! record bumps the target bucket's generation and the epoch-invalidated
//! caches (sessions, VO, ACL) see replicated state exactly as they see
//! local writes.
//!
//! Resync rules mirror the leader's `Store::wal_read` contract:
//! * the leader answers a stale or unknown cursor by restarting the
//!   stream at `(current_epoch, 0)` — the follower adopts whatever cursor
//!   the chunk actually carries;
//! * a chunk that fails `decode_stream` (torn frame, CRC mismatch —
//!   should be impossible given the leader trims to whole frames, but the
//!   network is the network) forces a restart from offset 0;
//! * `len` in every response is the leader's committed high-water mark;
//!   the published `db.replication_lag` gauge is `len - applied_offset`.
//!
//! Failover behaviour (DESIGN.md §14): the loop re-reads the believed
//! leader from [`FederationState`] every cycle. When the election manager
//! re-points it, the replicator reconnects and resyncs from `(0, 0)` —
//! the new leader's log is a different byte stream, and its compacted
//! form is a full-state snapshot, so replay from the top converges
//! (counted by `clarens_replication_resyncs_total` on the serving side).
//! While this node *is* the leader the loop idles; chunks stamped with a
//! `leader_epoch` older than the epoch this node has already observed
//! are dropped unapplied (a deposed leader's divergent tail must never
//! be merged). Fetch failures back off exponentially with jitter instead
//! of hot-retrying a dead address (`clarens_replication_fetch_errors_total`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use clarens::client::{ClarensClient, ClientError};
use clarens::config::FederationRole;
use clarens::core::ClarensCore;
use clarens_db::{decode_stream, LogOp};
use clarens_pki::cert::Credential;
use clarens_wire::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fetch budget per poll (matches the leader-side `MAX_FETCH_BYTES` cap).
const FETCH_BYTES: i64 = 1 << 20;

/// Ceiling for the fetch-error backoff (the leader being down for a
/// while must not turn into a tight retry storm, but recovery after a
/// failover should still be prompt).
const BACKOFF_CAP: Duration = Duration::from_millis(1000);

/// A running replication follower loop.
pub struct Replicator {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    applied: Arc<AtomicU64>,
    chunks: Arc<AtomicU64>,
}

impl Replicator {
    /// Start replicating into `core`'s store, authenticating as `admin`
    /// (replication is site-admin gated: the WAL carries session
    /// secrets). `leader` seeds the leader address; thereafter the loop
    /// follows `core.federation` — pass an empty string to resolve purely
    /// dynamically (election-managed nodes). Polls every `poll_ms` when
    /// idle.
    pub fn start(
        core: Arc<ClarensCore>,
        leader: String,
        admin: Credential,
        poll_ms: u64,
    ) -> Replicator {
        let stop = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicU64::new(0));
        let chunks = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let applied = Arc::clone(&applied);
            let chunks = Arc::clone(&chunks);
            std::thread::Builder::new()
                .name(format!("replicator-{leader}"))
                .spawn(move || run(&core, leader, admin, poll_ms, &stop, &applied, &chunks))
                .expect("spawn replicator thread")
        };
        Replicator {
            stop,
            thread: Some(thread),
            applied,
            chunks,
        }
    }

    /// Operations applied so far.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Non-empty chunks received so far.
    pub fn chunks(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Stop the loop and join the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.halt();
    }
}

fn run(
    core: &Arc<ClarensCore>,
    initial_leader: String,
    admin: Credential,
    poll_ms: u64,
    stop: &AtomicBool,
    applied: &AtomicU64,
    chunks: &AtomicU64,
) {
    let pause = Duration::from_millis(poll_ms.max(1));
    let mut rng = StdRng::seed_from_u64(poll_ms ^ 0x5EED_F0110);
    let mut leader = initial_leader;
    if leader.is_empty() {
        leader = core.federation.leader();
    }
    let mut client = make_client(&leader, &admin);
    let mut logged_in = false;
    let mut epoch = 0u64;
    let mut offset = 0u64;
    let mut failures = 0u32;

    // Jittered exponential backoff for fetch/login failures: attempt n
    // sleeps a random duration in [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹], capped.
    let backoff = |failures: u32, rng: &mut StdRng| {
        let ceiling = pause
            .saturating_mul(1 << failures.saturating_sub(1).min(6))
            .min(BACKOFF_CAP)
            .max(pause);
        let ceiling_ms = ceiling.as_millis() as u64;
        let jitter = rng.next_u64() % (ceiling_ms / 2 + 1);
        std::thread::sleep(Duration::from_millis(ceiling_ms - jitter));
    };

    while !stop.load(Ordering::SeqCst) {
        // A leader does not replicate from anyone; idle until demoted.
        if core.federation.role() == FederationRole::Leader {
            std::thread::sleep(pause);
            continue;
        }
        // Follow the believed leader. A change (election, demotion, or a
        // NOT_LEADER hint adopted below) reconnects and resyncs from the
        // top: the new leader's log is a different byte stream.
        let current = core.federation.leader();
        if !current.is_empty() && current != leader {
            leader = current;
            client = make_client(&leader, &admin);
            logged_in = false;
            epoch = 0;
            offset = 0;
            failures = 0;
            core.federation.set_applied(0);
        }
        if leader.is_empty() {
            leader = core.federation.leader();
            std::thread::sleep(pause);
            continue;
        }
        if !logged_in {
            logged_in = client.login().is_ok();
            if !logged_in {
                // Leader not up yet (or mid-restart): back off, and
                // re-resolve the address in case leadership moved.
                core.telemetry.federation.replication_fetch_errors.inc();
                failures += 1;
                backoff(failures, &mut rng);
                continue;
            }
        }
        let chunk = client.call(
            "replication.fetch",
            vec![
                Value::Int(epoch as i64),
                Value::Int(offset as i64),
                Value::Int(FETCH_BYTES),
            ],
        );
        let chunk = match chunk {
            Ok(value) => value,
            Err(ClientError::Fault(fault)) => {
                if let Some((hint, hint_epoch)) = fault.leader_hint() {
                    // The node we poll is not (or no longer) the leader.
                    // Adopt its hint so the next cycle re-points.
                    core.federation.observe_epoch(hint_epoch);
                    if !hint.is_empty() {
                        core.federation.set_leader(&hint);
                    }
                    std::thread::sleep(pause);
                    continue;
                }
                // Session expired, ACL change, degraded leader — re-login
                // and retry; a persistent fault just keeps the loop warm.
                logged_in = false;
                core.telemetry.federation.replication_fetch_errors.inc();
                failures += 1;
                backoff(failures, &mut rng);
                continue;
            }
            Err(_) => {
                // Transport failure: the leader address is likely dead.
                // Jittered exponential backoff instead of a hot retry;
                // each cycle still re-reads the believed leader above, so
                // a failover re-points us without waiting out the cap.
                core.telemetry.federation.replication_fetch_errors.inc();
                failures += 1;
                backoff(failures, &mut rng);
                continue;
            }
        };
        failures = 0;
        // Epoch fence: a chunk stamped by a leader older than one we have
        // already observed comes from a deposed node still serving its
        // divergent tail — never apply it.
        let leader_epoch = chunk
            .get("leader_epoch")
            .and_then(Value::as_int)
            .unwrap_or(0) as u64;
        if leader_epoch < core.federation.epoch() {
            core.telemetry.federation.fenced_writes.inc();
            std::thread::sleep(pause);
            continue;
        }
        core.federation.observe_epoch(leader_epoch);
        let served_epoch = chunk.get("epoch").and_then(Value::as_int).unwrap_or(0) as u64;
        let served_offset = chunk.get("offset").and_then(Value::as_int).unwrap_or(0) as u64;
        let committed = chunk.get("len").and_then(Value::as_int).unwrap_or(0) as u64;
        let data = chunk
            .get("data")
            .and_then(Value::coerce_bytes)
            .unwrap_or_default();
        if served_epoch != epoch || served_offset != offset {
            // The leader restarted the stream (compaction bumped the
            // epoch, or our cursor outran a rewritten log). The compacted
            // log is a full-state snapshot, so replaying it from 0
            // converges — adopt the served cursor.
            epoch = served_epoch;
            offset = served_offset;
        }
        if data.is_empty() {
            core.replication_lag
                .store(committed.saturating_sub(offset), Ordering::Relaxed);
            core.federation.set_applied(offset);
            std::thread::sleep(pause);
            continue;
        }
        let Some(ops) = decode_stream(&data) else {
            // Torn or corrupt run: restart the stream from the top.
            offset = 0;
            continue;
        };
        chunks.fetch_add(1, Ordering::Relaxed);
        for op in &ops {
            let result = match op {
                LogOp::Put { bucket, key, value } => {
                    core.store.put(bucket, key, value.clone()).map(|_| ())
                }
                LogOp::Delete { bucket, key } => core.store.delete(bucket, key).map(|_| ()),
                LogOp::EpochFence { epoch } => {
                    // The leader's in-band fence record: persist it so a
                    // later promotion of *this* node continues the epoch
                    // sequence, and adopt the epoch for fencing.
                    core.federation.observe_epoch(*epoch);
                    core.store.append_fence(*epoch)
                }
            };
            if result.is_ok() {
                applied.fetch_add(1, Ordering::Relaxed);
            }
        }
        offset = served_offset + data.len() as u64;
        core.replication_lag
            .store(committed.saturating_sub(offset), Ordering::Relaxed);
        core.federation.set_applied(offset);
        // More may be waiting: loop immediately while we are behind.
        if committed <= offset {
            std::thread::sleep(pause);
        }
    }
}

fn make_client(leader: &str, admin: &Credential) -> ClarensClient {
    ClarensClient::new(leader)
        .with_credential(admin.clone())
        .with_retries(1)
        .with_call_deadline(Duration::from_secs(5))
}
