//! Lease-based leader election through the discovery network
//! (DESIGN.md §14).
//!
//! No separate consensus service: the station network the federation
//! already runs for service discovery doubles as the election medium.
//! Every node runs one [`ElectionManager`] thread that, each tick
//! (lease/4):
//!
//! * publishes a `cluster` **member descriptor** (its address and a
//!   millisecond-resolution `renewed_ms` liveness stamp), and — while it
//!   holds the leadership — a `cluster-leader` **lease descriptor**
//!   carrying `leader_epoch`, `lease_ms`, and `renewed_ms`;
//! * renews its local lease in [`FederationState`] **only after the
//!   publish succeeds** — a partitioned leader that cannot reach any
//!   station stops renewing, its lease decays, and the dispatch fence
//!   stops acknowledging writes *before* a rival can be elected
//!   (split-brain self-fencing);
//! * queries the stations for lease descriptors. A higher epoch than its
//!   own demotes a leader on the spot (`clarens_demotions_total`) and
//!   re-points a follower; an **equal** epoch published by a different
//!   address — two candidates slipped through the same election window —
//!   is resolved deterministically: the lower address keeps the lease,
//!   the higher one demotes and resyncs; a lease that has not been seen
//!   to renew for 1.5 leases starts an election, as does observing *no*
//!   lease descriptor at all for that long while at least one station is
//!   answering (fresh deployment, or stations restarted and lost their
//!   retained state).
//!
//! An election is: jittered pause (decorrelates candidates), recheck
//! that nobody renewed or claimed a higher epoch meanwhile, then rank
//! the live members by their **exact** replication cursor via the public
//! `system.health` RPC — stale station adverts are good enough for
//! liveness but not for choosing the most-caught-up log. The candidate
//! defers to any live peer with a higher cursor (ties break on lowest
//! address); otherwise it promotes: seal the local log with an
//! `EpochFence(N+1)` record, flip the role, and publish the new lease
//! immediately so rivals stand down (`clarens_elections_total`).
//!
//! Leases use the descriptors' `renewed_ms` attribute, not the
//! descriptor timestamp: timestamps are whole seconds, far coarser than
//! a lease interval, and stations retain stale descriptors indefinitely.
//! Crucially, `renewed_ms` is stamped with the *publisher's* wall clock,
//! which may be skewed arbitrarily from the observer's — so lease age is
//! never computed by subtracting it from the local clock. Instead each
//! observer tracks, per descriptor, the local monotonic instant at which
//! it last saw the `renewed_ms` value *change* ([`Freshness`]); a lease
//! has lapsed when that locally-measured age exceeds 1.5 intervals. The
//! leader self-fences on the same monotonic basis (`renew_lease`), so no
//! clock comparison ever crosses hosts and NTP drift cannot open a
//! two-writable-leaders window.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use clarens::config::FederationRole;
use clarens::core::ClarensCore;
use clarens::ClarensClient;
use clarens_wire::Value;
use monalisa_sim::station::query_station;
use monalisa_sim::{Publication, ServiceDescriptor, ServiceQuery, UdpPublisher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Service name of the per-node liveness descriptor.
const MEMBER_SERVICE: &str = "cluster";

/// Service name of the leader lease descriptor.
const LEASE_SERVICE: &str = "cluster-leader";

/// A member whose `renewed_ms` is older than this many lease intervals
/// is treated as dead when ranking election candidates.
const MEMBER_FRESH_LEASES: u64 = 2;

/// Election settings for one node.
#[derive(Clone)]
pub struct ElectionOptions {
    /// Lease duration in ms (the `leader_lease_ms` knob). Must be > 0.
    pub lease_ms: u64,
    /// Upper bound of the random pre-claim pause (`election_jitter_ms`).
    pub jitter_ms: u64,
    /// Seed for the jitter RNG (deterministic drills).
    pub seed: u64,
}

/// A running election-manager thread.
pub struct ElectionManager {
    stop: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ElectionManager {
    /// Start managing elections for `core`, which serves RPC on `addr`.
    /// `udp_stations` receive lease/member publications; `query_stations`
    /// are the TCP query addresses of the same stations.
    pub fn start(
        core: Arc<ClarensCore>,
        addr: String,
        udp_stations: Vec<SocketAddr>,
        query_stations: Vec<SocketAddr>,
        options: ElectionOptions,
    ) -> std::io::Result<ElectionManager> {
        assert!(options.lease_ms > 0, "elections need a non-zero lease");
        let publisher = UdpPublisher::new(udp_stations)?;
        let stop = Arc::new(AtomicBool::new(false));
        let partitioned = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let partitioned = Arc::clone(&partitioned);
            std::thread::Builder::new()
                .name(format!("election-{addr}"))
                .spawn(move || {
                    run(
                        &core,
                        &addr,
                        &publisher,
                        &query_stations,
                        &options,
                        &stop,
                        &partitioned,
                    )
                })
                .expect("spawn election thread")
        };
        Ok(ElectionManager {
            stop,
            partitioned,
            thread: Some(thread),
        })
    }

    /// Simulate a network partition of this node's election traffic: no
    /// publications go out and no station state comes in, exactly as if
    /// the node's uplink to the discovery network were cut. The RPC
    /// plane stays up — which is the point: the split-brain drill shows
    /// the lease fence rejecting writes the partitioned leader still
    /// receives.
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ElectionManager {
    fn drop(&mut self) {
        self.halt();
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The freshest view of one descriptor service across all stations,
/// deduplicated by url (each station keeps only the newest per key, but
/// different nodes publish under different urls). The flag is true when
/// at least one station answered the query: an empty result from a
/// reachable station network means "no such descriptor exists", while an
/// empty result with every station unreachable means this node is blind
/// and must not draw conclusions (in particular, must not stand for
/// election on the strength of not seeing a lease).
fn query_all(stations: &[SocketAddr], service: &str) -> (Vec<ServiceDescriptor>, bool) {
    let query = ServiceQuery::by_service(service);
    let mut out: Vec<ServiceDescriptor> = Vec::new();
    let mut reachable = false;
    for station in stations {
        if let Ok(hits) = query_station(*station, &query) {
            reachable = true;
            for hit in hits {
                match out.iter_mut().find(|d| d.url == hit.url) {
                    Some(existing) => {
                        if renewed_ms(&hit) > renewed_ms(existing) {
                            *existing = hit;
                        }
                    }
                    None => out.push(hit),
                }
            }
        }
    }
    (out, reachable)
}

/// Local-clock freshness tracking for published descriptors.
///
/// `renewed_ms` stamps come from the publisher's wall clock and are only
/// compared with each other (is this observation newer than the last?).
/// Age is measured on the observer's own monotonic clock: the elapsed
/// time since this node last saw the stamp advance. A descriptor seen
/// for the first time has age zero — a node that just started gives a
/// possibly-dead leader a full lapse interval of local observation
/// before moving against it, which is the conservative direction.
#[derive(Default)]
struct Freshness {
    seen: std::collections::HashMap<String, (u64, std::time::Instant)>,
}

impl Freshness {
    fn age(&mut self, d: &ServiceDescriptor) -> Duration {
        let stamp = renewed_ms(d);
        let now = std::time::Instant::now();
        let entry = self.seen.entry(d.url.clone()).or_insert((stamp, now));
        if stamp != entry.0 {
            *entry = (stamp, now);
        }
        entry.1.elapsed()
    }
}

/// A lease (or the absence of any lease) older than this is lapsed.
fn lapse_after(lease_ms: u64) -> Duration {
    Duration::from_millis(lease_ms + lease_ms / 2)
}

fn attr_u64(d: &ServiceDescriptor, key: &str) -> u64 {
    d.attributes
        .get(key)
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

fn renewed_ms(d: &ServiceDescriptor) -> u64 {
    attr_u64(d, "renewed_ms")
}

/// Build this node's member or lease descriptor.
fn descriptor(service: &str, addr: &str, attrs: Vec<(String, String)>) -> ServiceDescriptor {
    ServiceDescriptor {
        url: format!("http://{addr}/clarens"),
        server_dn: String::new(),
        service: service.to_owned(),
        methods: Vec::new(),
        attributes: attrs.into_iter().collect(),
        timestamp: (unix_ms() / 1000) as i64,
    }
}

fn run(
    core: &Arc<ClarensCore>,
    addr: &str,
    publisher: &UdpPublisher,
    query_stations: &[SocketAddr],
    options: &ElectionOptions,
    stop: &AtomicBool,
    partitioned: &AtomicBool,
) {
    let lease_ms = options.lease_ms;
    let tick = Duration::from_millis((lease_ms / 4).max(5));
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut freshness = Freshness::default();
    // Local instant since which a reachable station network has shown no
    // lease descriptor at all (cluster never had a leader, or stations
    // restarted and lost their retained state). None while a lease is
    // visible or while the stations are unreachable.
    let mut leaderless_since: Option<std::time::Instant> = None;

    // A configured leader claims the first epoch on startup, continuing
    // from whatever fence its persistent log already carries (so a
    // restarted deployment never reuses an epoch).
    if core.federation.role() == FederationRole::Leader && core.federation.epoch() == 0 {
        let epoch = core.store.fence_epoch() + 1;
        let _ = core.store.append_fence(epoch);
        core.federation.observe_epoch(epoch);
        core.federation.set_leader(addr);
        core.federation.manage_lease();
        core.telemetry.federation.elections.inc();
    }

    while !stop.load(Ordering::SeqCst) {
        let cut_off = partitioned.load(Ordering::SeqCst);
        let now = unix_ms();

        // --- Publish -------------------------------------------------
        if !cut_off {
            let member = descriptor(
                MEMBER_SERVICE,
                addr,
                vec![
                    ("addr".into(), addr.to_owned()),
                    ("renewed_ms".into(), now.to_string()),
                    ("applied".into(), core.federation.applied().to_string()),
                ],
            );
            let _ = publisher.publish(&Publication::Service(member));
        }
        if core.federation.role() == FederationRole::Leader {
            let lease = descriptor(
                LEASE_SERVICE,
                addr,
                vec![
                    ("addr".into(), addr.to_owned()),
                    ("leader_epoch".into(), core.federation.epoch().to_string()),
                    ("lease_ms".into(), lease_ms.to_string()),
                    ("renewed_ms".into(), now.to_string()),
                ],
            );
            // Renew only after the lease actually reached a station: a
            // leader that cannot publish must not keep acking writes.
            if !cut_off && publisher.publish(&Publication::Service(lease)).is_ok() {
                core.federation.renew_lease(lease_ms);
            }
        }

        // --- Observe -------------------------------------------------
        if !cut_off {
            let (leases, stations_reachable) = query_all(query_stations, LEASE_SERVICE);
            if let Some(best) = leases.iter().max_by_key(|d| {
                // Highest epoch wins; among equal epochs the freshest
                // renewal is authoritative.
                (attr_u64(d, "leader_epoch"), renewed_ms(d))
            }) {
                leaderless_since = None;
                let best_epoch = attr_u64(best, "leader_epoch");
                let best_addr = best.attributes.get("addr").cloned().unwrap_or_default();
                let my_epoch = core.federation.epoch();
                if best_epoch > my_epoch && best_addr != addr {
                    // A rival claimed a newer epoch: a (possibly revived)
                    // leader demotes itself and resyncs as a follower;
                    // a follower just re-points.
                    core.federation.observe_epoch(best_epoch);
                    if core.federation.role() == FederationRole::Leader {
                        core.federation.set_role(FederationRole::Follower);
                        core.federation.unmanage_lease();
                        core.telemetry.federation.demotions.inc();
                    }
                    core.federation.set_leader(&best_addr);
                } else if core.federation.role() == FederationRole::Leader {
                    // Equal-epoch conflict: a rival published a lease for
                    // the epoch this node holds — two candidates slipped
                    // through the same election window (e.g. each skipped
                    // the other as unreachable while ranking). Equal
                    // epochs never fence each other, so without a
                    // deterministic tie-break both would stay writable
                    // forever and the logs would diverge. Resolution
                    // mirrors the election's deference rule: the lowest
                    // address keeps the lease, everyone else demotes and
                    // resyncs from it.
                    let rival = leases.iter().find_map(|d| {
                        let a = d.attributes.get("addr")?;
                        (attr_u64(d, "leader_epoch") == my_epoch
                            && !a.is_empty()
                            && a.as_str() != addr
                            && a.as_str() < addr)
                            .then(|| a.clone())
                    });
                    if let Some(rival_addr) = rival {
                        core.federation.set_role(FederationRole::Follower);
                        core.federation.unmanage_lease();
                        core.federation.set_leader(&rival_addr);
                        core.telemetry.federation.demotions.inc();
                    }
                } else if core.federation.role() == FederationRole::Follower {
                    // Never adopt this node's own retained lease (a relic
                    // of a leadership it has since lost): a follower that
                    // believes *itself* leader would hint clients into a
                    // redirect loop.
                    if best_epoch >= my_epoch && !best_addr.is_empty() && best_addr != addr {
                        core.federation.observe_epoch(best_epoch);
                        core.federation.set_leader(&best_addr);
                    }
                    // Lease lapse: this node has watched the best-known
                    // lease go unrenewed for 1.5 intervals of *local*
                    // time — its holder is dead or cut off. Stand for
                    // election. (Local observation, not a comparison with
                    // the leader's clock: see the module docs.)
                    if freshness.age(best) > lapse_after(lease_ms) {
                        try_promote(
                            core,
                            addr,
                            publisher,
                            query_stations,
                            options,
                            &mut rng,
                            &mut freshness,
                            stop,
                        );
                    }
                }
            } else if stations_reachable && core.federation.role() == FederationRole::Follower {
                // The stations answer but hold no lease descriptor at
                // all: nobody has ever led (or the stations lost their
                // retained state in a restart). Treat a full lapse
                // interval of observing that as a lapsed lease, or the
                // cluster stays leaderless forever.
                let since = *leaderless_since.get_or_insert_with(std::time::Instant::now);
                if since.elapsed() > lapse_after(lease_ms) {
                    try_promote(
                        core,
                        addr,
                        publisher,
                        query_stations,
                        options,
                        &mut rng,
                        &mut freshness,
                        stop,
                    );
                }
            } else {
                // Blind (no station reachable): no basis for any action.
                leaderless_since = None;
            }
        }

        std::thread::sleep(tick);
    }
}

/// `system.health` of a peer: `(is_leader, applied_cursor)`, or None if
/// the peer is unreachable (it is then ignored for ranking — a dead node
/// cannot be more caught-up).
fn peer_health(addr: &str) -> Option<(bool, u64)> {
    let mut client = ClarensClient::new(addr)
        .with_retries(0)
        .with_call_deadline(Duration::from_millis(250));
    let health = client.call("system.health", vec![]).ok()?;
    let role = health.get("role").and_then(Value::as_str).unwrap_or("");
    let applied = health.get("applied").and_then(Value::as_int).unwrap_or(0) as u64;
    Some((role == "leader", applied))
}

#[allow(clippy::too_many_arguments)]
fn try_promote(
    core: &Arc<ClarensCore>,
    addr: &str,
    publisher: &UdpPublisher,
    query_stations: &[SocketAddr],
    options: &ElectionOptions,
    rng: &mut StdRng,
    freshness: &mut Freshness,
    stop: &AtomicBool,
) {
    let lease_ms = options.lease_ms;
    // Decorrelate candidates so the common case is one claimant.
    let jitter = rng.next_u64() % options.jitter_ms.max(1);
    std::thread::sleep(Duration::from_millis(jitter));
    if stop.load(Ordering::SeqCst) {
        return;
    }

    // Recheck: did the leader renew, or a rival claim, during the pause?
    let (leases, _) = query_all(query_stations, LEASE_SERVICE);
    if let Some(best) = leases
        .iter()
        .max_by_key(|d| (attr_u64(d, "leader_epoch"), renewed_ms(d)))
    {
        if attr_u64(best, "leader_epoch") > core.federation.epoch() {
            return; // a rival already won this round
        }
        if freshness.age(best) <= lapse_after(lease_ms) {
            return; // the leader came back (locally-observed renewal)
        }
    }

    // Rank against every live member by exact replication cursor. The
    // member adverts supply the candidate set; the ranking itself uses a
    // live `system.health` call, because adverts are a tick stale and
    // the whole point is promoting the most-caught-up log.
    let mine = core.federation.applied();
    let (members, stations_reachable) = query_all(query_stations, MEMBER_SERVICE);
    if !stations_reachable {
        // Blind: with no station answering, the candidate set is unknown
        // and a promotion here could claim over a better-placed (or
        // already-leading) peer it simply cannot see.
        return;
    }
    for member in members {
        let peer = member.attributes.get("addr").cloned().unwrap_or_default();
        if peer.is_empty() || peer == addr {
            continue;
        }
        if freshness.age(&member) > Duration::from_millis(lease_ms * MEMBER_FRESH_LEASES) {
            continue; // advert never renewed under local observation: presumed dead
        }
        let Some((is_leader, theirs)) = peer_health(&peer) else {
            continue; // unreachable: cannot be a better candidate
        };
        if is_leader {
            return; // someone already promoted
        }
        if theirs > mine || (theirs == mine && peer.as_str() < addr) {
            return; // defer to the better-placed candidate
        }
    }

    // Promote: seal the local log under the new epoch, become writable,
    // and publish the claim immediately so rivals stand down.
    let epoch = core.federation.epoch() + 1;
    let _ = core.store.append_fence(epoch);
    let _ = core.store.sync();
    core.federation.observe_epoch(epoch);
    core.federation.set_role(FederationRole::Leader);
    core.federation.set_leader(addr);
    core.federation.reset_follower_cursor();
    core.federation.manage_lease();
    core.telemetry.federation.elections.inc();
    let lease = descriptor(
        LEASE_SERVICE,
        addr,
        vec![
            ("addr".into(), addr.to_owned()),
            ("leader_epoch".into(), epoch.to_string()),
            ("lease_ms".into(), lease_ms.to_string()),
            ("renewed_ms".into(), unix_ms().to_string()),
        ],
    );
    if publisher.publish(&Publication::Service(lease)).is_ok() {
        core.federation.renew_lease(lease_ms);
    }
}
