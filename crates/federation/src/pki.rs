//! The federation's shared PKI: one CA trusted by every node, one site
//! admin (the replication/heartbeat credential), one regular user, and
//! per-node server credentials.
//!
//! Server DNs must be distinct per node — the discovery mirror treats two
//! descriptors with the same `(server_dn, service)` under different urls
//! as a restart of one server and drops the older, so a shared server DN
//! would collapse the whole federation into one advertised endpoint.

use std::sync::{Mutex, OnceLock};

use clarens_pki::cert::{CertificateAuthority, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::rsa;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dn(text: &str) -> DistinguishedName {
    DistinguishedName::parse(text).expect("valid DN")
}

fn now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// The process-wide federation PKI (RSA key generation dominates fixture
/// cost, so it is built once and shared, like the core testkit's).
pub struct FederationPki {
    /// The root CA every node trusts.
    pub ca: CertificateAuthority,
    /// Site admin on every node (`admin_dns`): heartbeats, replication.
    pub admin: Credential,
    /// A regular grid user.
    pub user: Credential,
    /// Server credentials already issued, by node index.
    servers: Mutex<Vec<Credential>>,
}

impl FederationPki {
    /// The server credential for node `index` (issued on first use; the
    /// DN embeds the index so every node advertises a distinct identity).
    pub fn server_credential(&self, index: usize) -> Credential {
        let mut servers = self.servers.lock().expect("pki lock");
        while servers.len() <= index {
            let i = servers.len();
            let mut rng = StdRng::seed_from_u64(0xFED5EED ^ i as u64);
            let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
            let t = now();
            servers.push(Credential {
                certificate: self.ca.issue(
                    dn(&format!(
                        "/O=doesciencegrid.org/OU=Services/CN=fed-node-{i}.test"
                    )),
                    &kp.public,
                    t - 3600,
                    365,
                ),
                key: kp.private,
                chain: vec![],
            });
        }
        servers[index].clone()
    }
}

/// The shared PKI instance.
pub fn federation_pki() -> &'static FederationPki {
    static PKI: OnceLock<FederationPki> = OnceLock::new();
    PKI.get_or_init(|| {
        let t = now();
        let mut rng = StdRng::seed_from_u64(0xFEDCA);
        let ca = CertificateAuthority::new(
            &mut rng,
            dn("/O=doesciencegrid.org/CN=Federation CA"),
            t - 3600,
            3650,
        );
        let issue = |rng: &mut StdRng, subject: &str| -> Credential {
            let kp = rsa::generate(rng, rsa::DEFAULT_KEY_BITS);
            Credential {
                certificate: ca.issue(dn(subject), &kp.public, t - 3600, 365),
                key: kp.private,
                chain: vec![],
            }
        };
        let admin = issue(&mut rng, "/O=doesciencegrid.org/OU=People/CN=Fed Admin");
        let user = issue(&mut rng, "/O=doesciencegrid.org/OU=People/CN=Fed User");
        FederationPki {
            ca,
            admin,
            user,
            servers: Mutex::new(Vec::new()),
        }
    })
}
