//! Multi-node federation: N Clarens servers as one logical deployment.
//!
//! The paper's grid picture (§1-2) is many Clarens servers at many sites,
//! tied together by the discovery network: "service calls that are
//! location independent". This crate supplies the three pieces that turn
//! independently-started servers into a federation:
//!
//! * **Discovery-aware load balancing** — [`BalancedClient`] resolves a
//!   method to live endpoints through the station network, steers by the
//!   published load/latency attributes (power-of-two-choices on `p95_us`),
//!   and re-resolves with endpoint blacklisting when a node dies mid-call.
//! * **Proxy routing** — every node exports `proxy.call` (see the core
//!   `proxy` service): a request for a module the node does not own is
//!   forwarded one hop to the discovery-resolved owner, with an
//!   `x-clarens-hops` header bounding pathological bouncing.
//! * **WAL-shipping replication** — [`Replicator`] runs on follower nodes,
//!   polling the leader's `replication.fetch` cursor stream and applying
//!   the decoded operations to the local store, so VO membership, ACLs,
//!   sessions, and stored proxies converge and *any* node can authenticate
//!   any user.
//! * **Leader failover** — [`ElectionManager`] runs lease-based elections
//!   over the discovery network: the leader renews an epoch-stamped lease
//!   with every heartbeat, a lapsed lease promotes the most-caught-up
//!   follower under epoch N+1, and the dispatch-layer fence plus epoch
//!   checks everywhere keep a deposed leader from acknowledging (or
//!   shipping) writes the cluster will never see (DESIGN.md §14).
//!
//! [`FederationCluster`] assembles an in-process federation (shared PKI,
//! one station network, one leader + N-1 followers) for the integration
//! tests and the `repro federation` benchmark.

pub mod balance;
pub mod cluster;
pub mod election;
pub mod pki;
pub mod replicator;

pub use balance::BalancedClient;
pub use cluster::{FederationCluster, FederationNode, NodeOptions};
pub use election::{ElectionManager, ElectionOptions};
pub use pki::{federation_pki, FederationPki};
pub use replicator::Replicator;
