//! In-process federation harness: one station network, one leader, N-1
//! followers — the fixture behind the integration tests and the
//! `repro federation` / `repro failover` benchmarks.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens::client::ClarensClient;
use clarens::config::{ClarensConfig, FederationRole};
use clarens::core::ClarensCore;
use clarens::server::{install_permissive_acls, register_builtin_services, ClarensServer};
use clarens::services::DiscoveryService;
use monalisa_sim::station::wait_until;
use monalisa_sim::{DiscoveryAggregator, ServiceQuery, StationServer, UdpPublisher};

use crate::balance::BalancedClient;
use crate::election::{ElectionManager, ElectionOptions};
use crate::pki::federation_pki;
use crate::replicator::Replicator;

/// How often a node re-publishes its descriptors (with fresh load
/// attributes) to the station network.
const HEARTBEAT: Duration = Duration::from_millis(100);

/// Descriptor TTL in each node's aggregated discovery view: a node that
/// misses this many seconds of heartbeats stops being routable via
/// `proxy.call` (balanced clients go through the stations directly and
/// handle death by blacklisting instead).
const AGGREGATOR_TTL_SECS: i64 = 3;

/// Options for one federation node.
pub struct NodeOptions {
    /// Node index (selects the per-node server credential/DN).
    pub index: usize,
    /// Leader or follower (standalone nodes don't need this harness).
    pub role: FederationRole,
    /// `host:port` of the leader (followers only).
    pub leader: Option<String>,
    /// Persist the store here (the leader must persist: WAL shipping
    /// reads the log file; followers usually run in-memory — except
    /// under elections, where any follower may be promoted and must then
    /// serve its own log).
    pub db_path: Option<PathBuf>,
    /// Serve the file module from this root (only nodes that set it
    /// export `file.*` — which is what makes `proxy.call` forwarding
    /// observable).
    pub file_root: Option<PathBuf>,
    /// HTTP worker threads.
    pub workers: usize,
    /// Follower poll interval for `replication.fetch`.
    pub replication_poll_ms: u64,
    /// Leader-lease duration in ms; 0 keeps the pre-failover static
    /// roles (no election thread, leader always writable).
    pub leader_lease_ms: u64,
    /// Upper bound of the random pre-claim election pause.
    pub election_jitter_ms: u64,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            index: 0,
            role: FederationRole::Leader,
            leader: None,
            db_path: None,
            file_root: None,
            workers: 4,
            replication_poll_ms: 25,
            leader_lease_ms: 0,
            election_jitter_ms: 100,
        }
    }
}

/// One running federation node: server + discovery plumbing + (on
/// followers) the replication loop + (under elections) the election
/// manager.
pub struct FederationNode {
    /// The running server (its core is reachable via `server.core`).
    pub server: ClarensServer,
    /// This node's advertised url (`http://host:port/clarens`).
    pub url: String,
    /// This node's `host:port`.
    pub addr: String,
    /// The node's aggregated discovery view (shared with its proxy router).
    pub aggregator: Arc<DiscoveryAggregator>,
    heartbeat_stop: Arc<AtomicBool>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
    replicator: Option<Replicator>,
    election: Option<ElectionManager>,
}

/// Reserve a free localhost port: bind, read, release. The tiny window
/// between release and the server's own bind is why `start` retries.
fn reserve_port() -> std::io::Result<u16> {
    Ok(TcpListener::bind("127.0.0.1:0")?.local_addr()?.port())
}

impl FederationNode {
    /// Start a node against `stations`.
    pub fn start(
        options: NodeOptions,
        stations: Vec<Arc<StationServer>>,
    ) -> std::io::Result<FederationNode> {
        let pki = federation_pki();
        let mut last_err = None;
        for _ in 0..5 {
            // The server url must be final before services register (the
            // discovery descriptors and the proxy's own-url filter both
            // read it), so reserve a port first and bind to exactly it.
            let port = reserve_port()?;
            let addr = format!("127.0.0.1:{port}");
            let config = ClarensConfig {
                server_url: format!("http://{addr}/clarens"),
                admin_dns: vec![pki.admin.certificate.subject.to_string()],
                workers: options.workers,
                db_path: options.db_path.clone(),
                file_root: options.file_root.clone(),
                federation_role: options.role,
                federation_leader: options.leader.clone(),
                replication_poll_ms: options.replication_poll_ms,
                leader_lease_ms: options.leader_lease_ms,
                election_jitter_ms: options.election_jitter_ms,
                ..Default::default()
            };
            let core = ClarensCore::new(
                config,
                vec![pki.ca.certificate.clone()],
                pki.server_credential(options.index),
            )?;
            let aggregator = Arc::new(
                DiscoveryAggregator::new(stations.clone(), Arc::clone(&core.store)).with_ttl(
                    AGGREGATOR_TTL_SECS,
                    Arc::new(|| {
                        std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_secs() as i64)
                            .unwrap_or(0)
                    }),
                ),
            );
            let publisher = UdpPublisher::new(stations.iter().map(|s| s.local_addr()).collect())?;
            let discovery = DiscoveryService::new(Arc::clone(&aggregator), Some(publisher));
            register_builtin_services(&core, Some(discovery));
            install_permissive_acls(&core);
            let server = match ClarensServer::start(core, &addr, None) {
                Ok(server) => server,
                Err(e) => {
                    // Lost the port race: reserve a fresh one.
                    last_err = Some(e);
                    continue;
                }
            };
            let url = server.core.config.server_url.clone();
            let heartbeat_stop = Arc::new(AtomicBool::new(false));
            let heartbeat = Some(spawn_heartbeat(addr.clone(), Arc::clone(&heartbeat_stop)));
            let elections = options.leader_lease_ms > 0;
            // Static mode: followers replicate from the configured
            // leader. Election mode: every node runs the loop — it idles
            // while the node leads and follows `FederationState` when it
            // does not, so promotion/demotion needs no thread surgery.
            let replicator = if elections || options.role == FederationRole::Follower {
                Some(Replicator::start(
                    Arc::clone(&server.core),
                    options.leader.clone().unwrap_or_default(),
                    pki.admin.clone(),
                    options.replication_poll_ms,
                ))
            } else {
                None
            };
            let election = if elections {
                Some(
                    ElectionManager::start(
                        Arc::clone(&server.core),
                        addr.clone(),
                        stations.iter().map(|s| s.local_addr()).collect(),
                        stations.iter().map(|s| s.query_addr()).collect(),
                        ElectionOptions {
                            lease_ms: options.leader_lease_ms,
                            jitter_ms: options.election_jitter_ms,
                            seed: options.index as u64 + 1,
                        },
                    )
                    .expect("start election manager"),
                )
            } else {
                None
            };
            return Ok(FederationNode {
                server,
                url,
                addr,
                aggregator,
                heartbeat_stop,
                heartbeat,
                replicator,
                election,
            });
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrInUse, "no reservable port")
        }))
    }

    /// The node's shared core.
    pub fn core(&self) -> &Arc<ClarensCore> {
        &self.server.core
    }

    /// A client bound directly to this node (bypassing discovery).
    pub fn client(&self) -> ClarensClient {
        ClarensClient::new(self.addr.clone())
    }

    /// Ops the replication follower loop has applied (0 on leaders).
    pub fn replication_applied(&self) -> u64 {
        self.replicator
            .as_ref()
            .map(Replicator::applied)
            .unwrap_or(0)
    }

    /// Is this node currently the (writable) leader?
    pub fn is_leader(&self) -> bool {
        self.core().federation.role() == FederationRole::Leader
    }

    /// Cut (or heal) this node's election traffic — the split-brain
    /// injection. No-op on nodes without an election manager.
    pub fn set_partitioned(&self, on: bool) {
        if let Some(election) = &self.election {
            election.set_partitioned(on);
        }
    }

    /// Kill the node: stop heartbeats, elections, and replication, shut
    /// the server down. Sockets close immediately — in-flight requests
    /// fail like a crashed process's would.
    pub fn kill(mut self) {
        self.heartbeat_stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.heartbeat.take() {
            let _ = t.join();
        }
        drop(self.election.take());
        if let Some(r) = self.replicator.take() {
            r.stop();
        }
        self.server.shutdown();
    }
}

/// Re-publish this node's descriptors (with fresh load attributes) every
/// heartbeat, through the node's own RPC surface — the same
/// `discovery.publish` an operator's cron job would call.
fn spawn_heartbeat(addr: String, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    let admin = federation_pki().admin.clone();
    std::thread::Builder::new()
        .name(format!("heartbeat-{addr}"))
        .spawn(move || {
            let mut client = ClarensClient::new(addr)
                .with_credential(admin)
                .with_retries(0)
                .with_call_deadline(Duration::from_secs(2));
            let mut logged_in = false;
            while !stop.load(Ordering::SeqCst) {
                if !logged_in {
                    // On a follower, `system.auth` is fenced and the
                    // client chases the NOT_LEADER hint to the leader;
                    // the minted session replicates back within a poll
                    // or two, after which publish succeeds.
                    logged_in = client.login().is_ok();
                }
                if logged_in && client.call("discovery.publish", vec![]).is_err() {
                    logged_in = false;
                }
                std::thread::sleep(HEARTBEAT);
            }
        })
        .expect("spawn heartbeat thread")
}

/// A whole in-process federation: one station, node 0 the initial leader
/// (with a persistent store and the file service), the rest followers.
pub struct FederationCluster {
    /// The shared station server (the discovery network).
    pub station: Arc<StationServer>,
    /// Running nodes. Use [`FederationCluster::leader`] to find the
    /// current leader — under elections it moves.
    pub nodes: Vec<FederationNode>,
    scratch: PathBuf,
}

static CLUSTER_COUNTER: AtomicU64 = AtomicU64::new(0);

impl FederationCluster {
    /// Start an `n`-node federation with static roles (node 0 leads
    /// forever) and wait for discovery to converge.
    pub fn start(n: usize) -> FederationCluster {
        FederationCluster::start_with(n, 0, 100)
    }

    /// Start an `n`-node federation with lease-based elections: every
    /// node gets a persistent store (any follower may be promoted and
    /// must then serve its own WAL) and an election manager.
    pub fn start_elections(n: usize, lease_ms: u64, jitter_ms: u64) -> FederationCluster {
        assert!(lease_ms > 0, "elections need a non-zero lease");
        FederationCluster::start_with(n, lease_ms, jitter_ms)
    }

    fn start_with(n: usize, lease_ms: u64, jitter_ms: u64) -> FederationCluster {
        assert!(n >= 1, "a federation needs at least one node");
        let station =
            Arc::new(StationServer::spawn("fed-station", "127.0.0.1:0").expect("station"));
        let scratch = std::env::temp_dir().join(format!(
            "clarens-federation-{}-{}",
            std::process::id(),
            CLUSTER_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(scratch.join("files")).expect("scratch dir");

        let leader = FederationNode::start(
            NodeOptions {
                index: 0,
                role: FederationRole::Leader,
                db_path: Some(scratch.join("leader.wal")),
                file_root: Some(scratch.join("files")),
                leader_lease_ms: lease_ms,
                election_jitter_ms: jitter_ms,
                ..Default::default()
            },
            vec![Arc::clone(&station)],
        )
        .expect("leader");
        let leader_addr = leader.addr.clone();
        let mut nodes = vec![leader];
        for index in 1..n {
            nodes.push(
                FederationNode::start(
                    NodeOptions {
                        index,
                        role: FederationRole::Follower,
                        leader: Some(leader_addr.clone()),
                        db_path: (lease_ms > 0).then(|| scratch.join(format!("node{index}.wal"))),
                        leader_lease_ms: lease_ms,
                        election_jitter_ms: jitter_ms,
                        ..Default::default()
                    },
                    vec![Arc::clone(&station)],
                )
                .expect("follower"),
            );
        }
        let cluster = FederationCluster {
            station,
            nodes,
            scratch,
        };
        // Convergence: every node's aggregated view lists every node's
        // echo service (i.e., heartbeats flowed station -> all mirrors).
        let want = n;
        assert!(
            wait_until(Duration::from_secs(15), || {
                cluster.nodes.iter().all(|node| {
                    node.aggregator
                        .query_local(&ServiceQuery::by_method("echo.echo"))
                        .len()
                        == want
                })
            }),
            "discovery did not converge to {want} nodes"
        );
        cluster
    }

    /// The node currently leading, if any (highest epoch wins while a
    /// demotion is still propagating).
    pub fn try_leader(&self) -> Option<&FederationNode> {
        self.nodes
            .iter()
            .filter(|n| n.core().federation.role() == FederationRole::Leader)
            .max_by_key(|n| n.core().federation.epoch())
    }

    /// The current leader, following the epoch across failovers: after
    /// a [`FederationCluster::kill`] of the old leader this waits for a
    /// follower to win the election. Panics only if no leader emerges
    /// within 15 s.
    pub fn leader(&self) -> &FederationNode {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let best = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.core().federation.role() == FederationRole::Leader)
                .max_by_key(|(_, n)| n.core().federation.epoch())
                .map(|(i, _)| i);
            if let Some(index) = best {
                return &self.nodes[index];
            }
            assert!(
                Instant::now() < deadline,
                "no leader emerged within 15 s (election stuck?)"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Mint a user session on the current leader and wait until
    /// replication has propagated it to every node — after this, any node
    /// authenticates the session, which is what makes balanced clients
    /// node-agnostic. Retries across an in-flight election.
    pub fn user_session(&self) -> String {
        let mut session: Option<String> = None;
        assert!(
            wait_until(Duration::from_secs(15), || {
                let mut client = ClarensClient::new(self.leader().addr.clone())
                    .with_credential(federation_pki().user.clone())
                    .with_call_deadline(Duration::from_secs(2));
                match client.login() {
                    Ok(id) => {
                        session = Some(id);
                        true
                    }
                    Err(_) => false,
                }
            }),
            "could not mint a session on the leader"
        );
        let session = session.expect("session minted");
        assert!(
            wait_until(Duration::from_secs(15), || {
                self.nodes.iter().all(|node| {
                    let mut probe = node.client();
                    probe.set_session(session.clone());
                    probe.call("system.whoami", vec![]).is_ok()
                })
            }),
            "session did not replicate to every node"
        );
        session
    }

    /// A discovery-routed client carrying `session`.
    pub fn balanced_client(&self, session: &str, seed: u64) -> BalancedClient {
        BalancedClient::new(vec![self.station.query_addr()], session, seed)
    }

    /// Kill node `index`, returning its url (for blacklist assertions).
    pub fn kill(&mut self, index: usize) -> String {
        let node = self.nodes.remove(index);
        let url = node.url.clone();
        node.kill();
        url
    }

    /// Index of the current leader in `nodes`, if one is leading.
    pub fn leader_index(&self) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.core().federation.role() == FederationRole::Leader)
            .max_by_key(|(_, n)| n.core().federation.epoch())
            .map(|(i, _)| i)
    }

    /// Shut everything down and remove scratch state.
    pub fn cleanup(mut self) {
        for node in self.nodes.drain(..) {
            node.kill();
        }
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}
