//! Discovery-aware client-side load balancing.
//!
//! A [`BalancedClient`] never holds a fixed server address. It resolves
//! the method it is about to call through the station network (the same
//! TCP query path `discovery.find_remote` uses — deliberately independent
//! of any single Clarens node, so resolution survives node death), steers
//! by the live load attributes servers publish with their heartbeats, and
//! fails over by blacklisting a dead endpoint and re-resolving.
//!
//! Selection is power-of-two-choices on the published `p95_us` latency
//! attribute: pick two random candidates, use the less-loaded one. That
//! spreads a fleet of clients across the federation without the herding
//! a strict pick-the-minimum rule causes when attributes refresh only on
//! heartbeat.
//!
//! [`with_session_affinity`](BalancedClient::with_session_affinity) swaps
//! the placement policy for rendezvous (highest-random-weight) hashing of
//! the session id over the live endpoint set: every client carrying the
//! same session lands on the same node, so its auth/ACL/resolved-session
//! cache entries stay warm instead of being re-derived on every node the
//! fleet happens to spray. Replication makes every node *able* to serve
//! every session (PR 7), so affinity is purely a cache optimization: when
//! the preferred node dies it is blacklisted and the hash re-ranks over
//! the survivors — deterministic failover, and only the dead node's
//! sessions move (the rendezvous property; no global reshuffle).
//!
//! The balancer also carries a preferred wire protocol. A fleet speaking
//! clarens-binary against a mixed federation remembers, per endpoint,
//! which nodes answered `415 Unsupported Media Type` and speaks XML-RPC
//! to those from the start on later re-pins.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use clarens::client::{ClarensClient, ClientError};
use clarens_wire::{Protocol, Value};
use monalisa_sim::station::query_station;
use monalisa_sim::{ServiceDescriptor, ServiceQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How long a failed endpoint stays blacklisted before it may be retried.
const BLACKLIST_COOLDOWN: Duration = Duration::from_secs(2);

/// Per-call transport attempts before giving up (each against a freshly
/// re-resolved endpoint).
const MAX_ATTEMPTS: usize = 4;

/// A federation client that routes every call via discovery.
pub struct BalancedClient {
    stations: Vec<SocketAddr>,
    session: String,
    call_deadline: Duration,
    rng: StdRng,
    /// The endpoint currently in use: url plus its connected client.
    current: Option<(String, ClarensClient)>,
    /// Endpoints that recently failed, with the time of the failure.
    blacklist: HashMap<String, Instant>,
    /// Drop the pin and re-resolve after this many successful calls, so a
    /// fleet of long-lived clients keeps tracking the published load
    /// attributes instead of freezing its initial placement.
    repin_every: Option<u64>,
    calls_since_pin: u64,
    resolutions: u64,
    failovers: u64,
    /// Preferred wire protocol for new endpoint connections.
    protocol: Protocol,
    /// Endpoints that answered 415 to the binary protocol; spoken to in
    /// XML-RPC directly on later pins.
    xmlrpc_only: HashSet<String>,
    /// Binary -> XML-RPC downgrades observed across all endpoints.
    protocol_fallbacks: u64,
    /// Route by rendezvous-hashing the session over live endpoints
    /// instead of p2c (cache-warm session affinity).
    affinity: bool,
    /// Believed leader (`host:port`, epoch): replicated writes go here
    /// directly instead of bouncing off a follower's NOT_LEADER fault.
    /// Learned from redirect hints; dropped when the leader stops
    /// answering.
    leader: Option<(String, u64)>,
    /// Connected client pinned to the believed leader (writes only).
    leader_client: Option<ClarensClient>,
    /// Times a write was re-aimed because of a NOT_LEADER hint.
    write_reroutes: u64,
}

impl BalancedClient {
    /// A client resolving through `stations`, calling with the given
    /// (already minted, replication-propagated) session. `seed` makes the
    /// candidate-choice jitter deterministic for reproducible runs.
    pub fn new(stations: Vec<SocketAddr>, session: impl Into<String>, seed: u64) -> Self {
        BalancedClient {
            stations,
            session: session.into(),
            call_deadline: Duration::from_secs(2),
            rng: StdRng::seed_from_u64(seed),
            current: None,
            blacklist: HashMap::new(),
            repin_every: None,
            calls_since_pin: 0,
            resolutions: 0,
            failovers: 0,
            protocol: Protocol::XmlRpc,
            xmlrpc_only: HashSet::new(),
            protocol_fallbacks: 0,
            affinity: false,
            leader: None,
            leader_client: None,
            write_reroutes: 0,
        }
    }

    /// Prefer `protocol` when connecting to endpoints. Binary-speaking
    /// clients downgrade per endpoint on 415 (see the module docs).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Route calls by rendezvous-hashing the session id over the live
    /// endpoint set, so repeat calls for one session hit the same node's
    /// warm caches. Falls back to the surviving nodes' hash order (and
    /// ultimately p2c among equals — there are none with distinct urls)
    /// when the preferred node is blacklisted.
    pub fn with_session_affinity(mut self) -> Self {
        self.affinity = true;
        self
    }

    /// Override the per-attempt call deadline (default 2 s).
    pub fn with_call_deadline(mut self, deadline: Duration) -> Self {
        self.call_deadline = deadline;
        self
    }

    /// Re-resolve (and possibly move) after every `calls` successful
    /// calls. Off by default: a lone client gains nothing from moving,
    /// but a fleet re-pinning periodically converges on an even spread as
    /// the servers' published latency attributes catch up with the load.
    pub fn with_repin_every(mut self, calls: u64) -> Self {
        self.repin_every = Some(calls.max(1));
        self
    }

    /// Times this client resolved an endpoint via discovery.
    pub fn resolutions(&self) -> u64 {
        self.resolutions
    }

    /// Times a failed endpoint was abandoned for a re-resolved one.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Binary -> XML-RPC protocol downgrades observed (415 negotiation).
    pub fn protocol_fallbacks(&self) -> u64 {
        self.protocol_fallbacks
    }

    /// The url currently pinned, if any (tests/bench introspection).
    pub fn current_url(&self) -> Option<&str> {
        self.current.as_ref().map(|(url, _)| url.as_str())
    }

    /// Times a write call was re-aimed at a hinted leader.
    pub fn write_reroutes(&self) -> u64 {
        self.write_reroutes
    }

    /// The leader this client currently believes in, if any.
    pub fn believed_leader(&self) -> Option<&str> {
        self.leader.as_ref().map(|(addr, _)| addr.as_str())
    }

    /// Invoke `method`, resolving (and re-resolving on transport failure)
    /// through discovery. A server-side fault is a completed exchange and
    /// is returned as-is; only transport-level failures trigger failover.
    ///
    /// Replicated writes (session/VO/ACL/proxy/IM mutations) are
    /// leader-aware: once a NOT_LEADER hint teaches this client where the
    /// leader is, writes go straight there; when leadership moves, the
    /// next hint re-aims them, within the same attempt budget.
    pub fn call(&mut self, method: &str, params: Vec<Value>) -> Result<Value, ClientError> {
        if clarens::services::is_replicated_write(method) {
            return self.call_write(method, params);
        }
        let mut voluntary = false;
        if let Some(limit) = self.repin_every {
            if self.calls_since_pin >= limit && self.current.is_some() {
                self.current = None;
                voluntary = true;
            }
        }
        let mut last_err = None;
        for attempt in 0..MAX_ATTEMPTS {
            if self.current.is_none() {
                match self.resolve(method, voluntary) {
                    Ok(endpoint) => self.current = Some(endpoint),
                    Err(e) => {
                        last_err = Some(e);
                        // Candidates may reappear as blacklist cooldowns
                        // lapse; a short pause before the next attempt.
                        std::thread::sleep(Duration::from_millis(25 << attempt.min(3)));
                        continue;
                    }
                }
            }
            let (url, client) = self.current.as_mut().expect("endpoint pinned");
            match client.call(method, params.clone()) {
                Ok(value) => {
                    // The inner client downgrades itself on 415; remember
                    // the endpoint so later pins skip the failed handshake.
                    if client.protocol_fallbacks() > 0 && self.xmlrpc_only.insert(url.clone()) {
                        self.protocol_fallbacks += 1;
                    }
                    let hint = client
                        .last_leader()
                        .map(|(addr, epoch)| (addr.to_owned(), epoch));
                    self.calls_since_pin += 1;
                    self.learn_leader(hint);
                    return Ok(value);
                }
                Err(ClientError::Fault(fault)) => return Err(ClientError::Fault(fault)),
                Err(transport) => {
                    // Endpoint is suspect: blacklist it and re-resolve.
                    self.blacklist.insert(url.clone(), Instant::now());
                    self.current = None;
                    voluntary = false;
                    self.failovers += 1;
                    last_err = Some(transport);
                }
            }
        }
        Err(last_err
            .unwrap_or_else(|| ClientError::Transport(format!("no endpoint serves {method}"))))
    }

    /// Adopt a freshly observed leader hint (higher epochs win; equal
    /// epochs refresh the address).
    fn learn_leader(&mut self, hint: Option<(String, u64)>) {
        if let Some((addr, epoch)) = hint {
            let stale = matches!(&self.leader, Some((_, known)) if *known > epoch);
            if !addr.is_empty() && !stale {
                if self.leader.as_ref().map(|(a, _)| a.as_str()) != Some(addr.as_str()) {
                    self.leader_client = None;
                }
                self.leader = Some((addr, epoch));
            }
        }
    }

    /// Leader-aware path for replicated writes. Aim at the believed
    /// leader when one is known (falling back to ordinary discovery
    /// resolution when not); on a NOT_LEADER fault adopt the carried
    /// hint and re-aim; on a transport failure drop the belief, blacklist
    /// the endpoint, and let the next attempt re-learn via any node.
    fn call_write(&mut self, method: &str, params: Vec<Value>) -> Result<Value, ClientError> {
        let mut last_err = None;
        for attempt in 0..MAX_ATTEMPTS {
            // Ensure a client aimed at the believed leader, if any.
            if self.leader_client.is_none() {
                if let Some((addr, _)) = &self.leader {
                    let mut client = ClarensClient::new(addr.clone())
                        .with_protocol(self.protocol)
                        .with_retries(0)
                        .with_call_deadline(self.call_deadline);
                    client.set_session(self.session.clone());
                    self.leader_client = Some(client);
                }
            }
            if let Some(client) = self.leader_client.as_mut() {
                match client.call(method, params.clone()) {
                    Ok(value) => {
                        let hint = client
                            .last_leader()
                            .map(|(addr, epoch)| (addr.to_owned(), epoch));
                        self.learn_leader(hint);
                        return Ok(value);
                    }
                    Err(ClientError::Fault(fault)) => match fault.leader_hint() {
                        // `executed=maybe`: the old leader applied the
                        // write before losing its lease. Learn where the
                        // leader went, but surface the fault — replaying
                        // a replicated write (always a mutation) here
                        // could execute it twice.
                        Some((hint, epoch)) if fault.executed_maybe() => {
                            self.leader_client = None;
                            self.leader = None;
                            self.learn_leader(Some((hint, epoch)));
                            return Err(ClientError::Fault(fault));
                        }
                        Some((hint, epoch)) => {
                            // Leadership moved (or is in flight): re-aim
                            // and retry within the attempt budget.
                            self.leader_client = None;
                            self.leader = None;
                            self.write_reroutes += 1;
                            self.learn_leader(Some((hint, epoch)));
                            last_err = Some(ClientError::Fault(fault));
                            std::thread::sleep(Duration::from_millis(25 << attempt.min(3)));
                            continue;
                        }
                        None => return Err(ClientError::Fault(fault)),
                    },
                    Err(transport) => {
                        // The believed leader is gone: forget it and fall
                        // through to discovery, which will hint us anew.
                        if let Some((addr, _)) = self.leader.take() {
                            self.blacklist
                                .insert(format!("http://{addr}/clarens"), Instant::now());
                        }
                        self.leader_client = None;
                        last_err = Some(transport);
                        continue;
                    }
                }
            }
            // No leader belief: resolve like any call — the inner client
            // chases NOT_LEADER hints itself, and we learn from it.
            if self.current.is_none() {
                match self.resolve(method, false) {
                    Ok(endpoint) => self.current = Some(endpoint),
                    Err(e) => {
                        last_err = Some(e);
                        std::thread::sleep(Duration::from_millis(25 << attempt.min(3)));
                        continue;
                    }
                }
            }
            let (url, client) = self.current.as_mut().expect("endpoint pinned");
            match client.call(method, params.clone()) {
                Ok(value) => {
                    let hint = client
                        .last_leader()
                        .map(|(addr, epoch)| (addr.to_owned(), epoch));
                    self.learn_leader(hint);
                    return Ok(value);
                }
                Err(ClientError::Fault(fault)) => match fault.leader_hint() {
                    // Same post-execution rule as the leader-aimed path.
                    Some((hint, epoch)) if fault.executed_maybe() => {
                        self.learn_leader(Some((hint, epoch)));
                        return Err(ClientError::Fault(fault));
                    }
                    Some((hint, epoch)) => {
                        self.write_reroutes += 1;
                        self.learn_leader(Some((hint, epoch)));
                        last_err = Some(ClientError::Fault(fault));
                        std::thread::sleep(Duration::from_millis(25 << attempt.min(3)));
                        continue;
                    }
                    None => return Err(ClientError::Fault(fault)),
                },
                Err(transport) => {
                    self.blacklist.insert(url.clone(), Instant::now());
                    self.current = None;
                    self.failovers += 1;
                    last_err = Some(transport);
                }
            }
        }
        Err(last_err
            .unwrap_or_else(|| ClientError::Transport(format!("no leader serves {method}"))))
    }

    /// Resolve `method` to a connected client via the station network.
    ///
    /// A `voluntary` re-pin (periodic rotation, nothing failed) picks
    /// uniformly at random: the published latency attributes are
    /// cumulative and therefore stale under shifting load, and steering a
    /// whole fleet by a stale signal herds it onto whichever node looked
    /// best at the last heartbeat. Random rotation keeps the time-averaged
    /// spread even no matter how stale the attributes are, while the p2c
    /// steering below still handles initial placement and failover, where
    /// a persistently slow or dying node is exactly what the attributes
    /// do capture.
    fn resolve(
        &mut self,
        method: &str,
        voluntary: bool,
    ) -> Result<(String, ClarensClient), ClientError> {
        let query = ServiceQuery::by_method(method);
        let mut candidates: Vec<ServiceDescriptor> = Vec::new();
        for station in &self.stations {
            if let Ok(hits) = query_station(*station, &query) {
                for hit in hits {
                    if !candidates.iter().any(|d| d.url == hit.url) {
                        candidates.push(hit);
                    }
                }
            }
        }
        let now = Instant::now();
        self.blacklist
            .retain(|_, failed_at| now.duration_since(*failed_at) < BLACKLIST_COOLDOWN);
        candidates.retain(|d| !self.blacklist.contains_key(&d.url));
        if candidates.is_empty() {
            return Err(ClientError::Transport(format!(
                "discovery found no live endpoint for {method}"
            )));
        }
        let pick = if self.affinity {
            // Rendezvous hashing: the candidate with the highest
            // hash(session, url) wins. Stable while the node lives; when
            // it is blacklisted the next-ranked survivor takes over, and
            // only this session's traffic moves.
            (0..candidates.len())
                .max_by_key(|&i| rendezvous_score(&self.session, &candidates[i].url))
                .expect("candidates non-empty")
        } else {
            // Power-of-two-choices on published p95 latency.
            let p95 = |d: &ServiceDescriptor| {
                d.attributes
                    .get("p95_us")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(u64::MAX)
            };
            let first = (self.rng.next_u64() % candidates.len() as u64) as usize;
            let second = (self.rng.next_u64() % candidates.len() as u64) as usize;
            if voluntary || p95(&candidates[first]) <= p95(&candidates[second]) {
                first
            } else {
                second
            }
        };
        let descriptor = candidates.swap_remove(pick);
        let addr = host_port(&descriptor.url).ok_or_else(|| {
            ClientError::Protocol(format!("unroutable descriptor url {}", descriptor.url))
        })?;
        let protocol = if self.xmlrpc_only.contains(&descriptor.url) {
            Protocol::XmlRpc
        } else {
            self.protocol
        };
        let mut client = ClarensClient::new(addr)
            .with_protocol(protocol)
            .with_retries(0)
            .with_call_deadline(self.call_deadline);
        client.set_session(self.session.clone());
        self.resolutions += 1;
        self.calls_since_pin = 0;
        Ok((descriptor.url, client))
    }
}

/// FNV-1a rendezvous score for (session, endpoint): each session ranks
/// every endpoint by an independent-looking hash, and the top-ranked live
/// endpoint is the session's home node.
fn rendezvous_score(session: &str, url: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(url.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extract `host:port` from a descriptor url.
fn host_port(url: &str) -> Option<&str> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))?;
    let hp = &rest[..rest.find('/').unwrap_or(rest.len())];
    (!hp.is_empty()).then_some(hp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_minimally_disruptive() {
        let urls: Vec<String> = (0..6)
            .map(|i| format!("http://10.0.0.{i}:8080/clarens"))
            .collect();
        let sessions: Vec<String> = (0..200).map(|i| format!("session-{i}")).collect();
        let home = |session: &str, pool: &[String]| -> String {
            pool.iter()
                .max_by_key(|u| rendezvous_score(session, u))
                .unwrap()
                .clone()
        };
        // Stable: same inputs, same placement.
        for s in &sessions {
            assert_eq!(home(s, &urls), home(s, &urls));
        }
        // Spread: no node owns everything (probabilistic but deterministic
        // for this fixed session set).
        let mut per_node: HashMap<String, usize> = HashMap::new();
        for s in &sessions {
            *per_node.entry(home(s, &urls)).or_default() += 1;
        }
        assert!(
            per_node.len() >= 4,
            "placement too concentrated: {per_node:?}"
        );
        // Minimal disruption: removing one node only moves the sessions
        // that lived there.
        let dead = urls[2].clone();
        let survivors: Vec<String> = urls.iter().filter(|u| **u != dead).cloned().collect();
        for s in &sessions {
            let before = home(s, &urls);
            let after = home(s, &survivors);
            if before != dead {
                assert_eq!(before, after, "unaffected session {s} moved");
            } else {
                assert_ne!(after, dead);
            }
        }
    }

    #[test]
    fn host_port_parses_descriptor_urls() {
        assert_eq!(
            host_port("http://127.0.0.1:8080/clarens"),
            Some("127.0.0.1:8080")
        );
        assert_eq!(host_port("https://host:1/x"), Some("host:1"));
        assert_eq!(host_port("http://bare-host"), Some("bare-host"));
        assert_eq!(host_port("ftp://x"), None);
        assert_eq!(host_port("http:///path"), None);
    }
}
