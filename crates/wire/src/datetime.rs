//! The `dateTime.iso8601` flavour used by XML-RPC, plus civil/Unix-time
//! conversion.
//!
//! XML-RPC's canonical form is the compact `19980717T14:08:55`; many client
//! libraries emit the extended `1998-07-17T14:08:55` (optionally with a `Z`
//! suffix). We parse both and always emit the compact form, which keeps the
//! reproduction byte-compatible with the historical wire format while
//! accepting modern clients. Timestamps are treated as UTC.

use std::fmt;

/// A calendar date-time with second precision (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// Full year, e.g. 2005.
    pub year: i32,
    /// Month 1-12.
    pub month: u8,
    /// Day 1-31.
    pub day: u8,
    /// Hour 0-23.
    pub hour: u8,
    /// Minute 0-59.
    pub minute: u8,
    /// Second 0-59 (leap seconds are not represented).
    pub second: u8,
}

/// Errors from [`DateTime::parse`] or [`DateTime::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateTimeError(pub String);

impl fmt::Display for DateTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dateTime: {}", self.0)
    }
}

impl std::error::Error for DateTimeError {}

/// Is `year` a Gregorian leap year?
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in a month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

impl DateTime {
    /// Construct with validation.
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<Self, DateTimeError> {
        if !(1..=12).contains(&month) {
            return Err(DateTimeError(format!("month {month} out of range")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateTimeError(format!(
                "day {day} out of range for {year}-{month}"
            )));
        }
        if hour > 23 || minute > 59 || second > 59 {
            return Err(DateTimeError(format!(
                "time {hour}:{minute}:{second} out of range"
            )));
        }
        Ok(DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Parse either the compact XML-RPC form (`19980717T14:08:55`) or the
    /// extended ISO 8601 form (`1998-07-17T14:08:55`, optional trailing `Z`).
    pub fn parse(text: &str) -> Result<Self, DateTimeError> {
        let text = text.trim();
        let text = text.strip_suffix('Z').unwrap_or(text);
        let (date_part, time_part) = text
            .split_once('T')
            .ok_or_else(|| DateTimeError(format!("missing 'T' separator in {text:?}")))?;

        let digits: String = date_part.chars().filter(|c| *c != '-').collect();
        if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(DateTimeError(format!("bad date part {date_part:?}")));
        }
        let year: i32 = digits[0..4]
            .parse()
            .map_err(|_| DateTimeError("year".into()))?;
        let month: u8 = digits[4..6]
            .parse()
            .map_err(|_| DateTimeError("month".into()))?;
        let day: u8 = digits[6..8]
            .parse()
            .map_err(|_| DateTimeError("day".into()))?;

        let tdigits: String = time_part.chars().filter(|c| *c != ':').collect();
        if tdigits.len() != 6 || !tdigits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(DateTimeError(format!("bad time part {time_part:?}")));
        }
        let hour: u8 = tdigits[0..2]
            .parse()
            .map_err(|_| DateTimeError("hour".into()))?;
        let minute: u8 = tdigits[2..4]
            .parse()
            .map_err(|_| DateTimeError("minute".into()))?;
        let second: u8 = tdigits[4..6]
            .parse()
            .map_err(|_| DateTimeError("second".into()))?;

        DateTime::new(year, month, day, hour, minute, second)
    }

    /// Convert a Unix timestamp (seconds since 1970-01-01T00:00:00Z) to a
    /// civil date-time. Uses Howard Hinnant's `civil_from_days` algorithm.
    pub fn from_unix(secs: i64) -> Self {
        let days = secs.div_euclid(86_400);
        let mut rem = secs.rem_euclid(86_400);
        let hour = (rem / 3600) as u8;
        rem %= 3600;
        let minute = (rem / 60) as u8;
        let second = (rem % 60) as u8;

        // civil_from_days
        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097); // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = (y + i64::from(m <= 2)) as i32;

        DateTime {
            year,
            month: m,
            day: d,
            hour,
            minute,
            second,
        }
    }

    /// Convert to a Unix timestamp (`days_from_civil`).
    pub fn to_unix(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = y.div_euclid(400);
        let yoe = y.rem_euclid(400); // [0, 399]
        let m = i64::from(self.month);
        let mp = if m > 2 { m - 3 } else { m + 9 }; // [0, 11]
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        let days = era * 146_097 + doe - 719_468;
        days * 86_400
            + i64::from(self.hour) * 3600
            + i64::from(self.minute) * 60
            + i64::from(self.second)
    }

    /// The current time (UTC), from the system clock.
    pub fn now() -> Self {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        DateTime::from_unix(secs)
    }
}

impl fmt::Display for DateTime {
    /// Compact XML-RPC form: `19980717T14:08:55`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}{:02}{:02}T{:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_compact_and_extended() {
        let a = DateTime::parse("19980717T14:08:55").unwrap();
        let b = DateTime::parse("1998-07-17T14:08:55").unwrap();
        let c = DateTime::parse("1998-07-17T14:08:55Z").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.to_string(), "19980717T14:08:55");
    }

    #[test]
    fn parse_compact_time_without_colons() {
        let a = DateTime::parse("19980717T140855").unwrap();
        assert_eq!(a.hour, 14);
        assert_eq!(a.second, 55);
    }

    #[test]
    fn rejects_invalid() {
        assert!(DateTime::parse("1998-13-01T00:00:00").is_err());
        assert!(DateTime::parse("1998-02-30T00:00:00").is_err());
        assert!(DateTime::parse("1998-02-28T24:00:00").is_err());
        assert!(DateTime::parse("garbage").is_err());
        assert!(DateTime::parse("1998-02-28 00:00:00").is_err());
        assert!(DateTime::parse("199-02-28T00:00:00").is_err());
    }

    #[test]
    fn unix_epoch_roundtrip() {
        let dt = DateTime::from_unix(0);
        assert_eq!(dt, DateTime::new(1970, 1, 1, 0, 0, 0).unwrap());
        assert_eq!(dt.to_unix(), 0);
    }

    #[test]
    fn known_timestamps() {
        // 2005-06-15T12:00:00Z (around the paper's publication)
        let dt = DateTime::new(2005, 6, 15, 12, 0, 0).unwrap();
        assert_eq!(dt.to_unix(), 1_118_836_800);
        assert_eq!(DateTime::from_unix(1_118_836_800), dt);
        // Negative (pre-epoch): 1969-12-31T23:59:59Z
        assert_eq!(
            DateTime::from_unix(-1),
            DateTime::new(1969, 12, 31, 23, 59, 59).unwrap()
        );
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2005));
        assert_eq!(days_in_month(2004, 2), 29);
        assert_eq!(days_in_month(2005, 2), 28);
        assert!(DateTime::parse("2004-02-29T00:00:00").is_ok());
        assert!(DateTime::parse("2005-02-29T00:00:00").is_err());
    }

    #[test]
    fn unix_roundtrip_sweep() {
        // Sweep across several eras with odd offsets.
        for secs in (-2_000_000_000i64..=2_000_000_000).step_by(86_399 * 37) {
            assert_eq!(DateTime::from_unix(secs).to_unix(), secs, "secs={secs}");
        }
    }

    #[test]
    fn ordering_is_chronological() {
        let a = DateTime::new(2005, 1, 2, 0, 0, 0).unwrap();
        let b = DateTime::new(2005, 1, 2, 0, 0, 1).unwrap();
        let c = DateTime::new(2006, 1, 1, 0, 0, 0).unwrap();
        assert!(a < b && b < c);
    }
}
