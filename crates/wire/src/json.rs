//! JSON parser and writer for [`Value`] (RFC 8259).
//!
//! JSON-RPC (paper §2, "Multiple protocols... JSON-RPC") runs on top of this
//! module. JSON has no binary or date type, so [`Value::Bytes`] serializes
//! as a base64 string and [`Value::DateTime`] as its ISO string; parsing
//! therefore never produces those variants — the RPC layer re-interprets
//! strings where a service expects bytes (see [`Value::coerce_bytes`]).

use std::collections::BTreeMap;

use crate::value::Value;
use crate::WireError;

/// Maximum nesting depth accepted by the parser. Protects the recursive
/// descent from stack exhaustion on adversarial inputs (the Clarens server
/// parses unauthenticated request bodies).
pub const MAX_DEPTH: usize = 128;

/// Serialize a value as compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = Vec::new();
    write_into(&mut out, value);
    // The writer only ever emits valid UTF-8 (escapes are ASCII, the rest
    // is copied from `str` data).
    String::from_utf8(out).expect("JSON writer output is UTF-8")
}

/// Serialize with two-space indentation (used by the portal pages).
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = Vec::new();
    write_pretty(&mut out, value, 0);
    String::from_utf8(out).expect("JSON writer output is UTF-8")
}

/// Serialize a value as compact JSON appended to a byte buffer.
///
/// This is the single writer implementation: [`to_string`] wraps it, and the
/// allocation-lean response path ([`crate::jsonrpc::encode_response_into`])
/// calls it directly so values stream into the response buffer with no
/// intermediate `String`s (integers via `write!`, bytes via
/// [`crate::base64::encode_into`]).
pub fn write_into(out: &mut Vec<u8>, value: &Value) {
    use std::io::Write as _;
    match value {
        Value::Nil => out.extend_from_slice(b"null"),
        Value::Bool(true) => out.extend_from_slice(b"true"),
        Value::Bool(false) => out.extend_from_slice(b"false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Double(d) => write_double(out, *d),
        Value::Str(s) => write_string_into(out, s),
        Value::Bytes(b) => {
            out.push(b'"');
            // Base64 output contains no characters that need escaping.
            crate::base64::encode_into(b, out);
            out.push(b'"');
        }
        Value::DateTime(dt) => {
            // The ISO form is digits/'T'/':' only — nothing to escape.
            let _ = write!(out, "\"{dt}\"");
        }
        Value::Array(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_into(out, item);
            }
            out.push(b']');
        }
        Value::Struct(map) => {
            out.push(b'{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_string_into(out, k);
                out.push(b':');
                write_into(out, v);
            }
            out.push(b'}');
        }
    }
}

fn write_pretty(out: &mut Vec<u8>, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.extend_from_slice(b"[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.extend_from_slice(b",\n");
                }
                for _ in 0..indent + 1 {
                    out.extend_from_slice(b"  ");
                }
                write_pretty(out, item, indent + 1);
            }
            out.push(b'\n');
            for _ in 0..indent {
                out.extend_from_slice(b"  ");
            }
            out.push(b']');
        }
        Value::Struct(map) if !map.is_empty() => {
            out.extend_from_slice(b"{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.extend_from_slice(b",\n");
                }
                for _ in 0..indent + 1 {
                    out.extend_from_slice(b"  ");
                }
                write_string_into(out, k);
                out.extend_from_slice(b": ");
                write_pretty(out, v, indent + 1);
            }
            out.push(b'\n');
            for _ in 0..indent {
                out.extend_from_slice(b"  ");
            }
            out.push(b'}');
        }
        other => write_into(out, other),
    }
}

/// JSON numbers must not render as `NaN`/`inf`; we substitute `null` as
/// browsers' `JSON.stringify` does.
fn write_double(out: &mut Vec<u8>, d: f64) {
    use std::io::Write as _;
    if d.is_finite() {
        let start = out.len();
        let _ = write!(out, "{d}");
        // Ensure it re-parses as a double, not an int (e.g. "2" -> "2.0"),
        // so round-trips preserve the variant.
        if out[start..]
            .iter()
            .all(|b| b.is_ascii_digit() || *b == b'-')
        {
            out.extend_from_slice(b".0");
        }
    } else {
        out.extend_from_slice(b"null");
    }
}

/// Write a JSON string literal (quotes and escapes included) into `out`.
///
/// All escapable characters are ASCII, so the byte-wise walk emits exactly
/// what the old char-wise writer did; multi-byte UTF-8 passes through.
pub fn write_string_into(out: &mut Vec<u8>, s: &str) {
    use std::io::Write as _;
    out.push(b'"');
    for &b in s.as_bytes() {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            0x08 => out.extend_from_slice(b"\\b"),
            0x0c => out.extend_from_slice(b"\\f"),
            b if b < 0x20 => {
                let _ = write!(out, "\\u{b:04x}");
            }
            b => out.push(b),
        }
    }
    out.push(b'"');
}

/// Parse a JSON document into a [`Value`].
pub fn parse(text: &str) -> Result<Value, WireError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(WireError::parse(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(WireError::parse(format!(
                "expected '{}' at offset {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(WireError::parse(format!(
                "expected '{}', found EOF",
                b as char
            ))),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::parse("maximum nesting depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Nil),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(WireError::parse(format!(
                "unexpected character '{}' at offset {}",
                other as char, self.pos
            ))),
            None => Err(WireError::parse("unexpected EOF")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, WireError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(WireError::parse(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(other) => {
                    return Err(WireError::parse(format!(
                        "expected ',' or ']' at offset {}, found '{}'",
                        self.pos - 1,
                        other as char
                    )))
                }
                None => return Err(WireError::parse("unterminated array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Struct(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Struct(map)),
                Some(other) => {
                    return Err(WireError::parse(format!(
                        "expected ',' or '}}' at offset {}, found '{}'",
                        self.pos - 1,
                        other as char
                    )))
                }
                None => return Err(WireError::parse("unterminated object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| WireError::parse("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low
                            // surrogate and combine.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(WireError::parse("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(WireError::parse("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| WireError::parse("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(WireError::parse("unpaired low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| WireError::parse("invalid codepoint"))?,
                            );
                        }
                    }
                    Some(other) => {
                        return Err(WireError::parse(format!(
                            "invalid escape '\\{}'",
                            other as char
                        )))
                    }
                    None => return Err(WireError::parse("EOF in escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(WireError::parse("raw control character in string"))
                }
                Some(_) => unreachable!("fast path consumed plain bytes"),
                None => return Err(WireError::parse("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, WireError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| WireError::parse("EOF in \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| WireError::parse("invalid hex in \\u escape"))?;
            cp = (cp << 4) | d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(WireError::parse("number missing digits"));
        }
        // Leading zeros are invalid JSON (e.g. 01).
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(WireError::parse("leading zero in number"));
        }
        let mut is_double = false;
        if self.peek() == Some(b'.') {
            is_double = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(WireError::parse("missing digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_double = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(WireError::parse("missing digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_double {
            text.parse::<f64>()
                .map(Value::Double)
                .map_err(|_| WireError::parse(format!("invalid number {text:?}")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integers beyond i64 degrade to doubles, like JS clients.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Double)
                    .map_err(|_| WireError::parse(format!("invalid number {text:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datetime::DateTime;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Nil);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Double(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Double(1000.0));
        assert_eq!(parse("-1.5e-2").unwrap(), Value::Double(-0.015));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Struct(Default::default()));
        assert_eq!(
            parse("[1, [2, 3], {\"a\": null}]").unwrap(),
            Value::array([
                Value::Int(1),
                Value::array([Value::Int(2), Value::Int(3)]),
                Value::structure([("a", Value::Nil)]),
            ])
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\ne\tfA""#).unwrap(),
            Value::Str("a\"b\\c/d\ne\tfA".into())
        );
        // Surrogate pair: U+1F600
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
    }

    #[test]
    fn bad_strings_rejected() {
        assert!(parse(r#""\ud83d""#).is_err()); // unpaired high surrogate
        assert!(parse(r#""\ude00""#).is_err()); // unpaired low surrogate
        assert!(parse(r#""\x""#).is_err()); // bad escape
        assert!(parse("\"a\nb\"").is_err()); // raw control char
        assert!(parse("\"abc").is_err()); // unterminated
    }

    #[test]
    fn bad_numbers_rejected() {
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("-").is_err());
        assert!(parse("+1").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn writer_roundtrip() {
        let value = Value::structure([
            ("int", Value::Int(-3)),
            ("dbl", Value::Double(1.5)),
            ("whole_dbl", Value::Double(2.0)),
            ("str", Value::from("line1\nline2 \"quoted\"")),
            ("arr", Value::array([Value::Bool(true), Value::Nil])),
            ("nested", Value::structure([("k", Value::from("v"))])),
        ]);
        let text = to_string(&value);
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn doubles_stay_doubles() {
        // A whole-number double must not round-trip into an Int.
        let text = to_string(&Value::Double(2.0));
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::Double(2.0));
    }

    #[test]
    fn bytes_and_datetime_serialize_as_strings() {
        assert_eq!(to_string(&Value::Bytes(b"foo".to_vec())), "\"Zm9v\"");
        let dt = DateTime::new(2005, 6, 15, 12, 0, 0).unwrap();
        assert_eq!(to_string(&Value::DateTime(dt)), "\"20050615T12:00:00\"");
    }

    #[test]
    fn nonfinite_doubles_become_null() {
        assert_eq!(to_string(&Value::Double(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Double(f64::INFINITY)), "null");
    }

    #[test]
    fn big_integers_degrade_to_double() {
        let v = parse("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Double(_)));
        assert_eq!(parse(&i64::MAX.to_string()).unwrap(), Value::Int(i64::MAX));
    }

    #[test]
    fn pretty_printer_reparses() {
        let value = Value::structure([
            ("a", Value::array([Value::Int(1), Value::Int(2)])),
            ("b", Value::structure([("c", Value::Nil)])),
            ("empty_arr", Value::Array(vec![])),
            ("empty_obj", Value::Struct(Default::default())),
        ]);
        let pretty = to_string_pretty(&value);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn control_chars_escaped_on_write() {
        let s = Value::Str("\u{01}\u{1f}".into());
        assert_eq!(to_string(&s), "\"\\u0001\\u001f\"");
        assert_eq!(parse(&to_string(&s)).unwrap(), s);
    }
}
