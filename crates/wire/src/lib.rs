//! # clarens-wire — wire formats for the Clarens framework
//!
//! Clarens (van Lingen et al., ICPPW 2005) speaks several RPC protocols over
//! HTTP: XML-RPC, a SOAP 1.1 subset, and JSON-RPC. All of them marshal the
//! same small value algebra. This crate implements that algebra
//! ([`Value`]) together with self-contained codecs:
//!
//! * [`json`] — a JSON parser and writer (RFC 8259 subset, no external deps),
//! * [`xml`] — a small XML 1.0 parser/writer (elements, attributes, text,
//!   CDATA, comments; no DTDs — enough for RPC payloads),
//! * [`xmlrpc`] — XML-RPC `methodCall` / `methodResponse` / `fault`,
//! * [`soap`] — SOAP 1.1 RPC-style envelopes and `Fault` elements,
//! * [`jsonrpc`] — JSON-RPC 1.0/2.0 requests and responses,
//! * [`base64`] and [`percent`] — the byte-level codecs the above need,
//! * [`datetime`] — the ISO 8601 `dateTime.iso8601` flavour XML-RPC uses.
//!
//! Everything in this crate is deterministic and allocation-conscious; the
//! codecs are exercised by unit tests (including round-trip property tests in
//! the crate's `tests/` directory) because every byte on the wire in the
//! reproduction flows through here.

pub mod base64;
pub mod binary;
pub mod datetime;
pub mod fault;
pub mod fuzz;
pub mod json;
pub mod jsonrpc;
pub mod percent;
pub mod soap;
pub mod value;
pub mod xml;
pub mod xmlrpc;

pub use fault::{Fault, WireError};
pub use value::Value;

/// Which RPC protocol a request used. The Clarens server answers in the same
/// protocol the client spoke (paper §2: "XML-RPC or SOAP encoded POST
/// requests return a similarly encoded response").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// XML-RPC (`text/xml` with a `<methodCall>` root).
    XmlRpc,
    /// SOAP 1.1 (`text/xml` with an `Envelope` root).
    Soap,
    /// JSON-RPC 1.0/2.0 (`application/json`).
    JsonRpc,
    /// clarens-binary: length-prefixed CBOR frames
    /// (`application/x-clarens-cbor`) for machine-to-machine grid traffic
    /// where XML envelope cost dominates. See [`binary`].
    Binary,
}

impl Protocol {
    /// The preferred `Content-Type` header value for this protocol.
    pub fn content_type(self) -> &'static str {
        match self {
            Protocol::XmlRpc | Protocol::Soap => "text/xml",
            Protocol::JsonRpc => "application/json",
            Protocol::Binary => binary::CONTENT_TYPE,
        }
    }

    /// Sniff the protocol from a request body (used when the Content-Type is
    /// ambiguous, e.g. both XML-RPC and SOAP arrive as `text/xml`).
    pub fn sniff(body: &[u8]) -> Option<Protocol> {
        if binary::is_frame(body) {
            return Some(Protocol::Binary);
        }
        let text = std::str::from_utf8(body).ok()?;
        let trimmed = text.trim_start();
        if trimmed.starts_with('{') || trimmed.starts_with('[') {
            return Some(Protocol::JsonRpc);
        }
        if trimmed.starts_with('<') {
            // Skip an XML declaration if present.
            let after = if let Some(rest) = trimmed.strip_prefix("<?") {
                match rest.find("?>") {
                    Some(pos) => rest[pos + 2..].trim_start(),
                    None => return None,
                }
            } else {
                trimmed
            };
            if !after.starts_with('<') {
                return None;
            }
            if after.starts_with("<methodCall") || after.starts_with("<methodResponse") {
                return Some(Protocol::XmlRpc);
            }
            // SOAP roots are namespace-prefixed: <SOAP-ENV:Envelope ...> or
            // <soap:Envelope> or plain <Envelope>.
            let name_end = after[1..]
                .find(|c: char| c.is_whitespace() || c == '>' || c == '/')
                .map(|i| i + 1)
                .unwrap_or(after.len());
            let root = &after[1..name_end];
            let local = root.rsplit(':').next().unwrap_or(root);
            if local == "Envelope" {
                return Some(Protocol::Soap);
            }
            // Any other XML root: assume XML-RPC-style payload is invalid,
            // but be permissive and let the XML-RPC decoder produce the error.
            return Some(Protocol::XmlRpc);
        }
        None
    }
}

/// An RPC call, independent of the protocol it arrived in.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcCall {
    /// Dotted hierarchical method name, e.g. `file.read` or
    /// `system.list_methods` (paper §2.2: "Methods have a natural
    /// hierarchical structure").
    pub method: String,
    /// Positional parameters.
    pub params: Vec<Value>,
    /// JSON-RPC id (echoed in the response); `None` for XML-RPC/SOAP.
    pub id: Option<Value>,
}

impl RpcCall {
    /// Convenience constructor.
    pub fn new(method: impl Into<String>, params: Vec<Value>) -> Self {
        RpcCall {
            method: method.into(),
            params,
            id: None,
        }
    }
}

/// An RPC response: either a result value or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcResponse {
    /// Successful invocation with the returned value.
    Success(Value),
    /// Fault with code and description.
    Fault(Fault),
}

impl RpcResponse {
    /// Unwrap a success value, converting faults to [`WireError::Fault`].
    pub fn into_result(self) -> Result<Value, WireError> {
        match self {
            RpcResponse::Success(v) => Ok(v),
            RpcResponse::Fault(f) => Err(WireError::Fault(f)),
        }
    }
}

/// Encode a call in the given protocol.
pub fn encode_call(protocol: Protocol, call: &RpcCall) -> Vec<u8> {
    match protocol {
        Protocol::XmlRpc => xmlrpc::encode_call(call).into_bytes(),
        Protocol::Soap => soap::encode_call(call).into_bytes(),
        Protocol::JsonRpc => jsonrpc::encode_call(call).into_bytes(),
        Protocol::Binary => binary::encode_call(call),
    }
}

/// Decode a call in the given protocol.
pub fn decode_call(protocol: Protocol, body: &[u8]) -> Result<RpcCall, WireError> {
    if protocol == Protocol::Binary {
        return binary::decode_call(body);
    }
    let text = std::str::from_utf8(body).map_err(|_| WireError::parse("body is not UTF-8"))?;
    match protocol {
        Protocol::XmlRpc => xmlrpc::decode_call(text),
        Protocol::Soap => soap::decode_call(text),
        Protocol::JsonRpc => jsonrpc::decode_call(text),
        Protocol::Binary => unreachable!("handled above"),
    }
}

/// Decode a call using only the DOM reference decoders, bypassing any
/// streaming fast path. The pre-optimization baseline for the allocation
/// ablation; behaviour is identical to [`decode_call`] by construction
/// (the fast path defers to the DOM on anything it cannot mirror). The
/// binary protocol has no DOM form — its streaming decoder is the only
/// decoder — so `Binary` maps to the same path.
pub fn decode_call_dom(protocol: Protocol, body: &[u8]) -> Result<RpcCall, WireError> {
    if protocol == Protocol::Binary {
        return binary::decode_call(body);
    }
    let text = std::str::from_utf8(body).map_err(|_| WireError::parse("body is not UTF-8"))?;
    match protocol {
        Protocol::XmlRpc => xmlrpc::decode_call_dom(text),
        Protocol::Soap => soap::decode_call(text),
        Protocol::JsonRpc => jsonrpc::decode_call(text),
        Protocol::Binary => unreachable!("handled above"),
    }
}

/// Encode a response in the given protocol. `id` is echoed for JSON-RPC.
pub fn encode_response(protocol: Protocol, response: &RpcResponse, id: Option<&Value>) -> Vec<u8> {
    match protocol {
        Protocol::XmlRpc => xmlrpc::encode_response(response).into_bytes(),
        Protocol::Soap => soap::encode_response(response).into_bytes(),
        Protocol::JsonRpc => jsonrpc::encode_response(response, id).into_bytes(),
        Protocol::Binary => binary::encode_response(response),
    }
}

/// Encode a response in the given protocol directly into `out`, appending.
///
/// The streaming twin of [`encode_response`]: no `Element` tree, no
/// intermediate `String`s, base64 streamed straight from `Value::Bytes` into
/// the buffer. Output is byte-identical to the DOM encoders (property-tested
/// in `tests/stream_identity.rs`); callers pass a recycled buffer to make
/// the serialize phase allocation-free in steady state.
pub fn encode_response_into(
    protocol: Protocol,
    response: &RpcResponse,
    id: Option<&Value>,
    out: &mut Vec<u8>,
) {
    match protocol {
        Protocol::XmlRpc => xmlrpc::encode_response_into(response, out),
        Protocol::Soap => soap::encode_response_into(response, out),
        Protocol::JsonRpc => jsonrpc::encode_response_into(response, id, out),
        Protocol::Binary => binary::encode_response_into(response, out),
    }
}

/// Decode a response in the given protocol.
pub fn decode_response(protocol: Protocol, body: &[u8]) -> Result<RpcResponse, WireError> {
    if protocol == Protocol::Binary {
        return binary::decode_response(body);
    }
    let text = std::str::from_utf8(body).map_err(|_| WireError::parse("body is not UTF-8"))?;
    match protocol {
        Protocol::XmlRpc => xmlrpc::decode_response(text),
        Protocol::Soap => soap::decode_response(text),
        Protocol::JsonRpc => jsonrpc::decode_response(text),
        Protocol::Binary => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniff_json() {
        assert_eq!(
            Protocol::sniff(b"  {\"method\":\"a\"}"),
            Some(Protocol::JsonRpc)
        );
        assert_eq!(Protocol::sniff(b"[1,2]"), Some(Protocol::JsonRpc));
    }

    #[test]
    fn sniff_xmlrpc() {
        assert_eq!(
            Protocol::sniff(b"<?xml version=\"1.0\"?>\n<methodCall></methodCall>"),
            Some(Protocol::XmlRpc)
        );
        assert_eq!(
            Protocol::sniff(b"<methodResponse/>"),
            Some(Protocol::XmlRpc)
        );
    }

    #[test]
    fn sniff_soap() {
        assert_eq!(
            Protocol::sniff(b"<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"x\"/>"),
            Some(Protocol::Soap)
        );
        assert_eq!(Protocol::sniff(b"<Envelope/>"), Some(Protocol::Soap));
        assert_eq!(Protocol::sniff(b"<soap:Envelope>"), Some(Protocol::Soap));
    }

    #[test]
    fn sniff_garbage() {
        assert_eq!(Protocol::sniff(b"hello"), None);
        assert_eq!(Protocol::sniff(&[0xff, 0xfe]), None);
        assert_eq!(Protocol::sniff(b"<?xml version=\"1.0\""), None);
    }

    #[test]
    fn roundtrip_all_protocols() {
        let call = RpcCall {
            method: "system.list_methods".into(),
            params: vec![Value::Int(3), Value::from("abc")],
            id: Some(Value::Int(7)),
        };
        for proto in [
            Protocol::XmlRpc,
            Protocol::Soap,
            Protocol::JsonRpc,
            Protocol::Binary,
        ] {
            let bytes = encode_call(proto, &call);
            assert_eq!(Protocol::sniff(&bytes), Some(proto), "sniff {proto:?}");
            let decoded = decode_call(proto, &bytes).unwrap();
            assert_eq!(decoded.method, call.method);
            assert_eq!(decoded.params, call.params);
        }
    }

    #[test]
    fn response_into_result() {
        assert_eq!(
            RpcResponse::Success(Value::Int(1)).into_result().unwrap(),
            Value::Int(1)
        );
        let fault = Fault::new(3, "nope");
        match RpcResponse::Fault(fault.clone()).into_result() {
            Err(WireError::Fault(f)) => assert_eq!(f, fault),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
