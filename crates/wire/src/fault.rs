//! RPC faults and wire-level errors.
//!
//! The paper's server returns "an XML-encoded error message" for failed GETs
//! and "a similarly encoded response error message" for RPC posts. [`Fault`]
//! is the protocol-independent carrier; the per-protocol codecs map it onto
//! XML-RPC `<fault>`, SOAP `<Fault>`, or the JSON-RPC `error` member.

use std::fmt;

/// Canonical fault codes used across the Clarens reproduction. These follow
/// the XML-RPC convention of small positive integers; the specific values
/// are ours (the paper does not enumerate codes) but are used consistently
/// by the server, tests, and benches.
pub mod codes {
    /// Malformed request (unparseable body, wrong types).
    pub const PARSE: i64 = 1;
    /// Unknown `module.method`.
    pub const NO_SUCH_METHOD: i64 = 2;
    /// Caller is not authenticated (no/expired session).
    pub const NOT_AUTHENTICATED: i64 = 3;
    /// Caller is authenticated but the ACL denies access.
    pub const ACCESS_DENIED: i64 = 4;
    /// Service-specific failure (I/O error, missing file, ...).
    pub const SERVICE: i64 = 5;
    /// Bad parameters (count or type mismatch).
    pub const BAD_PARAMS: i64 = 6;
    /// Internal server error.
    pub const INTERNAL: i64 = 7;
    /// The per-request deadline expired before the call completed (the
    /// RPC analogue of HTTP 504 Gateway Timeout).
    pub const DEADLINE: i64 = 8;
    /// The server is running degraded (e.g. the store went read-only
    /// after a WAL failure) and refused a mutating call.
    pub const DEGRADED: i64 = 9;
    /// A replicated write reached a node that is not the current leader
    /// (a follower, or a deposed/fenced leader). The fault message carries
    /// a machine-readable leader hint + epoch (see [`super::Fault::not_leader`]
    /// and [`super::Fault::leader_hint`]) so clients can re-route.
    pub const NOT_LEADER: i64 = 10;
}

/// A protocol-independent RPC fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Numeric fault code (see [`codes`]).
    pub code: i64,
    /// Human-readable description.
    pub message: String,
}

impl Fault {
    /// Create a fault.
    pub fn new(code: i64, message: impl Into<String>) -> Self {
        Fault {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for a [`codes::BAD_PARAMS`] fault.
    pub fn bad_params(message: impl Into<String>) -> Self {
        Fault::new(codes::BAD_PARAMS, message)
    }

    /// Shorthand for a [`codes::SERVICE`] fault.
    pub fn service(message: impl Into<String>) -> Self {
        Fault::new(codes::SERVICE, message)
    }

    /// Shorthand for a [`codes::ACCESS_DENIED`] fault.
    pub fn access_denied(message: impl Into<String>) -> Self {
        Fault::new(codes::ACCESS_DENIED, message)
    }

    /// Shorthand for a [`codes::NOT_AUTHENTICATED`] fault.
    pub fn not_authenticated(message: impl Into<String>) -> Self {
        Fault::new(codes::NOT_AUTHENTICATED, message)
    }

    /// Shorthand for a [`codes::DEADLINE`] fault.
    pub fn deadline(message: impl Into<String>) -> Self {
        Fault::new(codes::DEADLINE, message)
    }

    /// Shorthand for a [`codes::DEGRADED`] fault.
    pub fn degraded(message: impl Into<String>) -> Self {
        Fault::new(codes::DEGRADED, message)
    }

    /// A [`codes::NOT_LEADER`] fault. `leader` is the `host:port` of the
    /// node currently believed to hold the lease (empty if unknown) and
    /// `epoch` is the rejecting node's view of the leader epoch. The hint
    /// is embedded in the message in a fixed `key=value` grammar so it
    /// survives every wire protocol's fault encoding (which only carry
    /// `code` + `message`).
    pub fn not_leader(leader: &str, epoch: u64) -> Self {
        Fault::new(
            codes::NOT_LEADER,
            format!("not leader; leader={leader} epoch={epoch}"),
        )
    }

    /// A [`codes::NOT_LEADER`] fault for a write that was rejected *after*
    /// the handler already ran (the leader lost its lease between applying
    /// the write locally and the replicated-ack barrier). The extra
    /// `executed=maybe` token tells clients the operation's fate is
    /// unknown — it may yet replicate to the new leader — so only
    /// idempotent calls may be auto-replayed against the hinted leader;
    /// blindly replaying a mutation here would double-execute it.
    pub fn not_leader_executed(leader: &str, epoch: u64) -> Self {
        Fault::new(
            codes::NOT_LEADER,
            format!("not leader; leader={leader} epoch={epoch} executed=maybe"),
        )
    }

    /// Did the rejecting node already run the handler before refusing the
    /// ack (see [`Fault::not_leader_executed`])? Always false for other
    /// fault codes.
    pub fn executed_maybe(&self) -> bool {
        self.code == codes::NOT_LEADER
            && self
                .message
                .split_whitespace()
                .any(|token| token == "executed=maybe")
    }

    /// Parse the `(leader, epoch)` hint out of a [`codes::NOT_LEADER`]
    /// fault. Returns `None` for other codes or a malformed message; a
    /// known epoch with an unknown leader yields an empty leader string.
    pub fn leader_hint(&self) -> Option<(String, u64)> {
        if self.code != codes::NOT_LEADER {
            return None;
        }
        let mut leader = None;
        let mut epoch = None;
        for token in self.message.split_whitespace() {
            if let Some(v) = token.strip_prefix("leader=") {
                leader = Some(v.to_owned());
            } else if let Some(v) = token.strip_prefix("epoch=") {
                epoch = v.parse::<u64>().ok();
            }
        }
        Some((leader?, epoch?))
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault {}: {}", self.code, self.message)
    }
}

impl std::error::Error for Fault {}

/// Errors produced while encoding or decoding wire payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The payload could not be parsed.
    Parse(String),
    /// The payload parsed but violates the protocol (e.g. a
    /// `methodResponse` where a `methodCall` was expected).
    Protocol(String),
    /// The peer returned a well-formed fault.
    Fault(Fault),
}

impl WireError {
    /// Build a [`WireError::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        WireError::Parse(msg.into())
    }

    /// Build a [`WireError::Protocol`].
    pub fn protocol(msg: impl Into<String>) -> Self {
        WireError::Protocol(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse(m) => write!(f, "parse error: {m}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<Fault> for WireError {
    fn from(f: Fault) -> Self {
        WireError::Fault(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let f = Fault::new(4, "denied");
        assert_eq!(f.to_string(), "fault 4: denied");
        assert_eq!(WireError::parse("bad").to_string(), "parse error: bad");
        assert_eq!(WireError::protocol("x").to_string(), "protocol error: x");
        assert_eq!(WireError::from(f).to_string(), "fault 4: denied");
    }

    #[test]
    fn shorthands_use_canonical_codes() {
        assert_eq!(Fault::bad_params("p").code, codes::BAD_PARAMS);
        assert_eq!(Fault::service("s").code, codes::SERVICE);
        assert_eq!(Fault::access_denied("a").code, codes::ACCESS_DENIED);
        assert_eq!(Fault::not_authenticated("n").code, codes::NOT_AUTHENTICATED);
        assert_eq!(Fault::deadline("d").code, codes::DEADLINE);
        assert_eq!(Fault::degraded("g").code, codes::DEGRADED);
    }

    #[test]
    fn not_leader_hint_roundtrip() {
        let f = Fault::not_leader("127.0.0.1:8080", 7);
        assert_eq!(f.code, codes::NOT_LEADER);
        assert_eq!(f.leader_hint().unwrap(), ("127.0.0.1:8080".into(), 7));
        assert!(!f.executed_maybe());
        // The post-execution variant keeps the routing hint parseable and
        // adds the executed marker.
        let f = Fault::not_leader_executed("127.0.0.1:8080", 7);
        assert_eq!(f.leader_hint().unwrap(), ("127.0.0.1:8080".into(), 7));
        assert!(f.executed_maybe());
        assert!(!Fault::service("executed=maybe").executed_maybe());
        // Unknown leader: empty hint, epoch still parses.
        let f = Fault::not_leader("", 3);
        assert_eq!(f.leader_hint().unwrap(), (String::new(), 3));
        // Other codes and mangled messages yield no hint.
        assert!(Fault::degraded("x").leader_hint().is_none());
        assert!(Fault::new(codes::NOT_LEADER, "mangled")
            .leader_hint()
            .is_none());
        assert!(Fault::new(codes::NOT_LEADER, "leader=x epoch=notnum")
            .leader_hint()
            .is_none());
    }
}
