//! Percent-encoding and query-string handling (RFC 3986 subset).
//!
//! The Clarens file and portal services receive paths and parameters in GET
//! URLs; this module handles escaping/unescaping and `k=v&k2=v2` query
//! parsing.

/// Is `b` an "unreserved" character that never needs escaping in a path
/// segment or query value?
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encode arbitrary bytes. Everything outside the unreserved set is
/// escaped; `/` is additionally kept verbatim when `keep_slash` is true so
/// that file paths stay readable.
pub fn encode_with(data: &[u8], keep_slash: bool) -> String {
    let mut out = String::with_capacity(data.len());
    for &b in data {
        if is_unreserved(b) || (keep_slash && b == b'/') {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(
                char::from_digit((b >> 4) as u32, 16)
                    .unwrap()
                    .to_ascii_uppercase(),
            );
            out.push(
                char::from_digit((b & 0xF) as u32, 16)
                    .unwrap()
                    .to_ascii_uppercase(),
            );
        }
    }
    out
}

/// Percent-encode a query component (escapes `/`).
pub fn encode(data: &str) -> String {
    encode_with(data.as_bytes(), false)
}

/// Percent-encode a path, preserving `/` separators.
pub fn encode_path(path: &str) -> String {
    encode_with(path.as_bytes(), true)
}

/// Decode a percent-encoded string. `+` becomes a space when
/// `plus_as_space` (form encoding). Invalid escapes are passed through
/// verbatim — this mirrors what lenient web servers (Apache, which fronted
/// PClarens) do rather than failing the whole request.
pub fn decode_lossy(text: &str, plus_as_space: bool) -> Vec<u8> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hi = (bytes[i + 1] as char).to_digit(16);
                let lo = (bytes[i + 2] as char).to_digit(16);
                match (hi, lo) {
                    (Some(h), Some(l)) => {
                        out.push(((h << 4) | l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    out
}

/// Decode to a UTF-8 string, replacing invalid sequences.
pub fn decode_str(text: &str) -> String {
    String::from_utf8_lossy(&decode_lossy(text, false)).into_owned()
}

/// Parse a query string (`a=1&b=two`) into pairs; keys/values are
/// form-decoded (`+` is a space).
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (k, v) = match part.split_once('=') {
                Some((k, v)) => (k, v),
                None => (part, ""),
            };
            (
                String::from_utf8_lossy(&decode_lossy(k, true)).into_owned(),
                String::from_utf8_lossy(&decode_lossy(v, true)).into_owned(),
            )
        })
        .collect()
}

/// Split a request target into (path, query).
pub fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_basic() {
        assert_eq!(encode("hello world"), "hello%20world");
        assert_eq!(encode("a/b"), "a%2Fb");
        assert_eq!(encode_path("a/b c"), "a/b%20c");
        assert_eq!(encode("Ab9-_.~"), "Ab9-_.~");
    }

    #[test]
    fn decode_basic() {
        assert_eq!(decode_str("hello%20world"), "hello world");
        assert_eq!(decode_str("a%2Fb"), "a/b");
        // Lowercase hex accepted.
        assert_eq!(decode_str("%2f"), "/");
    }

    #[test]
    fn decode_invalid_passthrough() {
        assert_eq!(decode_str("100%"), "100%");
        assert_eq!(decode_str("%zz"), "%zz");
        assert_eq!(decode_str("%2"), "%2");
    }

    #[test]
    fn plus_handling() {
        assert_eq!(String::from_utf8(decode_lossy("a+b", true)).unwrap(), "a b");
        assert_eq!(
            String::from_utf8(decode_lossy("a+b", false)).unwrap(),
            "a+b"
        );
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("name=file.root&offset=0&n=10&flag");
        assert_eq!(
            q,
            vec![
                ("name".to_string(), "file.root".to_string()),
                ("offset".to_string(), "0".to_string()),
                ("n".to_string(), "10".to_string()),
                ("flag".to_string(), "".to_string()),
            ]
        );
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn target_split() {
        assert_eq!(split_target("/file/a.txt?x=1"), ("/file/a.txt", "x=1"));
        assert_eq!(split_target("/file/a.txt"), ("/file/a.txt", ""));
    }

    #[test]
    fn unicode_roundtrip() {
        let s = "π/κ métro";
        assert_eq!(decode_str(&encode(s)), s);
    }
}
