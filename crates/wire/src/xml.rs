//! A small XML 1.0 parser and writer.
//!
//! Scope: what RPC payloads need — elements, attributes, character data,
//! entity references, CDATA sections, comments, and the XML declaration.
//! Out of scope (rejected or skipped): DTDs/doctype internal subsets
//! (skipped without expansion — no billion-laughs exposure), processing
//! instructions (skipped). Namespace *syntax* is preserved
//! (`SOAP-ENV:Envelope` keeps its prefix); [`Element::local_name`] strips
//! the prefix, which is all the SOAP subset needs.

use std::fmt::Write as _;

use crate::WireError;

/// Maximum element nesting depth, for the same adversarial-input reason as
/// [`crate::json::MAX_DEPTH`].
pub const MAX_DEPTH: usize = 256;

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name as written, possibly namespace-prefixed.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node in the parsed tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Child element.
    Element(Element),
    /// Character data (entities decoded, CDATA merged).
    Text(String),
}

impl Element {
    /// Create an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: add text content.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// The name with any namespace prefix removed.
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Attribute lookup by exact name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterate over child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// First child element with the given *local* name.
    pub fn find(&self, local: &str) -> Option<&Element> {
        self.elements().find(|e| e.local_name() == local)
    }

    /// All child elements with the given local name.
    pub fn find_all<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.local_name() == local)
    }

    /// The first *element* child, if any (XML-RPC `<value>` content).
    pub fn first_element(&self) -> Option<&Element> {
        self.elements().next()
    }

    /// Concatenated text content of this element (direct children only).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Serialize this element as a document with an XML declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write(&mut out);
        out
    }

    /// Serialize this element (no declaration).
    pub fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out, true);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                Node::Element(e) => e.write(out),
                Node::Text(t) => escape_into(t, out, false),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Escape text for element content (or attribute values when `attr`).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    escape_into(text, &mut out, false);
    out
}

/// Escape element text directly into a byte buffer (streaming encoders).
///
/// Byte-for-byte equivalent to [`escape`]: all escapable characters are
/// ASCII, so multi-byte UTF-8 sequences (every byte ≥ 0x80) pass through
/// untouched and the decimal in `&#N;` equals the byte value.
pub fn escape_text_into(text: &str, out: &mut Vec<u8>) {
    for &b in text.as_bytes() {
        match b {
            b'<' => out.extend_from_slice(b"&lt;"),
            b'>' => out.extend_from_slice(b"&gt;"),
            b'&' => out.extend_from_slice(b"&amp;"),
            b if b < 0x20 && b != b'\n' && b != b'\t' && b != b'\r' => {
                use std::io::Write as _;
                let _ = write!(out, "&#{b};");
            }
            b => out.push(b),
        }
    }
}

fn escape_into(text: &str, out: &mut String, attr: bool) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            c if (c as u32) < 0x20 && c != '\n' && c != '\t' && c != '\r' => {
                // XML 1.0 forbids raw control characters; use a numeric
                // reference so binary-ish strings survive (decoders vary, we
                // decode them back).
                let _ = write!(out, "&#{};", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parse an XML document and return the root element.
pub fn parse(text: &str) -> Result<Element, WireError> {
    let mut p = XmlParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element(0)?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(WireError::parse(format!(
            "trailing content after root element at offset {}",
            p.pos
        )));
    }
    Ok(root)
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), WireError> {
        match find_subslice(&self.bytes[self.pos..], end.as_bytes()) {
            Some(off) => {
                self.pos += off + end.len();
                Ok(())
            }
            None => Err(WireError::parse(format!(
                "unterminated construct, expected {end:?}"
            ))),
        }
    }

    /// Skip declaration, comments, PIs, and a DOCTYPE before the root.
    fn skip_prolog(&mut self) -> Result<(), WireError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' accounting for an internal subset.
                self.pos += "<!DOCTYPE".len();
                let mut depth = 1usize;
                while depth > 0 {
                    match self.peek() {
                        Some(b'<') => depth += 1,
                        Some(b'>') => depth -= 1,
                        Some(_) => {}
                        None => return Err(WireError::parse("unterminated DOCTYPE")),
                    }
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Skip trailing comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, WireError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(WireError::parse(format!(
                "expected name at offset {}",
                self.pos
            )));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(|s| s.to_owned())
            .map_err(|_| WireError::parse("invalid UTF-8 in name"))
    }

    fn parse_element(&mut self, depth: usize) -> Result<Element, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::parse("maximum XML nesting depth exceeded"));
        }
        if self.peek() != Some(b'<') {
            return Err(WireError::parse(format!(
                "expected '<' at offset {}",
                self.pos
            )));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(WireError::parse("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(WireError::parse(format!(
                            "expected '=' after attribute {attr_name:?}"
                        )));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(WireError::parse("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(WireError::parse("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| WireError::parse("invalid UTF-8 in attribute"))?;
                    self.pos += 1;
                    element.attributes.push((attr_name, decode_entities(raw)?));
                }
                None => return Err(WireError::parse("EOF inside start tag")),
            }
        }

        // Content.
        let mut text_buf = String::new();
        loop {
            if self.starts_with("</") {
                if !text_buf.is_empty() {
                    element
                        .children
                        .push(Node::Text(std::mem::take(&mut text_buf)));
                }
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != element.name {
                    return Err(WireError::parse(format!(
                        "mismatched end tag: expected </{}>, found </{}>",
                        element.name, end_name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(WireError::parse("expected '>' in end tag"));
                }
                self.pos += 1;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let end = find_subslice(&self.bytes[self.pos..], b"]]>")
                    .ok_or_else(|| WireError::parse("unterminated CDATA"))?;
                let raw = std::str::from_utf8(&self.bytes[self.pos..self.pos + end])
                    .map_err(|_| WireError::parse("invalid UTF-8 in CDATA"))?;
                text_buf.push_str(raw);
                self.pos += end + 3;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                if !text_buf.is_empty() {
                    element
                        .children
                        .push(Node::Text(std::mem::take(&mut text_buf)));
                }
                let child = self.parse_element(depth + 1)?;
                element.children.push(Node::Element(child));
            } else if self.peek().is_none() {
                return Err(WireError::parse(format!(
                    "EOF inside element <{}>",
                    element.name
                )));
            } else {
                // Text run until the next '<'.
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| WireError::parse("invalid UTF-8 in text"))?;
                text_buf.push_str(&decode_entities(raw)?);
            }
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Decode the five predefined entities and numeric character references.
pub(crate) fn decode_entities(text: &str) -> Result<String, WireError> {
    if !text.contains('&') {
        return Ok(text.to_owned());
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| WireError::parse("unterminated entity reference"))?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| WireError::parse(format!("bad char ref &{entity};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| WireError::parse(format!("invalid char ref &{entity};")))?,
                );
            }
            _ if entity.starts_with('#') => {
                let cp = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| WireError::parse(format!("bad char ref &{entity};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| WireError::parse(format!("invalid char ref &{entity};")))?,
                );
            }
            _ => {
                // Unknown named entities would require a DTD; reject.
                return Err(WireError::parse(format!("unknown entity &{entity};")));
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_document() {
        let root = parse("<?xml version=\"1.0\"?><a><b x=\"1\">hi</b><c/></a>").unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.elements().count(), 2);
        let b = root.find("b").unwrap();
        assert_eq!(b.attribute("x"), Some("1"));
        assert_eq!(b.text_content(), "hi");
        assert!(root.find("c").unwrap().children.is_empty());
        assert!(root.find("zzz").is_none());
    }

    #[test]
    fn entities_decoded() {
        let root = parse("<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>").unwrap();
        assert_eq!(root.text_content(), "<>&'\"AB");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nbsp;</a>").is_err());
        assert!(parse("<a>&unterminated</a>").is_err());
    }

    #[test]
    fn cdata() {
        let root = parse("<a><![CDATA[<raw> & text]]></a>").unwrap();
        assert_eq!(root.text_content(), "<raw> & text");
        // CDATA merges with adjacent text.
        let root = parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(root.text_content(), "xyz");
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn comments_and_pis_skipped() {
        let root = parse("<!-- hi --><?pi data?><a><!-- inner --><b/><?x?>text</a>").unwrap();
        assert_eq!(root.elements().count(), 1);
        assert_eq!(root.text_content(), "text");
    }

    #[test]
    fn doctype_skipped_not_expanded() {
        let doc = "<!DOCTYPE lolz [<!ENTITY lol \"lol\">]><a>safe</a>";
        let root = parse(doc).unwrap();
        assert_eq!(root.text_content(), "safe");
        // But references to DTD-defined entities still fail (no expansion).
        assert!(parse("<!DOCTYPE l [<!ENTITY lol \"lol\">]><a>&lol;</a>").is_err());
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
    }

    #[test]
    fn attributes_with_entities_and_quotes() {
        let root = parse("<a x=\"&lt;v&gt;\" y='single \"double\"'/>").unwrap();
        assert_eq!(root.attribute("x"), Some("<v>"));
        assert_eq!(root.attribute("y"), Some("single \"double\""));
    }

    #[test]
    fn namespace_prefixes() {
        let root = parse("<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"uri\"/>").unwrap();
        assert_eq!(root.name, "SOAP-ENV:Envelope");
        assert_eq!(root.local_name(), "Envelope");
    }

    #[test]
    fn writer_roundtrip() {
        let el = Element::new("methodCall")
            .child(Element::new("methodName").text("file.read"))
            .child(Element::new("params").child(Element::new("param").child(
                Element::new("value").child(Element::new("string").text("a<b>&c \"quoted\"")),
            )));
        let doc = el.to_document();
        let reparsed = parse(&doc).unwrap();
        assert_eq!(reparsed, el);
    }

    #[test]
    fn control_chars_roundtrip_via_numeric_refs() {
        let el = Element::new("a").text("\u{01}ok\u{1f}");
        let doc = el.to_document();
        assert!(doc.contains("&#1;"));
        assert_eq!(parse(&doc).unwrap().text_content(), "\u{01}ok\u{1f}");
    }

    #[test]
    fn depth_bounded() {
        let deep = "<a>".repeat(MAX_DEPTH + 2) + &"</a>".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn whitespace_preserved_in_text() {
        let root = parse("<a>  spaced  </a>").unwrap();
        assert_eq!(root.text_content(), "  spaced  ");
    }

    #[test]
    fn self_closing_with_space() {
        let root = parse("<a />").unwrap();
        assert_eq!(root.name, "a");
    }

    #[test]
    fn find_all_filters_by_local_name() {
        let root = parse("<a><m>1</m><n/><m>2</m></a>").unwrap();
        let texts: Vec<String> = root.find_all("m").map(|e| e.text_content()).collect();
        assert_eq!(texts, vec!["1", "2"]);
    }

    #[test]
    fn display_matches_write() {
        let el = Element::new("x").attr("a", "1").text("t");
        assert_eq!(el.to_string(), "<x a=\"1\">t</x>");
    }
}
