//! Shared fuzz entry points for the wire decoders.
//!
//! Each function takes raw attacker-controlled bytes and must never panic,
//! abort, or allocate unboundedly — any other outcome is a bug. They are the
//! single source of truth for three harnesses:
//!
//! 1. `fuzz/fuzz_targets/*.rs` — cargo-fuzz/libFuzzer targets (coverage
//!    guided; run where a nightly toolchain and `cargo-fuzz` are available),
//! 2. `repro fuzz` — the in-tree deterministic seeded mutation harness that
//!    CI runs (`binproto-smoke`), which needs no extra tooling,
//! 3. `tests/fuzz_smoke.rs` — a short bounded pass inside `cargo test` so
//!    the entries can never bit-rot.
//!
//! Beyond "don't crash", the entries assert semantic properties:
//! fast-vs-DOM *divergence* for the streaming XML-RPC decoder (the fast path
//! must be indistinguishable from the reference DOM decoder), and
//! re-encode/re-decode idempotence for the binary frame codec.

use crate::{binary, xmlrpc};

/// Fuzz the streaming XML-RPC call decoder against the DOM reference.
///
/// `xmlrpc::decode_call` runs a conservative streaming fast path and falls
/// back to the DOM on anything it cannot mirror, so for every input the two
/// must agree on success/failure and on the decoded call. A divergence here
/// means the fast path accepted something the DOM rejects (or decoded it
/// differently) — exactly the bug class fuzzing is for.
pub fn xmlrpc_divergence(data: &[u8]) {
    let Ok(text) = std::str::from_utf8(data) else {
        return;
    };
    let fast = xmlrpc::decode_call(text);
    let dom = xmlrpc::decode_call_dom(text);
    match (&fast, &dom) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "fast/DOM decoded calls diverge"),
        (Ok(call), Err(e)) => panic!("fast path accepted what DOM rejects: {call:?} vs {e}"),
        (Err(e), Ok(call)) => panic!("fast path rejected what DOM accepts: {e} vs {call:?}"),
        (Err(_), Err(_)) => {}
    }
    // The response decoder has no fast path but must still never panic.
    let _ = xmlrpc::decode_response(text);
}

/// Fuzz the binary (CBOR) frame decoders.
///
/// Both directions must reject garbage gracefully; anything they *accept*
/// must re-encode to a canonical form that is a byte-level fixpoint:
/// decode → encode → decode → encode yields identical bytes even when the
/// fuzzer found a non-minimal (but legal) encoding. The comparison is on
/// the canonical bytes, not on `Value` equality — a mutated float64
/// payload can be NaN, which round-trips bit-exactly but is `!=` itself.
pub fn binary_frame(data: &[u8]) {
    if let Ok(call) = binary::decode_call(data) {
        let bytes = binary::encode_call(&call);
        let again = binary::decode_call(&bytes).expect("re-encoded call must decode");
        assert_eq!(
            bytes,
            binary::encode_call(&again),
            "binary call canonical encoding is not a fixpoint"
        );
    }
    if let Ok(resp) = binary::decode_response(data) {
        let mut bytes = Vec::new();
        binary::encode_response_into(&resp, &mut bytes);
        let again = binary::decode_response(&bytes).expect("re-encoded response must decode");
        let mut bytes2 = Vec::new();
        binary::encode_response_into(&again, &mut bytes2);
        assert_eq!(
            bytes, bytes2,
            "binary response canonical encoding is not a fixpoint"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, RpcCall, Value};

    #[test]
    fn entries_accept_valid_seeds() {
        let call = RpcCall::new("echo.echo", vec![Value::Int(1), Value::from("x")]);
        xmlrpc_divergence(&crate::encode_call(Protocol::XmlRpc, &call));
        binary_frame(&crate::encode_call(Protocol::Binary, &call));
        binary_frame(&crate::encode_response(
            Protocol::Binary,
            &crate::RpcResponse::Success(Value::from("ok")),
            None,
        ));
    }

    /// Fuzz finding, kept as a regression: a mutated float64 payload can
    /// be NaN, which is bit-exact across the round trip but compares
    /// unequal to itself — the property must judge canonical bytes, not
    /// `Value` equality.
    #[test]
    fn nan_double_payload_is_a_fixpoint() {
        binary_frame(&crate::encode_call(
            Protocol::Binary,
            &RpcCall::new("echo.echo", vec![Value::Double(f64::NAN)]),
        ));
        binary_frame(&crate::encode_response(
            Protocol::Binary,
            &crate::RpcResponse::Success(Value::Double(-f64::NAN)),
            None,
        ));
    }

    #[test]
    fn entries_tolerate_garbage() {
        for data in [
            &b""[..],
            &b"\x00\x00\x00\x01\x10"[..],
            &b"<methodCall>"[..],
            &[0xff; 64][..],
        ] {
            xmlrpc_divergence(data);
            binary_frame(data);
        }
    }
}
