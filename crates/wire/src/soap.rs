//! SOAP 1.1 RPC subset.
//!
//! JClarens exposed its services over SOAP via Apache AXIS; this module
//! implements the interoperable subset Clarens needed: RPC-style bodies with
//! SOAP-Section-5 style typed parameters (we reuse the XML-RPC type lexicon
//! via `xsi:type`-free positional encoding), and `<SOAP-ENV:Fault>` for
//! errors. Method names ride in the body element's local name with the `.`
//! hierarchy encoded as `_DOT_` (SOAP element names cannot contain dots).
//!
//! The encoding here is self-consonant (our encoder's output is accepted by
//! our decoder and carries the full [`Value`] algebra) and the decoder is
//! additionally lenient about namespace prefixes so that hand-written
//! envelopes from tests and third-party-style clients parse.

use crate::fault::{Fault, WireError};
use crate::value::Value;
use crate::xml::{self, Element};
use crate::{RpcCall, RpcResponse};

const ENVELOPE_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// Dots cannot appear in XML element names used for RPC operation names.
fn mangle_method(method: &str) -> String {
    method.replace('.', "_DOT_")
}

fn demangle_method(name: &str) -> String {
    name.replace("_DOT_", ".")
}

/// Encode a call as a SOAP envelope.
pub fn encode_call(call: &RpcCall) -> String {
    let mut op =
        Element::new(format!("m:{}", mangle_method(&call.method))).attr("xmlns:m", "urn:clarens");
    for (i, param) in call.params.iter().enumerate() {
        op = op.child(encode_param(&format!("p{i}"), param));
    }
    Element::new("SOAP-ENV:Envelope")
        .attr("xmlns:SOAP-ENV", ENVELOPE_NS)
        .child(Element::new("SOAP-ENV:Body").child(op))
        .to_document()
}

/// Encode a response envelope.
pub fn encode_response(response: &RpcResponse) -> String {
    let body_child = match response {
        RpcResponse::Success(value) => Element::new("m:Response")
            .attr("xmlns:m", "urn:clarens")
            .child(encode_param("return", value)),
        RpcResponse::Fault(fault) => Element::new("SOAP-ENV:Fault")
            .child(Element::new("faultcode").text(format!("SOAP-ENV:Server.{}", fault.code)))
            .child(Element::new("faultstring").text(fault.message.clone())),
    };
    Element::new("SOAP-ENV:Envelope")
        .attr("xmlns:SOAP-ENV", ENVELOPE_NS)
        .child(Element::new("SOAP-ENV:Body").child(body_child))
        .to_document()
}

/// Encode a response envelope directly into `out` — byte-identical to
/// [`encode_response`]`.into_bytes()` (property-tested in
/// `tests/stream_identity.rs`); the DOM form stays as the reference.
pub fn encode_response_into(response: &RpcResponse, out: &mut Vec<u8>) {
    use std::io::Write as _;
    out.extend_from_slice(
        b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
          <SOAP-ENV:Envelope xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\">\
          <SOAP-ENV:Body>",
    );
    match response {
        RpcResponse::Success(value) => {
            out.extend_from_slice(b"<m:Response xmlns:m=\"urn:clarens\"><return>");
            crate::xmlrpc::encode_value_into(value, out);
            out.extend_from_slice(b"</return></m:Response>");
        }
        RpcResponse::Fault(fault) => {
            let _ = write!(
                out,
                "<SOAP-ENV:Fault><faultcode>SOAP-ENV:Server.{}</faultcode><faultstring>",
                fault.code
            );
            xml::escape_text_into(&fault.message, out);
            out.extend_from_slice(b"</faultstring></SOAP-ENV:Fault>");
        }
    }
    out.extend_from_slice(b"</SOAP-ENV:Body></SOAP-ENV:Envelope>");
}

/// Encode one named parameter. The child structure reuses the XML-RPC value
/// element lexicon, which keeps the two XML protocols' type systems aligned.
fn encode_param(name: &str, value: &Value) -> Element {
    Element::new(name).child(crate::xmlrpc::encode_value(value))
}

fn decode_param(el: &Element) -> Result<Value, WireError> {
    match el.find("value") {
        Some(value_el) => crate::xmlrpc::decode_value(value_el),
        // Lenient mode: a parameter with bare text is a string; an empty
        // parameter is nil.
        None => {
            if el.elements().next().is_none() {
                let text = el.text_content();
                if text.is_empty() {
                    Ok(Value::Nil)
                } else {
                    Ok(Value::Str(text))
                }
            } else {
                Err(WireError::protocol(format!(
                    "SOAP parameter <{}> has unrecognized content",
                    el.name
                )))
            }
        }
    }
}

fn find_body(root: &Element) -> Result<&Element, WireError> {
    if root.local_name() != "Envelope" {
        return Err(WireError::protocol(format!(
            "expected SOAP Envelope, found <{}>",
            root.name
        )));
    }
    root.find("Body")
        .ok_or_else(|| WireError::protocol("envelope has no Body"))
}

/// Decode a call envelope.
pub fn decode_call(text: &str) -> Result<RpcCall, WireError> {
    let root = xml::parse(text)?;
    let body = find_body(&root)?;
    let op = body
        .elements()
        .next()
        .ok_or_else(|| WireError::protocol("SOAP Body is empty"))?;
    if op.local_name() == "Fault" {
        return Err(WireError::protocol("Fault in request body"));
    }
    let method = demangle_method(op.local_name());
    let mut params = Vec::new();
    for param_el in op.elements() {
        params.push(decode_param(param_el)?);
    }
    Ok(RpcCall {
        method,
        params,
        id: None,
    })
}

/// Decode a response envelope.
pub fn decode_response(text: &str) -> Result<RpcResponse, WireError> {
    let root = xml::parse(text)?;
    let body = find_body(&root)?;
    let first = body
        .elements()
        .next()
        .ok_or_else(|| WireError::protocol("SOAP Body is empty"))?;
    if first.local_name() == "Fault" {
        let code_text = first
            .find("faultcode")
            .map(|e| e.text_content())
            .unwrap_or_default();
        // Our encoder writes "SOAP-ENV:Server.<code>"; extract the numeric
        // tail when present, otherwise default to 0.
        let code = code_text
            .rsplit('.')
            .next()
            .and_then(|tail| tail.parse::<i64>().ok())
            .unwrap_or(0);
        let message = first
            .find("faultstring")
            .map(|e| e.text_content())
            .unwrap_or_default();
        return Ok(RpcResponse::Fault(Fault::new(code, message)));
    }
    let ret = first
        .elements()
        .next()
        .ok_or_else(|| WireError::protocol("SOAP response has no return parameter"))?;
    Ok(RpcResponse::Success(decode_param(ret)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let call = RpcCall::new(
            "file.read",
            vec![Value::from("/a/b"), Value::Int(10), Value::Int(1 << 40)],
        );
        let doc = encode_call(&call);
        assert!(doc.contains("file_DOT_read"));
        assert_eq!(decode_call(&doc).unwrap(), call);
    }

    #[test]
    fn method_name_mangling() {
        assert_eq!(mangle_method("a.b.c"), "a_DOT_b_DOT_c");
        assert_eq!(demangle_method("a_DOT_b_DOT_c"), "a.b.c");
        let call = RpcCall::new("system.list_methods", vec![]);
        assert_eq!(
            decode_call(&encode_call(&call)).unwrap().method,
            "system.list_methods"
        );
    }

    #[test]
    fn response_roundtrip() {
        let ok = RpcResponse::Success(Value::structure([
            ("size", Value::Int(1024)),
            ("name", Value::from("f.root")),
        ]));
        assert_eq!(decode_response(&encode_response(&ok)).unwrap(), ok);
    }

    #[test]
    fn fault_roundtrip() {
        let fault = RpcResponse::Fault(Fault::new(4, "access denied"));
        let doc = encode_response(&fault);
        assert!(doc.contains("SOAP-ENV:Server.4"));
        assert_eq!(decode_response(&doc).unwrap(), fault);
    }

    #[test]
    fn foreign_prefix_accepted() {
        let doc = r#"<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
            <soapenv:Body>
              <ns1:echo_DOT_echo xmlns:ns1="urn:clarens">
                <arg><value><string>hi</string></value></arg>
              </ns1:echo_DOT_echo>
            </soapenv:Body>
          </soapenv:Envelope>"#;
        let call = decode_call(doc).unwrap();
        assert_eq!(call.method, "echo.echo");
        assert_eq!(call.params, vec![Value::from("hi")]);
    }

    #[test]
    fn bare_text_param_is_string() {
        let doc = r#"<Envelope><Body><m><a>plain</a><b/></m></Body></Envelope>"#;
        let call = decode_call(doc).unwrap();
        assert_eq!(call.params, vec![Value::from("plain"), Value::Nil]);
    }

    #[test]
    fn missing_body_rejected() {
        assert!(decode_call("<Envelope/>").is_err());
        assert!(decode_call("<Envelope><Body/></Envelope>").is_err());
        assert!(decode_call("<NotEnvelope><Body><m/></Body></NotEnvelope>").is_err());
    }

    #[test]
    fn fault_without_numeric_code() {
        let doc = r#"<Envelope><Body><Fault><faultcode>Client</faultcode><faultstring>oops</faultstring></Fault></Body></Envelope>"#;
        match decode_response(doc).unwrap() {
            RpcResponse::Fault(f) => {
                assert_eq!(f.code, 0);
                assert_eq!(f.message, "oops");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_value_types_survive() {
        use crate::datetime::DateTime;
        let call = RpcCall::new(
            "t.m",
            vec![
                Value::Nil,
                Value::Bool(true),
                Value::Int(-5),
                Value::Double(2.5),
                Value::from("s"),
                Value::Bytes(vec![9, 8, 7]),
                Value::DateTime(DateTime::new(2005, 1, 1, 0, 0, 0).unwrap()),
                Value::array([Value::Int(1)]),
                Value::structure([("k", Value::from("v"))]),
            ],
        );
        assert_eq!(decode_call(&encode_call(&call)).unwrap(), call);
    }
}
