//! JSON-RPC codec (1.0 wire shape with 2.0 compatibility).
//!
//! Clarens added JSON-RPC as a lightweight protocol for JavaScript portal
//! clients (paper §2 "Multiple protocols", §3 portal). We emit the 1.0
//! shape the 2005-era `jsonrpc` library used (`{"method", "params", "id"}`)
//! and accept 2.0 requests/responses (`"jsonrpc":"2.0"`, error objects with
//! `code`/`message`).

use crate::fault::{Fault, WireError};
use crate::value::Value;
use crate::{RpcCall, RpcResponse};

/// Encode a call. If `call.id` is `None`, an id of `1` is used (JSON-RPC 1.0
/// requires an id for calls that expect a response).
pub fn encode_call(call: &RpcCall) -> String {
    let obj = Value::structure([
        ("method", Value::Str(call.method.clone())),
        ("params", Value::Array(call.params.clone())),
        ("id", call.id.clone().unwrap_or(Value::Int(1))),
    ]);
    crate::json::to_string(&obj)
}

/// Decode a call (accepts both 1.0 and 2.0 shapes).
pub fn decode_call(text: &str) -> Result<RpcCall, WireError> {
    let value = crate::json::parse(text)?;
    let obj = value
        .as_struct()
        .ok_or_else(|| WireError::protocol("JSON-RPC request must be an object"))?;
    if let Some(version) = obj.get("jsonrpc") {
        if version.as_str() != Some("2.0") {
            return Err(WireError::protocol("unsupported jsonrpc version"));
        }
    }
    let method = obj
        .get("method")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::protocol("missing method"))?
        .to_owned();
    if method.is_empty() {
        return Err(WireError::protocol("empty method"));
    }
    let params = match obj.get("params") {
        None => Vec::new(),
        Some(Value::Array(items)) => items.clone(),
        // 2.0 named params: pass the object through as a single struct param.
        Some(v @ Value::Struct(_)) => vec![v.clone()],
        Some(other) => {
            return Err(WireError::protocol(format!(
                "params must be array or object, found {}",
                other.type_name()
            )))
        }
    };
    let id = obj.get("id").cloned();
    Ok(RpcCall { method, params, id })
}

/// Encode a response, echoing `id` (defaults to `1` like [`encode_call`]).
///
/// The 1.0 shape is emitted: success has `"error": null`, faults have
/// `"result": null` and an error object.
pub fn encode_response(response: &RpcResponse, id: Option<&Value>) -> String {
    let id = id.cloned().unwrap_or(Value::Int(1));
    let obj = match response {
        RpcResponse::Success(value) => {
            Value::structure([("result", value.clone()), ("error", Value::Nil), ("id", id)])
        }
        RpcResponse::Fault(fault) => Value::structure([
            ("result", Value::Nil),
            (
                "error",
                Value::structure([
                    ("code", Value::Int(fault.code)),
                    ("message", Value::Str(fault.message.clone())),
                ]),
            ),
            ("id", id),
        ]),
    };
    crate::json::to_string(&obj)
}

/// Encode a response directly into `out` without building the intermediate
/// response `Value::Struct` (and its clones of the result value).
///
/// Byte-identical to [`encode_response`]`.into_bytes()`: the DOM path
/// renders a `BTreeMap`, whose iteration order for the three members is
/// `error` < `id` < `result` (and `code` < `message` inside the error
/// object) — enforced by property tests in `tests/stream_identity.rs`.
pub fn encode_response_into(response: &RpcResponse, id: Option<&Value>, out: &mut Vec<u8>) {
    use std::io::Write as _;
    let default_id = Value::Int(1);
    let id = id.unwrap_or(&default_id);
    out.extend_from_slice(b"{\"error\":");
    match response {
        RpcResponse::Success(_) => out.extend_from_slice(b"null"),
        RpcResponse::Fault(fault) => {
            let _ = write!(out, "{{\"code\":{},\"message\":", fault.code);
            crate::json::write_string_into(out, &fault.message);
            out.push(b'}');
        }
    }
    out.extend_from_slice(b",\"id\":");
    crate::json::write_into(out, id);
    out.extend_from_slice(b",\"result\":");
    match response {
        RpcResponse::Success(value) => crate::json::write_into(out, value),
        RpcResponse::Fault(_) => out.extend_from_slice(b"null"),
    }
    out.push(b'}');
}

/// Decode a response (accepts both 1.0 and 2.0 shapes).
pub fn decode_response(text: &str) -> Result<RpcResponse, WireError> {
    let value = crate::json::parse(text)?;
    let obj = value
        .as_struct()
        .ok_or_else(|| WireError::protocol("JSON-RPC response must be an object"))?;

    match obj.get("error") {
        Some(err) if !err.is_nil() => {
            // 2.0-style error object, or a bare string (some 1.0 impls).
            if let Some(emap) = err.as_struct() {
                let code = emap.get("code").and_then(Value::as_int).unwrap_or(0);
                let message = emap
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_owned();
                return Ok(RpcResponse::Fault(Fault::new(code, message)));
            }
            if let Some(msg) = err.as_str() {
                return Ok(RpcResponse::Fault(Fault::new(0, msg)));
            }
            return Err(WireError::protocol("error member must be object or string"));
        }
        _ => {}
    }
    match obj.get("result") {
        Some(result) => Ok(RpcResponse::Success(result.clone())),
        None => Err(WireError::protocol("response has neither result nor error")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let call = RpcCall {
            method: "vo.add_member".into(),
            params: vec![Value::from("groupA"), Value::from("/O=org/CN=Jo")],
            id: Some(Value::Int(9)),
        };
        let text = encode_call(&call);
        assert_eq!(decode_call(&text).unwrap(), call);
    }

    #[test]
    fn call_default_id() {
        let call = RpcCall::new("m", vec![]);
        let decoded = decode_call(&encode_call(&call)).unwrap();
        assert_eq!(decoded.id, Some(Value::Int(1)));
    }

    #[test]
    fn v2_call_accepted() {
        let text = r#"{"jsonrpc":"2.0","method":"sum","params":[1,2],"id":"abc"}"#;
        let call = decode_call(text).unwrap();
        assert_eq!(call.method, "sum");
        assert_eq!(call.params, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(call.id, Some(Value::from("abc")));
    }

    #[test]
    fn v2_named_params_become_single_struct() {
        let text = r#"{"jsonrpc":"2.0","method":"m","params":{"a":1},"id":1}"#;
        let call = decode_call(text).unwrap();
        assert_eq!(call.params.len(), 1);
        assert_eq!(call.params[0].get("a").unwrap().as_int(), Some(1));
    }

    #[test]
    fn bad_version_rejected() {
        assert!(decode_call(r#"{"jsonrpc":"3.0","method":"m","id":1}"#).is_err());
    }

    #[test]
    fn missing_method_rejected() {
        assert!(decode_call(r#"{"id":1}"#).is_err());
        assert!(decode_call(r#"{"method":"","id":1}"#).is_err());
        assert!(decode_call(r#"[1,2]"#).is_err());
        assert!(decode_call(r#"{"method":"m","params":"str","id":1}"#).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let ok = RpcResponse::Success(Value::array([Value::Int(1)]));
        assert_eq!(
            decode_response(&encode_response(&ok, Some(&Value::Int(5)))).unwrap(),
            ok
        );
        let fault = RpcResponse::Fault(Fault::new(4, "denied"));
        assert_eq!(
            decode_response(&encode_response(&fault, None)).unwrap(),
            fault
        );
    }

    #[test]
    fn success_null_result_allowed() {
        let ok = RpcResponse::Success(Value::Nil);
        assert_eq!(decode_response(&encode_response(&ok, None)).unwrap(), ok);
    }

    #[test]
    fn id_echoed() {
        let text = encode_response(
            &RpcResponse::Success(Value::Int(2)),
            Some(&Value::from("q")),
        );
        let obj = crate::json::parse(&text).unwrap();
        assert_eq!(obj.get("id").unwrap().as_str(), Some("q"));
    }

    #[test]
    fn bare_string_error_accepted() {
        let resp = decode_response(r#"{"result":null,"error":"boom","id":1}"#).unwrap();
        assert_eq!(resp, RpcResponse::Fault(Fault::new(0, "boom")));
    }

    #[test]
    fn empty_object_rejected() {
        assert!(decode_response("{}").is_err());
        assert!(decode_response("[]").is_err());
        assert!(decode_response(r#"{"error":1,"id":1}"#).is_err());
    }
}
