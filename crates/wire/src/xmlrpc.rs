//! XML-RPC codec (<http://www.xmlrpc.com>), the primary Clarens protocol.
//!
//! The paper's Figure 4 benchmark serializes "more than 30 strings as an
//! array response in XML-RPC"; this module is that hot path in the
//! reproduction. Supported types: `i4`/`int`/`i8`, `boolean`, `string`
//! (including bare text inside `<value>`), `double`, `dateTime.iso8601`,
//! `base64`, `struct`, `array`, and the widely-implemented `<nil/>`
//! extension.

use crate::datetime::DateTime;
use crate::fault::{Fault, WireError};
use crate::value::Value;
use crate::xml::{self, Element};
use crate::{RpcCall, RpcResponse};

/// Encode a method call as an XML-RPC `<methodCall>` document.
pub fn encode_call(call: &RpcCall) -> String {
    let mut params = Element::new("params");
    for param in &call.params {
        params = params.child(Element::new("param").child(encode_value(param)));
    }
    Element::new("methodCall")
        .child(Element::new("methodName").text(call.method.clone()))
        .child(params)
        .to_document()
}

/// Encode a response (`<params>` on success, `<fault>` on failure).
pub fn encode_response(response: &RpcResponse) -> String {
    let root = match response {
        RpcResponse::Success(value) => Element::new("methodResponse")
            .child(Element::new("params").child(Element::new("param").child(encode_value(value)))),
        RpcResponse::Fault(fault) => {
            let detail = Value::structure([
                ("faultCode", Value::Int(fault.code)),
                ("faultString", Value::Str(fault.message.clone())),
            ]);
            Element::new("methodResponse").child(Element::new("fault").child(encode_value(&detail)))
        }
    };
    root.to_document()
}

/// Encode one value as a `<value>` element.
pub fn encode_value(value: &Value) -> Element {
    let inner = match value {
        Value::Nil => Element::new("nil"),
        Value::Bool(b) => Element::new("boolean").text(if *b { "1" } else { "0" }),
        Value::Int(i) => {
            if i32::try_from(*i).is_ok() {
                Element::new("i4").text(i.to_string())
            } else {
                Element::new("i8").text(i.to_string())
            }
        }
        Value::Double(d) => Element::new("double").text(format_double(*d)),
        Value::Str(s) => Element::new("string").text(s.clone()),
        Value::Bytes(b) => Element::new("base64").text(crate::base64::encode(b)),
        Value::DateTime(dt) => Element::new("dateTime.iso8601").text(dt.to_string()),
        Value::Array(items) => {
            let mut data = Element::new("data");
            for item in items {
                data = data.child(encode_value(item));
            }
            Element::new("array").child(data)
        }
        Value::Struct(map) => {
            let mut st = Element::new("struct");
            for (k, v) in map {
                st = st.child(
                    Element::new("member")
                        .child(Element::new("name").text(k.clone()))
                        .child(encode_value(v)),
                );
            }
            st
        }
    };
    Element::new("value").child(inner)
}

/// XML-RPC requires a decimal representation for doubles (no exponents).
fn format_double(d: f64) -> String {
    if !d.is_finite() {
        // The spec has no representation for non-finite doubles; emit 0 with
        // a marker impossible in legit traffic rather than invalid XML.
        return "0.0".to_string();
    }
    let s = format!("{d}");
    if s.contains('e') || s.contains('E') {
        // Expand scientific notation into plain decimal.
        format!("{d:.17}")
    } else if !s.contains('.') {
        format!("{s}.0")
    } else {
        s
    }
}

/// Decode a `<methodCall>` document.
pub fn decode_call(text: &str) -> Result<RpcCall, WireError> {
    let root = xml::parse(text)?;
    if root.local_name() != "methodCall" {
        return Err(WireError::protocol(format!(
            "expected <methodCall>, found <{}>",
            root.name
        )));
    }
    let method = root
        .find("methodName")
        .ok_or_else(|| WireError::protocol("missing <methodName>"))?
        .text_content()
        .trim()
        .to_owned();
    if method.is_empty() {
        return Err(WireError::protocol("empty methodName"));
    }
    let params = decode_params(&root)?;
    Ok(RpcCall {
        method,
        params,
        id: None,
    })
}

fn decode_params(root: &Element) -> Result<Vec<Value>, WireError> {
    let mut out = Vec::new();
    if let Some(params) = root.find("params") {
        for param in params.find_all("param") {
            let value = param
                .find("value")
                .ok_or_else(|| WireError::protocol("<param> without <value>"))?;
            out.push(decode_value(value)?);
        }
    }
    Ok(out)
}

/// Decode a `<methodResponse>` document.
pub fn decode_response(text: &str) -> Result<RpcResponse, WireError> {
    let root = xml::parse(text)?;
    if root.local_name() != "methodResponse" {
        return Err(WireError::protocol(format!(
            "expected <methodResponse>, found <{}>",
            root.name
        )));
    }
    if let Some(fault) = root.find("fault") {
        let value = fault
            .find("value")
            .ok_or_else(|| WireError::protocol("<fault> without <value>"))?;
        let detail = decode_value(value)?;
        let code = detail
            .get("faultCode")
            .and_then(Value::as_int)
            .ok_or_else(|| WireError::protocol("fault missing faultCode"))?;
        let message = detail
            .get("faultString")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned();
        return Ok(RpcResponse::Fault(Fault::new(code, message)));
    }
    let params = decode_params(&root)?;
    match params.len() {
        1 => Ok(RpcResponse::Success(params.into_iter().next().unwrap())),
        0 => Err(WireError::protocol(
            "response has no <params> and no <fault>",
        )),
        n => Err(WireError::protocol(format!(
            "response has {n} params, expected 1"
        ))),
    }
}

/// Decode one `<value>` element.
pub fn decode_value(value_el: &Element) -> Result<Value, WireError> {
    if value_el.local_name() != "value" {
        return Err(WireError::protocol(format!(
            "expected <value>, found <{}>",
            value_el.name
        )));
    }
    let typed = match value_el.first_element() {
        Some(el) => el,
        // Bare text inside <value> is a string per the spec.
        None => return Ok(Value::Str(value_el.text_content())),
    };
    let text = typed.text_content();
    match typed.local_name() {
        "nil" => Ok(Value::Nil),
        "boolean" => match text.trim() {
            "1" | "true" => Ok(Value::Bool(true)),
            "0" | "false" => Ok(Value::Bool(false)),
            other => Err(WireError::parse(format!("invalid boolean {other:?}"))),
        },
        "i4" | "int" | "i8" => text
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| WireError::parse(format!("invalid integer {text:?}"))),
        "double" => text
            .trim()
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| WireError::parse(format!("invalid double {text:?}"))),
        "string" => Ok(Value::Str(text)),
        "base64" => crate::base64::decode(&text)
            .map(Value::Bytes)
            .map_err(|e| WireError::parse(format!("invalid base64: {e}"))),
        "dateTime.iso8601" => DateTime::parse(&text)
            .map(Value::DateTime)
            .map_err(|e| WireError::parse(e.to_string())),
        "array" => {
            let data = typed
                .find("data")
                .ok_or_else(|| WireError::protocol("<array> without <data>"))?;
            let mut items = Vec::new();
            for child in data.find_all("value") {
                items.push(decode_value(child)?);
            }
            Ok(Value::Array(items))
        }
        "struct" => {
            let mut map = std::collections::BTreeMap::new();
            for member in typed.find_all("member") {
                let name = member
                    .find("name")
                    .ok_or_else(|| WireError::protocol("<member> without <name>"))?
                    .text_content();
                let value = member
                    .find("value")
                    .ok_or_else(|| WireError::protocol("<member> without <value>"))?;
                map.insert(name, decode_value(value)?);
            }
            Ok(Value::Struct(map))
        }
        other => Err(WireError::protocol(format!(
            "unknown XML-RPC type <{other}>"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let el = encode_value(&v);
        let doc = el.to_document();
        let parsed = xml::parse(&doc).unwrap();
        assert_eq!(decode_value(&parsed).unwrap(), v, "value {v:?}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip_value(Value::Nil);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        roundtrip_value(Value::Int(0));
        roundtrip_value(Value::Int(i64::from(i32::MAX)));
        roundtrip_value(Value::Int(i64::from(i32::MIN)));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Double(0.5));
        roundtrip_value(Value::Double(-123.456));
        roundtrip_value(Value::Double(3.0));
        roundtrip_value(Value::Str("".into()));
        roundtrip_value(Value::Str("hello <world> & \"friends\"".into()));
        roundtrip_value(Value::Bytes(vec![0, 1, 2, 255]));
        roundtrip_value(Value::DateTime(
            DateTime::new(2005, 6, 15, 1, 2, 3).unwrap(),
        ));
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip_value(Value::Array(vec![]));
        roundtrip_value(Value::array([
            Value::Int(1),
            Value::from("two"),
            Value::Nil,
        ]));
        roundtrip_value(Value::Struct(Default::default()));
        roundtrip_value(Value::structure([
            ("list", Value::array([Value::Bool(true)])),
            ("nested", Value::structure([("x", Value::Double(1.25))])),
        ]));
    }

    #[test]
    fn i4_vs_i8_selection() {
        let small = encode_value(&Value::Int(42)).to_document();
        assert!(small.contains("<i4>42</i4>"), "{small}");
        let big = encode_value(&Value::Int(5_000_000_000)).to_document();
        assert!(big.contains("<i8>5000000000</i8>"), "{big}");
    }

    #[test]
    fn double_has_no_exponent() {
        let doc = encode_value(&Value::Double(1e-9)).to_document();
        assert!(!doc.contains('e') || !doc.contains("e-"), "{doc}");
        let parsed = xml::parse(&doc).unwrap();
        let back = decode_value(&parsed).unwrap().as_double().unwrap();
        assert!((back - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn call_roundtrip() {
        let call = RpcCall::new(
            "file.read",
            vec![
                Value::from("/data/f.root"),
                Value::Int(0),
                Value::Int(65536),
            ],
        );
        let doc = encode_call(&call);
        let back = decode_call(&doc).unwrap();
        assert_eq!(back, call);
    }

    #[test]
    fn call_without_params() {
        let doc = "<?xml version=\"1.0\"?><methodCall><methodName>system.list_methods</methodName></methodCall>";
        let call = decode_call(doc).unwrap();
        assert_eq!(call.method, "system.list_methods");
        assert!(call.params.is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let ok = RpcResponse::Success(Value::array([Value::from("m1"), Value::from("m2")]));
        assert_eq!(decode_response(&encode_response(&ok)).unwrap(), ok);
        let fault = RpcResponse::Fault(Fault::new(4, "access denied"));
        assert_eq!(decode_response(&encode_response(&fault)).unwrap(), fault);
    }

    #[test]
    fn bare_text_value_is_string() {
        let doc =
            "<methodResponse><params><param><value>plain</value></param></params></methodResponse>";
        match decode_response(doc).unwrap() {
            RpcResponse::Success(Value::Str(s)) => assert_eq!(s, "plain"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn int_spelled_int_accepted() {
        let doc = "<methodCall><methodName>m</methodName><params><param><value><int>7</int></value></param></params></methodCall>";
        assert_eq!(decode_call(doc).unwrap().params, vec![Value::Int(7)]);
    }

    #[test]
    fn boolean_lenient_forms() {
        for (text, expect) in [("1", true), ("true", true), ("0", false), ("false", false)] {
            let doc = format!(
                "<methodCall><methodName>m</methodName><params><param><value><boolean>{text}</boolean></value></param></params></methodCall>"
            );
            assert_eq!(decode_call(&doc).unwrap().params, vec![Value::Bool(expect)]);
        }
        let bad = "<methodCall><methodName>m</methodName><params><param><value><boolean>yes</boolean></value></param></params></methodCall>";
        assert!(decode_call(bad).is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_call("<methodCall/>").is_err()); // no methodName
        assert!(decode_call("<methodResponse/>").is_err()); // wrong root
        assert!(decode_response("<methodResponse/>").is_err()); // empty
        assert!(decode_response(
            "<methodResponse><params><param><value><i4>1</i4></value></param><param><value><i4>2</i4></value></param></params></methodResponse>"
        )
        .is_err()); // two params
        assert!(decode_call(
            "<methodCall><methodName>m</methodName><params><param></param></params></methodCall>"
        )
        .is_err()); // param without value
    }

    #[test]
    fn unknown_type_rejected() {
        let doc = "<methodCall><methodName>m</methodName><params><param><value><float>1</float></value></param></params></methodCall>";
        assert!(decode_call(doc).is_err());
    }

    #[test]
    fn fault_missing_code_rejected() {
        let doc = "<methodResponse><fault><value><struct><member><name>faultString</name><value>x</value></member></struct></value></fault></methodResponse>";
        assert!(decode_response(doc).is_err());
    }

    #[test]
    fn thirty_string_array_like_figure4() {
        // The exact workload of Figure 4: a >30-element string array.
        let methods: Vec<Value> = (0..32)
            .map(|i| Value::from(format!("module{i}.method{i}")))
            .collect();
        let resp = RpcResponse::Success(Value::Array(methods.clone()));
        let doc = encode_response(&resp);
        match decode_response(&doc).unwrap() {
            RpcResponse::Success(Value::Array(items)) => assert_eq!(items, methods),
            other => panic!("unexpected {other:?}"),
        }
    }
}
