//! XML-RPC codec (<http://www.xmlrpc.com>), the primary Clarens protocol.
//!
//! The paper's Figure 4 benchmark serializes "more than 30 strings as an
//! array response in XML-RPC"; this module is that hot path in the
//! reproduction. Supported types: `i4`/`int`/`i8`, `boolean`, `string`
//! (including bare text inside `<value>`), `double`, `dateTime.iso8601`,
//! `base64`, `struct`, `array`, and the widely-implemented `<nil/>`
//! extension.

use crate::datetime::DateTime;
use crate::fault::{Fault, WireError};
use crate::value::Value;
use crate::xml::{self, Element};
use crate::{RpcCall, RpcResponse};

/// Encode a method call as an XML-RPC `<methodCall>` document.
pub fn encode_call(call: &RpcCall) -> String {
    let mut params = Element::new("params");
    for param in &call.params {
        params = params.child(Element::new("param").child(encode_value(param)));
    }
    Element::new("methodCall")
        .child(Element::new("methodName").text(call.method.clone()))
        .child(params)
        .to_document()
}

/// Encode a response (`<params>` on success, `<fault>` on failure).
pub fn encode_response(response: &RpcResponse) -> String {
    let root = match response {
        RpcResponse::Success(value) => Element::new("methodResponse")
            .child(Element::new("params").child(Element::new("param").child(encode_value(value)))),
        RpcResponse::Fault(fault) => {
            let detail = Value::structure([
                ("faultCode", Value::Int(fault.code)),
                ("faultString", Value::Str(fault.message.clone())),
            ]);
            Element::new("methodResponse").child(Element::new("fault").child(encode_value(&detail)))
        }
    };
    root.to_document()
}

/// Encode one value as a `<value>` element.
pub fn encode_value(value: &Value) -> Element {
    let inner = match value {
        Value::Nil => Element::new("nil"),
        Value::Bool(b) => Element::new("boolean").text(if *b { "1" } else { "0" }),
        Value::Int(i) => {
            if i32::try_from(*i).is_ok() {
                Element::new("i4").text(i.to_string())
            } else {
                Element::new("i8").text(i.to_string())
            }
        }
        Value::Double(d) => Element::new("double").text(format_double(*d)),
        Value::Str(s) => Element::new("string").text(s.clone()),
        Value::Bytes(b) => Element::new("base64").text(crate::base64::encode(b)),
        Value::DateTime(dt) => Element::new("dateTime.iso8601").text(dt.to_string()),
        Value::Array(items) => {
            let mut data = Element::new("data");
            for item in items {
                data = data.child(encode_value(item));
            }
            Element::new("array").child(data)
        }
        Value::Struct(map) => {
            let mut st = Element::new("struct");
            for (k, v) in map {
                st = st.child(
                    Element::new("member")
                        .child(Element::new("name").text(k.clone()))
                        .child(encode_value(v)),
                );
            }
            st
        }
    };
    Element::new("value").child(inner)
}

/// Encode a response directly into `out` with no intermediate `Element`
/// tree or per-field `String`s.
///
/// Byte-identical to [`encode_response`]`.into_bytes()` — the DOM encoder
/// stays as the reference implementation and the equivalence is enforced by
/// property tests (`tests/stream_identity.rs`).
pub fn encode_response_into(response: &RpcResponse, out: &mut Vec<u8>) {
    out.extend_from_slice(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    match response {
        RpcResponse::Success(value) => {
            out.extend_from_slice(b"<methodResponse><params><param>");
            encode_value_into(value, out);
            out.extend_from_slice(b"</param></params></methodResponse>");
        }
        RpcResponse::Fault(fault) => {
            // The fault detail struct has exactly two members; BTreeMap
            // ordering in the DOM path puts faultCode before faultString.
            out.extend_from_slice(
                b"<methodResponse><fault><value><struct><member><name>faultCode</name>",
            );
            encode_value_into(&Value::Int(fault.code), out);
            out.extend_from_slice(b"</member><member><name>faultString</name><value><string>");
            xml::escape_text_into(&fault.message, out);
            out.extend_from_slice(
                b"</string></value></member></struct></value></fault></methodResponse>",
            );
        }
    }
}

/// Encode one `<value>` element directly into `out` (see
/// [`encode_response_into`]).
pub fn encode_value_into(value: &Value, out: &mut Vec<u8>) {
    use std::io::Write as _;
    out.extend_from_slice(b"<value>");
    match value {
        Value::Nil => out.extend_from_slice(b"<nil/>"),
        Value::Bool(b) => {
            out.extend_from_slice(if *b {
                b"<boolean>1</boolean>"
            } else {
                b"<boolean>0</boolean>"
            });
        }
        Value::Int(i) => {
            if i32::try_from(*i).is_ok() {
                let _ = write!(out, "<i4>{i}</i4>");
            } else {
                let _ = write!(out, "<i8>{i}</i8>");
            }
        }
        Value::Double(d) => {
            out.extend_from_slice(b"<double>");
            format_double_into(*d, out);
            out.extend_from_slice(b"</double>");
        }
        Value::Str(s) => {
            out.extend_from_slice(b"<string>");
            xml::escape_text_into(s, out);
            out.extend_from_slice(b"</string>");
        }
        Value::Bytes(b) => {
            out.extend_from_slice(b"<base64>");
            crate::base64::encode_into(b, out);
            out.extend_from_slice(b"</base64>");
        }
        Value::DateTime(dt) => {
            // The ISO form is digits/'T'/':' only — nothing to escape.
            let _ = write!(out, "<dateTime.iso8601>{dt}</dateTime.iso8601>");
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.extend_from_slice(b"<array><data/></array>");
            } else {
                out.extend_from_slice(b"<array><data>");
                for item in items {
                    encode_value_into(item, out);
                }
                out.extend_from_slice(b"</data></array>");
            }
        }
        Value::Struct(map) => {
            if map.is_empty() {
                out.extend_from_slice(b"<struct/>");
            } else {
                out.extend_from_slice(b"<struct>");
                for (k, v) in map {
                    out.extend_from_slice(b"<member><name>");
                    xml::escape_text_into(k, out);
                    out.extend_from_slice(b"</name>");
                    encode_value_into(v, out);
                    out.extend_from_slice(b"</member>");
                }
                out.extend_from_slice(b"</struct>");
            }
        }
    }
    out.extend_from_slice(b"</value>");
}

/// Streaming twin of [`format_double`]: identical output, no intermediate
/// `String`. The rare scientific-notation case rewrites in place by
/// truncating back to the field start.
fn format_double_into(d: f64, out: &mut Vec<u8>) {
    use std::io::Write as _;
    if !d.is_finite() {
        out.extend_from_slice(b"0.0");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{d}");
    if out[start..].iter().any(|&b| b == b'e' || b == b'E') {
        out.truncate(start);
        let _ = write!(out, "{d:.17}");
    } else if !out[start..].contains(&b'.') {
        out.extend_from_slice(b".0");
    }
}

/// XML-RPC requires a decimal representation for doubles (no exponents).
fn format_double(d: f64) -> String {
    if !d.is_finite() {
        // The spec has no representation for non-finite doubles; emit 0 with
        // a marker impossible in legit traffic rather than invalid XML.
        return "0.0".to_string();
    }
    let s = format!("{d}");
    if s.contains('e') || s.contains('E') {
        // Expand scientific notation into plain decimal.
        format!("{d:.17}")
    } else if !s.contains('.') {
        format!("{s}.0")
    } else {
        s
    }
}

/// Decode a `<methodCall>` document.
///
/// The common wire profile (what every mainstream XML-RPC client emits:
/// no attributes, comments, CDATA, or namespace prefixes) is parsed by a
/// streaming decoder that builds no intermediate `Element` tree; anything
/// outside that profile — including malformed documents, so error messages
/// stay identical — falls back to [`decode_call_dom`].
pub fn decode_call(text: &str) -> Result<RpcCall, WireError> {
    if let Some(call) = fast::decode_call(text) {
        return Ok(call);
    }
    decode_call_dom(text)
}

/// DOM reference decoder for `<methodCall>` documents. [`decode_call`]
/// delegates here for anything the streaming fast path does not accept;
/// property tests assert the two agree on the fast path's profile.
pub fn decode_call_dom(text: &str) -> Result<RpcCall, WireError> {
    let root = xml::parse(text)?;
    if root.local_name() != "methodCall" {
        return Err(WireError::protocol(format!(
            "expected <methodCall>, found <{}>",
            root.name
        )));
    }
    let method = root
        .find("methodName")
        .ok_or_else(|| WireError::protocol("missing <methodName>"))?
        .text_content()
        .trim()
        .to_owned();
    if method.is_empty() {
        return Err(WireError::protocol("empty methodName"));
    }
    let params = decode_params(&root)?;
    Ok(RpcCall {
        method,
        params,
        id: None,
    })
}

/// Streaming `<methodCall>` decoder: a single left-to-right pass with no
/// `Element` tree. Strictly conservative — any construct it is not sure
/// about (attributes, comments, CDATA, prefixes, out-of-order children,
/// unparsable scalars) yields `None` and the caller re-parses with the DOM
/// decoder, so accepted documents decode exactly as the reference would.
mod fast {
    use super::*;

    pub(super) fn decode_call(text: &str) -> Option<RpcCall> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        // Prolog: whitespace and `<?...?>` declarations only; DOCTYPEs and
        // comments are DOM territory.
        loop {
            p.skip_ws();
            if p.bytes[p.pos..].starts_with(b"<?") {
                let off = find(&p.bytes[p.pos..], b"?>")?;
                p.pos += off + 2;
            } else {
                break;
            }
        }
        p.eat(b"<methodCall>")?;
        p.skip_ws();
        p.eat(b"<methodName>")?;
        let method = p.text_until_lt()?;
        let method = method.trim();
        if method.is_empty() {
            return None; // DOM reports the proper protocol error.
        }
        let method = method.to_owned();
        p.eat(b"</methodName>")?;
        p.skip_ws();
        let mut params = Vec::new();
        if p.eat(b"<params/>").is_none() {
            p.eat(b"<params>")?;
            loop {
                p.skip_ws();
                if p.eat(b"</params>").is_some() {
                    break;
                }
                p.eat(b"<param>")?;
                p.skip_ws();
                params.push(p.value(0)?);
                p.skip_ws();
                p.eat(b"</param>")?;
            }
        }
        p.skip_ws();
        p.eat(b"</methodCall>")?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return None;
        }
        Some(RpcCall {
            method,
            params,
            id: None,
        })
    }

    fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
        }

        /// Consume `token` exactly (no attributes, no intra-tag space).
        fn eat(&mut self, token: &[u8]) -> Option<()> {
            if self.bytes[self.pos..].starts_with(token) {
                self.pos += token.len();
                Some(())
            } else {
                None
            }
        }

        /// Entity-decoded character data up to the next `<`. The input is
        /// a `&str` and `<` is ASCII, so the slice stays on char
        /// boundaries; unknown or malformed entities defer to the DOM.
        fn text_until_lt(&mut self) -> Option<String> {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'<' {
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                    return xml::decode_entities(raw).ok();
                }
                self.pos += 1;
            }
            None // EOF inside an element: malformed, let the DOM say so.
        }

        /// One `<value>...</value>`.
        fn value(&mut self, depth: usize) -> Option<Value> {
            if depth > xml::MAX_DEPTH {
                return None;
            }
            if self.eat(b"<value/>").is_some() {
                return Some(Value::Str(String::new()));
            }
            self.eat(b"<value>")?;
            // Leading character data: either the whole (bare-string) value
            // or insignificant whitespace before a typed element.
            let leading = self.text_until_lt()?;
            if self.eat(b"</value>").is_some() {
                return Some(Value::Str(leading));
            }
            if !leading.trim().is_empty() {
                // Text AND an element inside <value>: the DOM ignores the
                // text; don't second-guess it here.
                return None;
            }
            let value = self.typed_value(depth)?;
            self.skip_ws();
            self.eat(b"</value>")?;
            Some(value)
        }

        /// The typed element inside a `<value>`.
        fn typed_value(&mut self, depth: usize) -> Option<Value> {
            if self.eat(b"<nil/>").is_some() || self.eat(b"<nil></nil>").is_some() {
                return Some(Value::Nil);
            }
            if self.eat(b"<string>").is_some() {
                let s = self.text_until_lt()?;
                self.eat(b"</string>")?;
                return Some(Value::Str(s));
            }
            if self.eat(b"<string/>").is_some() {
                return Some(Value::Str(String::new()));
            }
            for tag in [&b"i4"[..], b"int", b"i8"] {
                if let Some(text) = self.scalar(tag)? {
                    return text.trim().parse::<i64>().ok().map(Value::Int);
                }
            }
            if let Some(text) = self.scalar(b"boolean")? {
                return match text.trim() {
                    "1" | "true" => Some(Value::Bool(true)),
                    "0" | "false" => Some(Value::Bool(false)),
                    _ => None,
                };
            }
            if let Some(text) = self.scalar(b"double")? {
                return text.trim().parse::<f64>().ok().map(Value::Double);
            }
            if let Some(text) = self.scalar(b"base64")? {
                return crate::base64::decode(&text).ok().map(Value::Bytes);
            }
            if let Some(text) = self.scalar(b"dateTime.iso8601")? {
                // The DOM decoder parses the text untrimmed; match it.
                return DateTime::parse(&text).ok().map(Value::DateTime);
            }
            if self.eat(b"<array>").is_some() {
                self.skip_ws();
                let mut items = Vec::new();
                if self.eat(b"<data/>").is_none() {
                    self.eat(b"<data>")?;
                    loop {
                        self.skip_ws();
                        if self.eat(b"</data>").is_some() {
                            break;
                        }
                        items.push(self.value(depth + 1)?);
                    }
                }
                self.skip_ws();
                self.eat(b"</array>")?;
                return Some(Value::Array(items));
            }
            if self.eat(b"<struct/>").is_some() {
                return Some(Value::Struct(std::collections::BTreeMap::new()));
            }
            if self.eat(b"<struct>").is_some() {
                let mut map = std::collections::BTreeMap::new();
                loop {
                    self.skip_ws();
                    if self.eat(b"</struct>").is_some() {
                        break;
                    }
                    self.eat(b"<member>")?;
                    self.skip_ws();
                    let name = if self.eat(b"<name/>").is_some() {
                        String::new()
                    } else {
                        self.eat(b"<name>")?;
                        let name = self.text_until_lt()?;
                        self.eat(b"</name>")?;
                        name
                    };
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    self.skip_ws();
                    self.eat(b"</member>")?;
                    map.insert(name, value);
                }
                return Some(Value::Struct(map));
            }
            None
        }

        /// `<tag>text</tag>` (or `<tag/>` for empty text). Outer `None`
        /// means "malformed, fall back"; inner `None` means "not this tag".
        #[allow(clippy::option_option)]
        fn scalar(&mut self, tag: &[u8]) -> Option<Option<String>> {
            let mut open = Vec::with_capacity(tag.len() + 2);
            open.push(b'<');
            open.extend_from_slice(tag);
            if self.bytes[self.pos..].starts_with(&open)
                && self.bytes.get(self.pos + open.len()) == Some(&b'>')
            {
                self.pos += open.len() + 1;
                let text = self.text_until_lt()?;
                self.eat(b"</")?;
                self.eat(tag)?;
                self.eat(b">")?;
                Some(Some(text))
            } else if self.bytes[self.pos..].starts_with(&open)
                && self.bytes[self.pos + open.len()..].starts_with(b"/>")
            {
                self.pos += open.len() + 2;
                Some(Some(String::new()))
            } else {
                Some(None)
            }
        }
    }
}

fn decode_params(root: &Element) -> Result<Vec<Value>, WireError> {
    let mut out = Vec::new();
    if let Some(params) = root.find("params") {
        for param in params.find_all("param") {
            let value = param
                .find("value")
                .ok_or_else(|| WireError::protocol("<param> without <value>"))?;
            out.push(decode_value(value)?);
        }
    }
    Ok(out)
}

/// Decode a `<methodResponse>` document.
pub fn decode_response(text: &str) -> Result<RpcResponse, WireError> {
    let root = xml::parse(text)?;
    if root.local_name() != "methodResponse" {
        return Err(WireError::protocol(format!(
            "expected <methodResponse>, found <{}>",
            root.name
        )));
    }
    if let Some(fault) = root.find("fault") {
        let value = fault
            .find("value")
            .ok_or_else(|| WireError::protocol("<fault> without <value>"))?;
        let detail = decode_value(value)?;
        let code = detail
            .get("faultCode")
            .and_then(Value::as_int)
            .ok_or_else(|| WireError::protocol("fault missing faultCode"))?;
        let message = detail
            .get("faultString")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned();
        return Ok(RpcResponse::Fault(Fault::new(code, message)));
    }
    let params = decode_params(&root)?;
    match params.len() {
        1 => Ok(RpcResponse::Success(params.into_iter().next().unwrap())),
        0 => Err(WireError::protocol(
            "response has no <params> and no <fault>",
        )),
        n => Err(WireError::protocol(format!(
            "response has {n} params, expected 1"
        ))),
    }
}

/// Decode one `<value>` element.
pub fn decode_value(value_el: &Element) -> Result<Value, WireError> {
    if value_el.local_name() != "value" {
        return Err(WireError::protocol(format!(
            "expected <value>, found <{}>",
            value_el.name
        )));
    }
    let typed = match value_el.first_element() {
        Some(el) => el,
        // Bare text inside <value> is a string per the spec.
        None => return Ok(Value::Str(value_el.text_content())),
    };
    let text = typed.text_content();
    match typed.local_name() {
        "nil" => Ok(Value::Nil),
        "boolean" => match text.trim() {
            "1" | "true" => Ok(Value::Bool(true)),
            "0" | "false" => Ok(Value::Bool(false)),
            other => Err(WireError::parse(format!("invalid boolean {other:?}"))),
        },
        "i4" | "int" | "i8" => text
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| WireError::parse(format!("invalid integer {text:?}"))),
        "double" => text
            .trim()
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| WireError::parse(format!("invalid double {text:?}"))),
        "string" => Ok(Value::Str(text)),
        "base64" => crate::base64::decode(&text)
            .map(Value::Bytes)
            .map_err(|e| WireError::parse(format!("invalid base64: {e}"))),
        "dateTime.iso8601" => DateTime::parse(&text)
            .map(Value::DateTime)
            .map_err(|e| WireError::parse(e.to_string())),
        "array" => {
            let data = typed
                .find("data")
                .ok_or_else(|| WireError::protocol("<array> without <data>"))?;
            let mut items = Vec::new();
            for child in data.find_all("value") {
                items.push(decode_value(child)?);
            }
            Ok(Value::Array(items))
        }
        "struct" => {
            let mut map = std::collections::BTreeMap::new();
            for member in typed.find_all("member") {
                let name = member
                    .find("name")
                    .ok_or_else(|| WireError::protocol("<member> without <name>"))?
                    .text_content();
                let value = member
                    .find("value")
                    .ok_or_else(|| WireError::protocol("<member> without <value>"))?;
                map.insert(name, decode_value(value)?);
            }
            Ok(Value::Struct(map))
        }
        other => Err(WireError::protocol(format!(
            "unknown XML-RPC type <{other}>"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let el = encode_value(&v);
        let doc = el.to_document();
        let parsed = xml::parse(&doc).unwrap();
        assert_eq!(decode_value(&parsed).unwrap(), v, "value {v:?}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip_value(Value::Nil);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        roundtrip_value(Value::Int(0));
        roundtrip_value(Value::Int(i64::from(i32::MAX)));
        roundtrip_value(Value::Int(i64::from(i32::MIN)));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Double(0.5));
        roundtrip_value(Value::Double(-123.456));
        roundtrip_value(Value::Double(3.0));
        roundtrip_value(Value::Str("".into()));
        roundtrip_value(Value::Str("hello <world> & \"friends\"".into()));
        roundtrip_value(Value::Bytes(vec![0, 1, 2, 255]));
        roundtrip_value(Value::DateTime(
            DateTime::new(2005, 6, 15, 1, 2, 3).unwrap(),
        ));
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip_value(Value::Array(vec![]));
        roundtrip_value(Value::array([
            Value::Int(1),
            Value::from("two"),
            Value::Nil,
        ]));
        roundtrip_value(Value::Struct(Default::default()));
        roundtrip_value(Value::structure([
            ("list", Value::array([Value::Bool(true)])),
            ("nested", Value::structure([("x", Value::Double(1.25))])),
        ]));
    }

    #[test]
    fn i4_vs_i8_selection() {
        let small = encode_value(&Value::Int(42)).to_document();
        assert!(small.contains("<i4>42</i4>"), "{small}");
        let big = encode_value(&Value::Int(5_000_000_000)).to_document();
        assert!(big.contains("<i8>5000000000</i8>"), "{big}");
    }

    #[test]
    fn double_has_no_exponent() {
        let doc = encode_value(&Value::Double(1e-9)).to_document();
        assert!(!doc.contains('e') || !doc.contains("e-"), "{doc}");
        let parsed = xml::parse(&doc).unwrap();
        let back = decode_value(&parsed).unwrap().as_double().unwrap();
        assert!((back - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn call_roundtrip() {
        let call = RpcCall::new(
            "file.read",
            vec![
                Value::from("/data/f.root"),
                Value::Int(0),
                Value::Int(65536),
            ],
        );
        let doc = encode_call(&call);
        let back = decode_call(&doc).unwrap();
        assert_eq!(back, call);
    }

    #[test]
    fn call_without_params() {
        let doc = "<?xml version=\"1.0\"?><methodCall><methodName>system.list_methods</methodName></methodCall>";
        let call = decode_call(doc).unwrap();
        assert_eq!(call.method, "system.list_methods");
        assert!(call.params.is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let ok = RpcResponse::Success(Value::array([Value::from("m1"), Value::from("m2")]));
        assert_eq!(decode_response(&encode_response(&ok)).unwrap(), ok);
        let fault = RpcResponse::Fault(Fault::new(4, "access denied"));
        assert_eq!(decode_response(&encode_response(&fault)).unwrap(), fault);
    }

    #[test]
    fn bare_text_value_is_string() {
        let doc =
            "<methodResponse><params><param><value>plain</value></param></params></methodResponse>";
        match decode_response(doc).unwrap() {
            RpcResponse::Success(Value::Str(s)) => assert_eq!(s, "plain"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The streaming decoder must accept (not fall back on) everything our
    /// own encoder emits — otherwise the fast path is dead code and the
    /// allocation win silently evaporates.
    #[test]
    fn fast_path_accepts_canonical_documents() {
        let calls = [
            RpcCall::new("system.list_methods", vec![]),
            RpcCall::new("echo.echo", vec![Value::Int(42)]),
            RpcCall::new(
                "file.read",
                vec![
                    Value::from("/data/f.root"),
                    Value::Int(0),
                    Value::Int(65536),
                ],
            ),
            RpcCall::new(
                "kitchen.sink",
                vec![
                    Value::Nil,
                    Value::Bool(true),
                    Value::Bool(false),
                    Value::Int(i64::MIN),
                    Value::Int(i64::MAX),
                    Value::Double(-123.456),
                    Value::Str(String::new()),
                    Value::Str("hello <world> & \"friends\"".into()),
                    Value::Bytes(vec![]),
                    Value::Bytes(vec![0, 1, 2, 255]),
                    Value::DateTime(DateTime::new(2005, 6, 15, 1, 2, 3).unwrap()),
                    Value::Array(vec![]),
                    Value::array([Value::Int(1), Value::from("two"), Value::Nil]),
                    Value::Struct(Default::default()),
                    Value::structure([
                        ("list", Value::array([Value::Bool(true)])),
                        ("nested", Value::structure([("x", Value::Double(1.25))])),
                    ]),
                ],
            ),
        ];
        for call in calls {
            let doc = encode_call(&call);
            let fast = fast::decode_call(&doc)
                .unwrap_or_else(|| panic!("fast path rejected canonical doc: {doc}"));
            assert_eq!(fast, call);
            assert_eq!(decode_call_dom(&doc).unwrap(), call);
        }
    }

    /// Whitespace between tags (pretty-printed clients) stays on the fast
    /// path; the result must match the DOM decoder exactly.
    #[test]
    fn fast_path_accepts_indented_documents() {
        let doc = "<?xml version=\"1.0\"?>\n<methodCall>\n  <methodName>echo.echo</methodName>\n  <params>\n    <param>\n      <value><i4>7</i4></value>\n    </param>\n    <param>\n      <value>  </value>\n    </param>\n  </params>\n</methodCall>\n";
        let fast = fast::decode_call(doc).expect("fast path");
        let dom = decode_call_dom(doc).unwrap();
        assert_eq!(fast, dom);
        assert_eq!(fast.params[0], Value::Int(7));
        // Bare whitespace inside <value> is a literal (untrimmed) string.
        assert_eq!(fast.params[1], Value::Str("  ".into()));
    }

    /// Off-profile constructs must fall back to the DOM decoder rather
    /// than being guessed at: the dispatcher still decodes them, but via
    /// [`decode_call_dom`].
    #[test]
    fn fast_path_falls_back_off_profile() {
        let off_profile = [
            // Comments and DOCTYPE in the prolog.
            "<!-- hi --><methodCall><methodName>m</methodName></methodCall>",
            // Attributes anywhere.
            "<methodCall x=\"1\"><methodName>m</methodName></methodCall>",
            "<methodCall><methodName>m</methodName><params><param><value><string a=\"b\">x</string></value></param></params></methodCall>",
            // CDATA sections.
            "<methodCall><methodName>m</methodName><params><param><value><string><![CDATA[x]]></string></value></param></params></methodCall>",
            // Struct member with <value> before <name>.
            "<methodCall><methodName>m</methodName><params><param><value><struct><member><value><i4>1</i4></value><name>k</name></member></struct></value></param></params></methodCall>",
            // Text mixed with a typed element inside <value>.
            "<methodCall><methodName>m</methodName><params><param><value>junk<i4>1</i4></value></param></params></methodCall>",
        ];
        for doc in off_profile {
            assert!(
                fast::decode_call(doc).is_none(),
                "fast path should defer to DOM for: {doc}"
            );
            // The dispatcher still handles it (DOM semantics).
            decode_call(doc).unwrap();
        }
        // Malformed documents: fast path defers so the DOM's error text
        // is what callers see.
        let malformed = [
            "<methodCall><methodName>m</methodName>",
            "<methodCall><methodName></methodName></methodCall>",
            "<methodCall><methodName>m</methodName><params><param><value><i4>NaN</i4></value></param></params></methodCall>",
        ];
        for doc in malformed {
            assert!(fast::decode_call(doc).is_none(), "{doc}");
            assert_eq!(
                decode_call(doc).is_err(),
                decode_call_dom(doc).is_err(),
                "{doc}"
            );
        }
    }

    #[test]
    fn int_spelled_int_accepted() {
        let doc = "<methodCall><methodName>m</methodName><params><param><value><int>7</int></value></param></params></methodCall>";
        assert_eq!(decode_call(doc).unwrap().params, vec![Value::Int(7)]);
    }

    #[test]
    fn boolean_lenient_forms() {
        for (text, expect) in [("1", true), ("true", true), ("0", false), ("false", false)] {
            let doc = format!(
                "<methodCall><methodName>m</methodName><params><param><value><boolean>{text}</boolean></value></param></params></methodCall>"
            );
            assert_eq!(decode_call(&doc).unwrap().params, vec![Value::Bool(expect)]);
        }
        let bad = "<methodCall><methodName>m</methodName><params><param><value><boolean>yes</boolean></value></param></params></methodCall>";
        assert!(decode_call(bad).is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_call("<methodCall/>").is_err()); // no methodName
        assert!(decode_call("<methodResponse/>").is_err()); // wrong root
        assert!(decode_response("<methodResponse/>").is_err()); // empty
        assert!(decode_response(
            "<methodResponse><params><param><value><i4>1</i4></value></param><param><value><i4>2</i4></value></param></params></methodResponse>"
        )
        .is_err()); // two params
        assert!(decode_call(
            "<methodCall><methodName>m</methodName><params><param></param></params></methodCall>"
        )
        .is_err()); // param without value
    }

    #[test]
    fn unknown_type_rejected() {
        let doc = "<methodCall><methodName>m</methodName><params><param><value><float>1</float></value></param></params></methodCall>";
        assert!(decode_call(doc).is_err());
    }

    #[test]
    fn fault_missing_code_rejected() {
        let doc = "<methodResponse><fault><value><struct><member><name>faultString</name><value>x</value></member></struct></value></fault></methodResponse>";
        assert!(decode_response(doc).is_err());
    }

    #[test]
    fn thirty_string_array_like_figure4() {
        // The exact workload of Figure 4: a >30-element string array.
        let methods: Vec<Value> = (0..32)
            .map(|i| Value::from(format!("module{i}.method{i}")))
            .collect();
        let resp = RpcResponse::Success(Value::Array(methods.clone()));
        let doc = encode_response(&resp);
        match decode_response(&doc).unwrap() {
            RpcResponse::Success(Value::Array(items)) => assert_eq!(items, methods),
            other => panic!("unexpected {other:?}"),
        }
    }
}
