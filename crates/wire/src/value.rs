//! The shared RPC value algebra.
//!
//! All three Clarens protocols (XML-RPC, SOAP subset, JSON-RPC) marshal the
//! same set of scalar and composite types; [`Value`] is the in-memory
//! representation the server and clients operate on. The variants mirror the
//! XML-RPC type system, which is the richest of the three on the wire
//! (it has explicit `base64` and `dateTime.iso8601` types; JSON maps those
//! to strings).

use std::collections::BTreeMap;
use std::fmt;

use crate::datetime::DateTime;

/// A dynamically-typed RPC value.
///
/// `Struct` uses a `BTreeMap` so that serialization is deterministic — this
/// matters for tests, on-disk persistence, and reproducible benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Explicit nil / null (XML-RPC `<nil/>` extension, JSON `null`).
    Nil,
    /// Boolean.
    Bool(bool),
    /// Integer. XML-RPC only guarantees `i4`, but real deployments (and the
    /// Clarens file service with 64-bit offsets) need `i8`; we encode as
    /// `<i4>` when it fits and `<i8>` otherwise.
    Int(i64),
    /// IEEE-754 double.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes (`<base64>` on the XML wire, base64 string in JSON).
    Bytes(Vec<u8>),
    /// Date-time (`dateTime.iso8601`).
    DateTime(DateTime),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// String-keyed mapping.
    Struct(BTreeMap<String, Value>),
}

impl Value {
    /// Build a struct value from `(key, value)` pairs.
    pub fn structure<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Struct(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array value.
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// A short name for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Str(_) => "string",
            Value::Bytes(_) => "base64",
            Value::DateTime(_) => "dateTime",
            Value::Array(_) => "array",
            Value::Struct(_) => "struct",
        }
    }

    /// Interpret as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as integer. Doubles with integral values are accepted
    /// because JSON clients cannot distinguish `2` from `2.0`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) if d.fract() == 0.0 && d.abs() < 9.007_199_254_740_992e15 => {
                Some(*d as i64)
            }
            _ => None,
        }
    }

    /// Interpret as double (ints widen).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Interpret as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as bytes. Strings are *not* coerced; use
    /// [`Value::coerce_bytes`] for the lenient JSON path.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Bytes, with the JSON compatibility coercion: a string is decoded as
    /// base64 (JSON has no binary type, so Clarens JSON clients send base64
    /// strings where XML-RPC clients send `<base64>` elements).
    pub fn coerce_bytes(&self) -> Option<Vec<u8>> {
        match self {
            Value::Bytes(b) => Some(b.clone()),
            Value::Str(s) => crate::base64::decode(s).ok(),
            _ => None,
        }
    }

    /// Interpret as array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Interpret as struct map.
    pub fn as_struct(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Struct(m) => Some(m),
            _ => None,
        }
    }

    /// Struct field access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_struct().and_then(|m| m.get(key))
    }

    /// True if the value is `Nil`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }
}

impl fmt::Display for Value {
    /// Human-readable rendering (JSON-ish); used in logs and the portal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}
impl From<DateTime> for Value {
    fn from(dt: DateTime) -> Self {
        Value::DateTime(dt)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Nil,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(Value::from(None::<i64>), Value::Nil);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
    }

    #[test]
    fn accessors() {
        let v = Value::structure([("a", Value::Int(1)), ("b", Value::from("x"))]);
        assert_eq!(v.get("a").unwrap().as_int(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").is_none());
        assert_eq!(v.type_name(), "struct");
        assert!(Value::Nil.is_nil());
    }

    #[test]
    fn int_double_coercion() {
        assert_eq!(Value::Double(4.0).as_int(), Some(4));
        assert_eq!(Value::Double(4.5).as_int(), None);
        assert_eq!(Value::Int(4).as_double(), Some(4.0));
        // Too large to be exactly representable: refuse.
        assert_eq!(Value::Double(1e16).as_int(), None);
    }

    #[test]
    fn bytes_coercion_from_base64_string() {
        let v = Value::Str(crate::base64::encode(b"hello"));
        assert_eq!(v.coerce_bytes().unwrap(), b"hello");
        assert_eq!(v.as_bytes(), None);
        assert_eq!(Value::Bytes(vec![1, 2]).coerce_bytes().unwrap(), vec![1, 2]);
    }

    #[test]
    fn display_is_json() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("a\"b").to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn struct_keys_sorted_deterministically() {
        let v = Value::structure([("z", Value::Int(1)), ("a", Value::Int(2))]);
        let keys: Vec<_> = v.as_struct().unwrap().keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "z".to_string()]);
    }
}
