//! `clarens-binary` — the compact length-prefixed binary RPC protocol.
//!
//! The Clarens papers standardize on XML-RPC/SOAP for interoperability, but
//! XML envelope cost dominates machine-to-machine grid traffic (the JClarens
//! follow-up measures exactly this). This module adds a fourth wire protocol
//! for peers that negotiate it: a length-prefixed frame carrying a
//! CBOR-encoded (RFC 8949 subset) call or response body.
//!
//! ## Frame format (DESIGN.md §13)
//!
//! ```text
//! +----------------+------------------+------------------------+
//! | u32 BE length  | version/kind (1) | CBOR body (length - 1) |
//! +----------------+------------------+------------------------+
//! ```
//!
//! * `length` counts everything after itself (version byte + body), so a
//!   reader can frame-delimit without parsing CBOR.
//! * version/kind byte: high nibble = protocol version (currently
//!   [`VERSION`] = 1), low nibble = frame kind (0 = call, 1 = response).
//!   Unknown versions or kinds are rejected, never guessed at.
//!
//! ## Body encoding
//!
//! The [`Value`] algebra maps onto a deterministic CBOR subset:
//!
//! | `Value`       | CBOR                                           |
//! |---------------|------------------------------------------------|
//! | `Nil`         | null (`0xf6`)                                  |
//! | `Bool`        | false/true (`0xf4`/`0xf5`)                     |
//! | `Int`         | major 0 (unsigned) / major 1 (negative)        |
//! | `Double`      | float64 (`0xfb`)                               |
//! | `Str`         | major 3 text string                            |
//! | `Bytes`       | major 2 byte string                            |
//! | `DateTime`    | tag 0 + compact ISO 8601 text                  |
//! | `Array`       | major 4 array                                  |
//! | `Struct`      | major 5 map with text keys (BTreeMap order)    |
//! |---------------|------------------------------------------------|
//!
//! Call body: `[method: text, params: array, id: value-or-null]`.
//! Response body: `[0, result]` on success, `[1, code, message]` on fault.
//! (Binary connections are strictly request-response, so no id echo is
//! needed; the slot exists for symmetry with JSON-RPC clients.)
//!
//! The encoder always emits minimal-length CBOR heads (canonical form); the
//! decoder additionally accepts non-minimal heads and float32, but rejects
//! indefinite lengths, unknown tags, and anything that would over-read the
//! frame — claimed lengths are validated against the bytes actually present
//! before any allocation, so a hostile 4 GiB length prefix costs nothing.
//!
//! ## Zero-copy decode
//!
//! [`decode_call_view`] is the server's hot path: it borrows the method name
//! (and, transitively, every scalar head) straight from the request buffer —
//! no DOM, no intermediate tree, and no allocation for the method string.
//! Only composite params allocate, proportional to their size.

use std::collections::BTreeMap;

use crate::datetime::DateTime;
use crate::fault::{Fault, WireError};
use crate::value::Value;
use crate::{RpcCall, RpcResponse};

/// MIME type negotiated for the binary protocol.
pub const CONTENT_TYPE: &str = "application/x-clarens-cbor";

/// Current frame format version (high nibble of the version/kind byte).
pub const VERSION: u8 = 1;

/// Frame kind: RPC call.
const KIND_CALL: u8 = 0;
/// Frame kind: RPC response.
const KIND_RESPONSE: u8 = 1;

/// Maximum nesting depth the decoder will follow. Deep enough for any real
/// payload, shallow enough that hostile nesting cannot overflow the stack.
const MAX_DEPTH: u32 = 64;

fn frame_byte(kind: u8) -> u8 {
    (VERSION << 4) | kind
}

/// Cheap structural test: does `body` look like a clarens-binary frame?
/// Used by [`crate::Protocol::sniff`]; checks the length prefix and version
/// nibble only, so it never mis-fires on XML/JSON payloads (which cannot
/// start with a matching big-endian length).
pub fn is_frame(body: &[u8]) -> bool {
    body.len() >= 5
        && u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize == body.len() - 4
        && body[4] >> 4 == VERSION
        && (body[4] & 0x0f) <= KIND_RESPONSE
}

/// Validate the frame envelope and return the CBOR body.
fn unwrap_frame(body: &[u8], want_kind: u8) -> Result<&[u8], WireError> {
    if body.len() < 5 {
        return Err(WireError::parse("binary frame truncated (< 5 bytes)"));
    }
    let declared = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
    if declared != body.len() - 4 {
        return Err(WireError::parse(format!(
            "binary frame length mismatch: header says {declared}, have {}",
            body.len() - 4
        )));
    }
    let vk = body[4];
    if vk >> 4 != VERSION {
        return Err(WireError::parse(format!(
            "unsupported binary protocol version {}",
            vk >> 4
        )));
    }
    let kind = vk & 0x0f;
    if kind != want_kind {
        return Err(WireError::parse(format!(
            "unexpected binary frame kind {kind} (wanted {want_kind})"
        )));
    }
    Ok(&body[5..])
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append a CBOR head (major type + argument) in minimal-length form.
fn head_into(major: u8, arg: u64, out: &mut Vec<u8>) {
    let m = major << 5;
    if arg < 24 {
        out.push(m | arg as u8);
    } else if arg <= u8::MAX as u64 {
        out.push(m | 24);
        out.push(arg as u8);
    } else if arg <= u16::MAX as u64 {
        out.push(m | 25);
        out.extend_from_slice(&(arg as u16).to_be_bytes());
    } else if arg <= u32::MAX as u64 {
        out.push(m | 26);
        out.extend_from_slice(&(arg as u32).to_be_bytes());
    } else {
        out.push(m | 27);
        out.extend_from_slice(&arg.to_be_bytes());
    }
}

fn text_into(s: &str, out: &mut Vec<u8>) {
    head_into(3, s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

/// Append one [`Value`] in the deterministic CBOR subset.
pub fn encode_value_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Nil => out.push(0xf6),
        Value::Bool(false) => out.push(0xf4),
        Value::Bool(true) => out.push(0xf5),
        Value::Int(i) => {
            if *i >= 0 {
                head_into(0, *i as u64, out);
            } else {
                // CBOR major 1 encodes -1 - n; i64::MIN maps to u64 cleanly.
                head_into(1, !(*i) as u64, out);
            }
        }
        Value::Double(d) => {
            out.push(0xfb);
            out.extend_from_slice(&d.to_bits().to_be_bytes());
        }
        Value::Str(s) => text_into(s, out),
        Value::Bytes(b) => {
            head_into(2, b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::DateTime(dt) => {
            out.push(0xc0); // tag 0: standard date-time text
            text_into(&dt.to_string(), out);
        }
        Value::Array(items) => {
            head_into(4, items.len() as u64, out);
            for item in items {
                encode_value_into(item, out);
            }
        }
        Value::Struct(map) => {
            head_into(5, map.len() as u64, out);
            for (k, v) in map {
                text_into(k, out);
                encode_value_into(v, out);
            }
        }
    }
}

/// Reserve a frame header at the current end of `out`; returns the patch
/// position for [`finish_frame`].
fn start_frame(kind: u8, out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0, frame_byte(kind)]);
    at
}

/// Back-patch the u32 length once the body is written.
fn finish_frame(at: usize, out: &mut [u8]) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_be_bytes());
}

/// Encode a call frame, appending to `out` (streaming twin of
/// [`encode_call`]; callers pass a recycled buffer to stay allocation-free).
pub fn encode_call_into(call: &RpcCall, out: &mut Vec<u8>) {
    let at = start_frame(KIND_CALL, out);
    head_into(4, 3, out); // [method, params, id]
    text_into(&call.method, out);
    head_into(4, call.params.len() as u64, out);
    for p in &call.params {
        encode_value_into(p, out);
    }
    match &call.id {
        Some(id) => encode_value_into(id, out),
        None => out.push(0xf6),
    }
    finish_frame(at, out);
}

/// Encode a call frame into a fresh buffer.
pub fn encode_call(call: &RpcCall) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_call_into(call, &mut out);
    out
}

/// Encode a response frame, appending to `out`.
pub fn encode_response_into(response: &RpcResponse, out: &mut Vec<u8>) {
    let at = start_frame(KIND_RESPONSE, out);
    match response {
        RpcResponse::Success(value) => {
            head_into(4, 2, out); // [0, result]
            head_into(0, 0, out);
            encode_value_into(value, out);
        }
        RpcResponse::Fault(fault) => {
            head_into(4, 3, out); // [1, code, message]
            head_into(0, 1, out);
            encode_value_into(&Value::Int(fault.code), out);
            text_into(&fault.message, out);
        }
    }
    finish_frame(at, out);
}

/// Encode a response frame into a fresh buffer.
pub fn encode_response(response: &RpcResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_response_into(response, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A decoded call that borrows the method name straight from the request
/// buffer — the server dispatches on `method` without ever owning it.
#[derive(Debug, PartialEq)]
pub struct CallView<'a> {
    /// Dotted method name, borrowed from the frame bytes.
    pub method: &'a str,
    /// Positional parameters (owned; scalars are head-copies, composites
    /// allocate proportional to their size).
    pub params: Vec<Value>,
    /// Optional request id (echoed by JSON-RPC-style clients; unused here).
    pub id: Option<Value>,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| WireError::parse("CBOR truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::parse("CBOR truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a CBOR head: `(major, info, argument)`. For major 7 with info
    /// 25/26/27 the "argument" is the raw float bit pattern — callers must
    /// dispatch on `info` to tell simple values from floats.
    fn head(&mut self) -> Result<(u8, u8, u64), WireError> {
        let initial = self.byte()?;
        let major = initial >> 5;
        let info = initial & 0x1f;
        let arg = match info {
            0..=23 => info as u64,
            24 => self.byte()? as u64,
            25 => u16::from_be_bytes(self.take(2)?.try_into().unwrap()) as u64,
            26 => u32::from_be_bytes(self.take(4)?.try_into().unwrap()) as u64,
            27 => u64::from_be_bytes(self.take(8)?.try_into().unwrap()),
            _ => {
                return Err(WireError::parse(
                    "indefinite-length / reserved CBOR head not supported",
                ))
            }
        };
        Ok((major, info, arg))
    }

    /// Validate a claimed payload/element length against the bytes left in
    /// the frame (each element costs at least one byte), so hostile length
    /// prefixes fail before any allocation happens.
    fn bounded_len(&self, arg: u64) -> Result<usize, WireError> {
        if arg > self.remaining() as u64 {
            return Err(WireError::parse(
                "CBOR length exceeds remaining frame bytes",
            ));
        }
        Ok(arg as usize)
    }

    fn text(&mut self, len: u64) -> Result<&'a str, WireError> {
        let n = self.bounded_len(len)?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| WireError::parse("CBOR text string is not UTF-8"))
    }

    /// Decode one value. `depth` counts nesting to bound recursion.
    fn value(&mut self, depth: u32) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::parse("CBOR nesting too deep"));
        }
        let (major, info, arg) = self.head()?;
        match major {
            0 => {
                if arg > i64::MAX as u64 {
                    return Err(WireError::parse("CBOR integer out of i64 range"));
                }
                Ok(Value::Int(arg as i64))
            }
            1 => {
                if arg > i64::MAX as u64 {
                    return Err(WireError::parse("CBOR integer out of i64 range"));
                }
                Ok(Value::Int(-1 - arg as i64))
            }
            2 => {
                let n = self.bounded_len(arg)?;
                Ok(Value::Bytes(self.take(n)?.to_vec()))
            }
            3 => Ok(Value::Str(self.text(arg)?.to_string())),
            4 => {
                let n = self.bounded_len(arg)?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            5 => {
                let n = self.bounded_len(arg)?;
                let mut map = BTreeMap::new();
                for _ in 0..n {
                    let (kmajor, _, karg) = self.head()?;
                    if kmajor != 3 {
                        return Err(WireError::parse("CBOR map key must be a text string"));
                    }
                    let key = self.text(karg)?.to_string();
                    let val = self.value(depth + 1)?;
                    map.insert(key, val);
                }
                Ok(Value::Struct(map))
            }
            6 => {
                if arg != 0 {
                    return Err(WireError::parse(format!("unsupported CBOR tag {arg}")));
                }
                let (tmajor, _, targ) = self.head()?;
                if tmajor != 3 {
                    return Err(WireError::parse("CBOR tag 0 must wrap a text string"));
                }
                let text = self.text(targ)?;
                let dt = DateTime::parse(text)
                    .map_err(|e| WireError::parse(format!("CBOR tag 0: {e}")))?;
                Ok(Value::DateTime(dt))
            }
            7 => match info {
                20 => Ok(Value::Bool(false)),
                21 => Ok(Value::Bool(true)),
                22 => Ok(Value::Nil),
                // For 26/27 `arg` carries the raw float bit pattern.
                26 => Ok(Value::Double(f32::from_bits(arg as u32) as f64)),
                27 => Ok(Value::Double(f64::from_bits(arg))),
                _ => Err(WireError::parse(format!(
                    "unsupported CBOR simple value (info {info})"
                ))),
            },
            _ => unreachable!("major type is 3 bits"),
        }
    }
}

/// Decode a call frame into a borrowed [`CallView`]. This is the server's
/// zero-copy hot path; see the module docs.
pub fn decode_call_view(body: &[u8]) -> Result<CallView<'_>, WireError> {
    let cbor = unwrap_frame(body, KIND_CALL)?;
    let mut r = Reader::new(cbor);
    let (major, _, arg) = r.head()?;
    if major != 4 || arg != 3 {
        return Err(WireError::parse(
            "binary call body must be a 3-element array",
        ));
    }
    let (mmajor, _, marg) = r.head()?;
    if mmajor != 3 {
        return Err(WireError::parse("binary call method must be a text string"));
    }
    let method = r.text(marg)?;
    let (pmajor, _, parg) = r.head()?;
    if pmajor != 4 {
        return Err(WireError::parse("binary call params must be an array"));
    }
    let n = r.bounded_len(parg)?;
    let mut params = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        params.push(r.value(0)?);
    }
    let id = match r.value(0)? {
        Value::Nil => None,
        other => Some(other),
    };
    if r.remaining() != 0 {
        return Err(WireError::parse("trailing bytes after binary call body"));
    }
    Ok(CallView { method, params, id })
}

/// Decode a call frame into an owned [`RpcCall`] (client/test convenience;
/// the server uses [`decode_call_view`]).
pub fn decode_call(body: &[u8]) -> Result<RpcCall, WireError> {
    let view = decode_call_view(body)?;
    Ok(RpcCall {
        method: view.method.to_string(),
        params: view.params,
        id: view.id,
    })
}

/// Decode a response frame.
pub fn decode_response(body: &[u8]) -> Result<RpcResponse, WireError> {
    let cbor = unwrap_frame(body, KIND_RESPONSE)?;
    let mut r = Reader::new(cbor);
    let (major, _, arg) = r.head()?;
    if major != 4 {
        return Err(WireError::parse("binary response body must be an array"));
    }
    let (smajor, _, status) = r.head()?;
    if smajor != 0 {
        return Err(WireError::parse(
            "binary response status must be an unsigned int",
        ));
    }
    let response = match (status, arg) {
        (0, 2) => RpcResponse::Success(r.value(0)?),
        (1, 3) => {
            let code = match r.value(0)? {
                Value::Int(code) => code,
                other => {
                    return Err(WireError::parse(format!(
                        "binary fault code must be an int, got {}",
                        other.type_name()
                    )))
                }
            };
            let (mmajor, _, marg) = r.head()?;
            if mmajor != 3 {
                return Err(WireError::parse("binary fault message must be text"));
            }
            let message = r.text(marg)?.to_string();
            RpcResponse::Fault(Fault::new(code, message))
        }
        _ => {
            return Err(WireError::parse(format!(
                "binary response status/arity mismatch: status {status}, {arg} elements"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::parse(
            "trailing bytes after binary response body",
        ));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Nil,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(23),
            Value::Int(24),
            Value::Int(255),
            Value::Int(256),
            Value::Int(65535),
            Value::Int(65536),
            Value::Int(i64::MAX),
            Value::Int(-1),
            Value::Int(-24),
            Value::Int(-25),
            Value::Int(i64::MIN),
            Value::Double(0.0),
            Value::Double(-2.5),
            Value::Double(1.0e-9),
            Value::Str(String::new()),
            Value::Str("héllo wörld".into()),
            Value::Bytes(vec![]),
            Value::Bytes((0..=255u8).collect()),
            Value::DateTime(DateTime::new(2005, 6, 15, 14, 8, 55).unwrap()),
            Value::array([Value::Int(1), Value::from("two"), Value::Nil]),
            Value::structure([
                ("name", Value::from("pythia.root")),
                ("size", Value::Int(1 << 40)),
                (
                    "nested",
                    Value::array([Value::structure([("k", Value::Bool(true))])]),
                ),
            ]),
        ]
    }

    #[test]
    fn call_roundtrip() {
        for value in sample_values() {
            let call = RpcCall {
                method: "echo.echo".into(),
                params: vec![value.clone(), Value::Int(7)],
                id: Some(Value::Int(42)),
            };
            let bytes = encode_call(&call);
            assert!(is_frame(&bytes));
            let decoded = decode_call(&bytes).unwrap();
            assert_eq!(decoded, call, "value {value:?}");
        }
    }

    #[test]
    fn call_view_borrows_method() {
        let bytes = encode_call(&RpcCall::new("file.ls", vec![Value::from("/data")]));
        let view = decode_call_view(&bytes).unwrap();
        assert_eq!(view.method, "file.ls");
        assert_eq!(view.id, None);
        // The method str must point inside the frame buffer (zero-copy).
        let buf_range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(buf_range.contains(&(view.method.as_ptr() as usize)));
    }

    #[test]
    fn response_roundtrip() {
        for value in sample_values() {
            let resp = RpcResponse::Success(value);
            let bytes = encode_response(&resp);
            assert!(is_frame(&bytes));
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
        let fault = RpcResponse::Fault(Fault::new(4, "access denied: file.write"));
        let bytes = encode_response(&fault);
        assert_eq!(decode_response(&bytes).unwrap(), fault);
    }

    #[test]
    fn encode_into_appends() {
        let mut out = b"HTTP-HEADERS".to_vec();
        let at = out.len();
        encode_response_into(&RpcResponse::Success(Value::Int(1)), &mut out);
        assert_eq!(&out[..at], b"HTTP-HEADERS");
        assert!(is_frame(&out[at..]));
        assert_eq!(
            decode_response(&out[at..]).unwrap(),
            RpcResponse::Success(Value::Int(1))
        );
    }

    #[test]
    fn rejects_bad_frames() {
        // Truncated.
        assert!(decode_call(b"\x00\x00").is_err());
        // Length mismatch.
        assert!(decode_call(b"\x00\x00\x00\xff\x10\x83").is_err());
        // Wrong version nibble.
        let mut bytes = encode_call(&RpcCall::new("a.b", vec![]));
        bytes[4] = 0x20;
        assert!(decode_call(&bytes).is_err());
        // Response frame fed to the call decoder.
        let resp = encode_response(&RpcResponse::Success(Value::Nil));
        assert!(decode_call(&resp).is_err());
        // Trailing garbage inside the frame (length fixed up to match).
        let mut call = encode_call(&RpcCall::new("a.b", vec![]));
        call.push(0x00);
        let len = (call.len() - 4) as u32;
        call[0..4].copy_from_slice(&len.to_be_bytes());
        assert!(decode_call(&call).is_err());
    }

    #[test]
    fn rejects_hostile_lengths() {
        // A text string claiming 4 GiB with 3 bytes present must fail before
        // allocating anything.
        let mut body = vec![frame_byte(KIND_CALL)];
        body.push(0x83); // array(3)
        body.extend_from_slice(&[0x7a, 0xff, 0xff, 0xff, 0xff]); // text(4294967295)
        body.extend_from_slice(b"abc");
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body);
        assert!(decode_call(&frame).is_err());

        // An array claiming u64::MAX elements.
        let mut body = vec![frame_byte(KIND_CALL)];
        body.push(0x83);
        body.push(0x63); // text(3) "a.b"
        body.extend_from_slice(b"a.b");
        body.push(0x9b); // array, 8-byte length
        body.extend_from_slice(&u64::MAX.to_be_bytes());
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body);
        assert!(decode_call(&frame).is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        // 100 nested single-element arrays around a param.
        let mut body = vec![frame_byte(KIND_CALL), 0x83, 0x63];
        body.extend_from_slice(b"a.b");
        body.push(0x81); // params: array(1)
        body.extend(std::iter::repeat_n(0x81, 100));
        body.push(0x01);
        body.push(0xf6); // id: null
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body);
        let err = decode_call(&frame).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn accepts_non_minimal_heads() {
        // int 1 encoded as a two-byte head (0x18 0x01) still decodes.
        let mut body = vec![frame_byte(KIND_CALL), 0x83, 0x63];
        body.extend_from_slice(b"a.b");
        body.push(0x81);
        body.extend_from_slice(&[0x18, 0x01]);
        body.push(0xf6);
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body);
        let call = decode_call(&frame).unwrap();
        assert_eq!(call.params, vec![Value::Int(1)]);
    }

    #[test]
    fn frame_wire_shape() {
        let bytes = encode_call(&RpcCall::new("a.b", vec![]));
        // u32 length covers version byte + body.
        let len = u32::from_be_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(bytes[4], 0x10); // version 1, kind call
        let resp = encode_response(&RpcResponse::Success(Value::Nil));
        assert_eq!(resp[4], 0x11); // version 1, kind response
    }
}
