//! Base64 (RFC 4648, standard alphabet, `=` padding).
//!
//! XML-RPC's `<base64>` element and the JSON mapping of binary values both
//! need this. Decoding is strict about the alphabet but tolerant of ASCII
//! whitespace, which XML pretty-printers routinely inject inside element
//! text.

/// Encoding alphabet.
const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Build the reverse lookup table at compile time. 0xFF marks invalid bytes.
const fn build_reverse() -> [u8; 256] {
    let mut table = [0xFFu8; 256];
    let mut i = 0;
    while i < 64 {
        table[ALPHABET[i] as usize] = i as u8;
        i += 1;
    }
    table
}

const REVERSE: [u8; 256] = build_reverse();

/// Encode bytes as base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = Vec::with_capacity(data.len().div_ceil(3) * 4);
    encode_into(data, &mut out);
    // The alphabet (plus '=') is pure ASCII.
    String::from_utf8(out).expect("base64 output is ASCII")
}

/// Encode bytes as base64 with padding, appending to `out`.
///
/// This is the streaming form used by the allocation-lean response encoders:
/// `Value::Bytes` payloads go straight from the value into the response
/// buffer without an intermediate `String`.
pub fn encode_into(data: &[u8], out: &mut Vec<u8>) {
    out.reserve(data.len().div_ceil(3) * 4);
    let mut chunks = data.chunks_exact(3);
    for chunk in &mut chunks {
        let n = ((chunk[0] as u32) << 16) | ((chunk[1] as u32) << 8) | chunk[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63]);
        out.push(ALPHABET[(n >> 12) as usize & 63]);
        out.push(ALPHABET[(n >> 6) as usize & 63]);
        out.push(ALPHABET[n as usize & 63]);
    }
    match chunks.remainder() {
        [] => {}
        [a] => {
            let n = (*a as u32) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 63]);
            out.push(ALPHABET[(n >> 12) as usize & 63]);
            out.extend_from_slice(b"==");
        }
        [a, b] => {
            let n = ((*a as u32) << 16) | ((*b as u32) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 63]);
            out.push(ALPHABET[(n >> 12) as usize & 63]);
            out.push(ALPHABET[(n >> 6) as usize & 63]);
            out.push(b'=');
        }
        _ => unreachable!("chunks_exact(3) remainder has at most 2 bytes"),
    }
}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte outside the alphabet (and not whitespace/padding) appeared.
    InvalidByte(u8),
    /// Input length (after whitespace removal) is not a multiple of 4, or
    /// padding is misplaced.
    InvalidLength,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidByte(b) => write!(f, "invalid base64 byte 0x{b:02x}"),
            Base64Error::InvalidLength => write!(f, "invalid base64 length or padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

/// Decode base64, skipping ASCII whitespace. Padding is required.
pub fn decode(text: &str) -> Result<Vec<u8>, Base64Error> {
    // Gather the significant characters (filtering whitespace).
    let mut sig = Vec::with_capacity(text.len());
    for &b in text.as_bytes() {
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => continue,
            _ => sig.push(b),
        }
    }
    if sig.len() % 4 != 0 {
        return Err(Base64Error::InvalidLength);
    }
    let mut out = Vec::with_capacity(sig.len() / 4 * 3);
    for (i, quad) in sig.chunks_exact(4).enumerate() {
        let last = (i + 1) * 4 == sig.len();
        let pad = quad.iter().filter(|&&b| b == b'=').count();
        // Padding may only be the final 1-2 characters of the final quad.
        let pad_ok = match pad {
            0 => true,
            1 => last && quad[3] == b'=',
            2 => last && quad[2] == b'=' && quad[3] == b'=',
            _ => false,
        };
        if !pad_ok {
            return Err(Base64Error::InvalidLength);
        }
        let mut n: u32 = 0;
        for &b in &quad[..4 - pad] {
            let v = REVERSE[b as usize];
            if v == 0xFF {
                return Err(Base64Error::InvalidByte(b));
            }
            n = (n << 6) | v as u32;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let vectors: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in vectors {
            assert_eq!(encode(plain), *enc);
            assert_eq!(decode(enc).unwrap(), *plain);
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zm9v Ym Fy \r\n").unwrap(), b"foobar");
    }

    #[test]
    fn bad_length_rejected() {
        assert_eq!(decode("Zm9"), Err(Base64Error::InvalidLength));
        assert_eq!(decode("Z==="), Err(Base64Error::InvalidLength));
        // Padding in a non-final quad.
        assert_eq!(decode("Zg==Zm9v"), Err(Base64Error::InvalidLength));
    }

    #[test]
    fn bad_bytes_rejected() {
        assert_eq!(decode("Zm9%"), Err(Base64Error::InvalidByte(b'%')));
        assert_eq!(decode("Zm9v!A=="), Err(Base64Error::InvalidByte(b'!')));
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            Base64Error::InvalidByte(0x25).to_string(),
            "invalid base64 byte 0x25"
        );
        assert!(Base64Error::InvalidLength.to_string().contains("length"));
    }
}
