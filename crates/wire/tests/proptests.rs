//! Property-based round-trip tests for the wire codecs.
//!
//! Strategy: generate arbitrary [`Value`] trees and assert that every
//! protocol encoder/decoder pair is the identity on them, and that the
//! byte-level codecs (base64, percent) round-trip arbitrary byte strings.

use proptest::prelude::*;

use clarens_wire::datetime::DateTime;
use clarens_wire::{base64, json, percent, Protocol, RpcCall, RpcResponse, Value};

/// Strategy for strings that are valid in all our codecs (XML 1.0 cannot
/// carry arbitrary control characters even escaped — the parser rejects
/// NUL — so keep to printable + common whitespace; coverage for control
/// characters is in the unit tests).
fn wire_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range(' ', '~'),
            Just('\n'),
            Just('\t'),
            proptest::char::range('¡', 'ÿ'),
            proptest::char::range('А', 'я'), // Cyrillic block exercises multibyte UTF-8
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn datetime_strategy() -> impl Strategy<Value = DateTime> {
    (1970i32..2100, 1u8..=12, 1u8..=28, 0u8..24, 0u8..60, 0u8..60)
        .prop_map(|(y, mo, d, h, mi, s)| DateTime::new(y, mo, d, h, mi, s).unwrap())
}

/// Doubles that survive text round-trips exactly (finite, no signed zero
/// ambiguity concerns for equality).
fn wire_double() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1e12f64..1e12).prop_filter("finite", |d| d.is_finite()),
        Just(0.0),
        Just(-2.5),
        Just(1.0e-9),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        wire_double().prop_map(Value::Double),
        wire_string().prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        datetime_strategy().prop_map(Value::DateTime),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::btree_map(wire_string(), inner, 0..4).prop_map(Value::Struct),
        ]
    })
}

/// JSON cannot represent Bytes/DateTime distinctly; restrict to the JSON
/// image of the algebra for the JSON round-trip test.
fn json_value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        wire_double().prop_map(Value::Double),
        wire_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::btree_map(wire_string(), inner, 0..4).prop_map(Value::Struct),
        ]
    })
}

fn method_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}(\\.[a-z][a-z0-9_]{0,8}){0,2}"
}

proptest! {
    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = base64::encode(&data);
        prop_assert_eq!(base64::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn percent_roundtrip(s in wire_string()) {
        prop_assert_eq!(percent::decode_str(&percent::encode(&s)), s);
    }

    #[test]
    fn json_roundtrip(v in json_value_strategy()) {
        let text = json::to_string(&v);
        prop_assert_eq!(json::parse(&text).unwrap(), v);
    }

    #[test]
    fn json_pretty_roundtrip(v in json_value_strategy()) {
        let text = json::to_string_pretty(&v);
        prop_assert_eq!(json::parse(&text).unwrap(), v);
    }

    #[test]
    fn xmlrpc_call_roundtrip(
        method in method_name(),
        params in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let call = RpcCall::new(method, params);
        let doc = clarens_wire::xmlrpc::encode_call(&call);
        prop_assert_eq!(clarens_wire::xmlrpc::decode_call(&doc).unwrap(), call);
    }

    /// The streaming call decoder (dispatcher fast path) and the DOM
    /// reference decoder must agree on every document our encoder emits.
    #[test]
    fn xmlrpc_fast_and_dom_call_decoders_agree(
        method in method_name(),
        params in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let call = RpcCall::new(method, params);
        let doc = clarens_wire::xmlrpc::encode_call(&call);
        prop_assert_eq!(
            clarens_wire::xmlrpc::decode_call(&doc).unwrap(),
            clarens_wire::xmlrpc::decode_call_dom(&doc).unwrap()
        );
    }

    #[test]
    fn xmlrpc_response_roundtrip(v in value_strategy()) {
        let resp = RpcResponse::Success(v);
        let doc = clarens_wire::xmlrpc::encode_response(&resp);
        prop_assert_eq!(clarens_wire::xmlrpc::decode_response(&doc).unwrap(), resp);
    }

    #[test]
    fn soap_call_roundtrip(
        method in method_name(),
        params in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let call = RpcCall::new(method, params);
        let doc = clarens_wire::soap::encode_call(&call);
        prop_assert_eq!(clarens_wire::soap::decode_call(&doc).unwrap(), call);
    }

    #[test]
    fn jsonrpc_call_roundtrip(
        method in method_name(),
        params in proptest::collection::vec(json_value_strategy(), 0..4),
    ) {
        let call = RpcCall { method, params, id: Some(Value::Int(3)) };
        let text = clarens_wire::jsonrpc::encode_call(&call);
        prop_assert_eq!(clarens_wire::jsonrpc::decode_call(&text).unwrap(), call);
    }

    #[test]
    fn protocol_generic_roundtrip(
        method in method_name(),
        params in proptest::collection::vec(json_value_strategy(), 0..3),
    ) {
        // The JSON-compatible subset must round-trip through *every* protocol
        // and be correctly sniffed.
        let call = RpcCall { method, params, id: Some(Value::Int(1)) };
        for proto in [
            Protocol::XmlRpc,
            Protocol::Soap,
            Protocol::JsonRpc,
            Protocol::Binary,
        ] {
            let bytes = clarens_wire::encode_call(proto, &call);
            prop_assert_eq!(Protocol::sniff(&bytes), Some(proto));
            let back = clarens_wire::decode_call(proto, &bytes).unwrap();
            prop_assert_eq!(&back.method, &call.method);
            prop_assert_eq!(&back.params, &call.params);
        }
    }

    #[test]
    fn binary_call_roundtrip(
        method in method_name(),
        params in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let call = RpcCall::new(method, params);
        let bytes = clarens_wire::binary::encode_call(&call);
        prop_assert_eq!(Protocol::sniff(&bytes), Some(Protocol::Binary));
        prop_assert_eq!(clarens_wire::binary::decode_call(&bytes).unwrap(), call);
        // The zero-copy view agrees with the owned decode.
        let view = clarens_wire::binary::decode_call_view(&bytes).unwrap();
        prop_assert_eq!(view.method, call.method.as_str());
        prop_assert_eq!(&view.params, &call.params);
    }

    /// Value-model equivalence against the XML-RPC DOM: the same `Value`
    /// pushed through the binary codec and through the DOM reference codec
    /// must come back as the same `Value` — the binary protocol is a
    /// different wire image of the *same* algebra, not a dialect.
    #[test]
    fn binary_response_equivalent_to_xmlrpc_dom(v in value_strategy()) {
        let resp = RpcResponse::Success(v);
        let bin = clarens_wire::binary::encode_response(&resp);
        let via_binary = clarens_wire::binary::decode_response(&bin).unwrap();
        let xml = clarens_wire::xmlrpc::encode_response(&resp);
        let via_dom = clarens_wire::xmlrpc::decode_response(&xml).unwrap();
        prop_assert_eq!(&via_binary, &via_dom);
        prop_assert_eq!(&via_binary, &resp);
    }

    #[test]
    fn binary_call_equivalent_to_xmlrpc_dom(
        method in method_name(),
        params in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let call = RpcCall::new(method, params);
        let via_binary =
            clarens_wire::binary::decode_call(&clarens_wire::binary::encode_call(&call)).unwrap();
        let via_dom = clarens_wire::xmlrpc::decode_call_dom(
            &clarens_wire::xmlrpc::encode_call(&call),
        ).unwrap();
        prop_assert_eq!(via_binary, via_dom);
    }

    #[test]
    fn binary_fault_roundtrip(code in -1000i64..1000, message in wire_string()) {
        let resp = RpcResponse::Fault(clarens_wire::Fault::new(code, message));
        let bytes = clarens_wire::binary::encode_response(&resp);
        prop_assert_eq!(clarens_wire::binary::decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn binary_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = clarens_wire::binary::decode_call(&data);
        let _ = clarens_wire::binary::decode_response(&data);
    }

    #[test]
    fn json_parser_never_panics(s in "\\PC{0,64}") {
        let _ = json::parse(&s);
    }

    #[test]
    fn xml_parser_never_panics(s in "\\PC{0,64}") {
        let _ = clarens_wire::xml::parse(&s);
    }

    #[test]
    fn base64_decoder_never_panics(s in "\\PC{0,64}") {
        let _ = base64::decode(&s);
    }

    #[test]
    fn datetime_unix_roundtrip(secs in -4_000_000_000i64..4_000_000_000) {
        prop_assert_eq!(DateTime::from_unix(secs).to_unix(), secs);
    }

    #[test]
    fn datetime_text_roundtrip(dt in datetime_strategy()) {
        prop_assert_eq!(DateTime::parse(&dt.to_string()).unwrap(), dt);
    }
}
