//! Byte-identity property tests for the streaming response encoders.
//!
//! The allocation-lean `encode_response_into` paths must emit exactly the
//! bytes the DOM/`to_string` reference encoders emit — same escaping, same
//! empty-element forms (`<string></string>` vs `<nil/>`), same double
//! formatting, same JSON key order. Any divergence is a wire-compatibility
//! bug, so the corpus covers every `Value` variant including nested
//! structs/arrays, non-ASCII strings, and the degenerate empties.

use proptest::prelude::*;

use clarens_wire::datetime::DateTime;
use clarens_wire::{Fault, Protocol, RpcResponse, Value};

/// Strings valid in all our codecs (see `proptests.rs`); includes multibyte
/// UTF-8 (Latin-1 supplement + Cyrillic) and XML-special characters.
fn wire_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range(' ', '~'),
            Just('\n'),
            Just('\t'),
            proptest::char::range('¡', 'ÿ'),
            proptest::char::range('А', 'я'),
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn datetime_strategy() -> impl Strategy<Value = DateTime> {
    (1970i32..2100, 1u8..=12, 1u8..=28, 0u8..24, 0u8..60, 0u8..60)
        .prop_map(|(y, mo, d, h, mi, s)| DateTime::new(y, mo, d, h, mi, s).unwrap())
}

/// Doubles for identity testing: unlike the round-trip tests this may
/// include values whose text form is ugly — we only compare encoder output
/// against encoder output, so anything finite goes, plus the non-finite
/// specials both paths must map to the same placeholder.
fn identity_double() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1e300f64..1e300).prop_filter("finite", |d| d.is_finite()),
        (-1e12f64..1e12).prop_filter("finite", |d| d.is_finite()),
        (-1.0f64..1.0).prop_map(|d| d * 1e-12),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
        Just(1.0e-9),
        Just(3.0),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        identity_double().prop_map(Value::Double),
        wire_string().prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        datetime_strategy().prop_map(Value::DateTime),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::btree_map(wire_string(), inner, 0..4).prop_map(Value::Struct),
        ]
    })
}

fn response_strategy() -> impl Strategy<Value = RpcResponse> {
    prop_oneof![
        value_strategy().prop_map(RpcResponse::Success),
        (any::<i64>(), wire_string())
            .prop_map(|(code, msg)| RpcResponse::Fault(Fault::new(code, msg))),
    ]
}

fn id_strategy() -> impl Strategy<Value = Option<Value>> {
    prop_oneof![
        Just(None),
        any::<i64>().prop_map(|i| Some(Value::Int(i))),
        wire_string().prop_map(|s| Some(Value::Str(s))),
        Just(Some(Value::Nil)),
    ]
}

fn streamed(protocol: Protocol, response: &RpcResponse, id: Option<&Value>) -> Vec<u8> {
    let mut out = Vec::new();
    clarens_wire::encode_response_into(protocol, response, id, &mut out);
    out
}

proptest! {
    #[test]
    fn xmlrpc_stream_matches_dom(resp in response_strategy()) {
        let dom = clarens_wire::xmlrpc::encode_response(&resp).into_bytes();
        prop_assert_eq!(streamed(Protocol::XmlRpc, &resp, None), dom);
    }

    #[test]
    fn soap_stream_matches_dom(resp in response_strategy()) {
        let dom = clarens_wire::soap::encode_response(&resp).into_bytes();
        prop_assert_eq!(streamed(Protocol::Soap, &resp, None), dom);
    }

    #[test]
    fn jsonrpc_stream_matches_reference(resp in response_strategy(), id in id_strategy()) {
        let reference = clarens_wire::jsonrpc::encode_response(&resp, id.as_ref()).into_bytes();
        prop_assert_eq!(streamed(Protocol::JsonRpc, &resp, id.as_ref()), reference);
    }

    #[test]
    fn dispatcher_matches_dom_for_all_protocols(resp in response_strategy()) {
        for proto in [Protocol::XmlRpc, Protocol::Soap, Protocol::JsonRpc] {
            let reference = clarens_wire::encode_response(proto, &resp, None);
            prop_assert_eq!(streamed(proto, &resp, None), reference);
        }
    }

    #[test]
    fn streaming_appends_after_existing_bytes(v in value_strategy()) {
        // Recycled buffers arrive cleared but the contract is "append":
        // pre-existing content must be preserved untouched.
        let resp = RpcResponse::Success(v);
        let mut out = b"PREFIX".to_vec();
        clarens_wire::encode_response_into(Protocol::XmlRpc, &resp, None, &mut out);
        prop_assert_eq!(&out[..6], b"PREFIX");
        let dom = clarens_wire::xmlrpc::encode_response(&resp).into_bytes();
        prop_assert_eq!(&out[6..], &dom[..]);
    }
}

/// Deterministic edge cases the strategies may under-sample: empty
/// containers render as self-closing elements while empty strings do not.
#[test]
fn empty_forms_match_dom() {
    let cases = [
        Value::Str(String::new()),
        Value::Bytes(Vec::new()),
        Value::Array(Vec::new()),
        Value::Struct(Default::default()),
        Value::array([Value::Array(Vec::new()), Value::Str(String::new())]),
        Value::structure([("", Value::Nil)]),
    ];
    for v in cases {
        let resp = RpcResponse::Success(v);
        for proto in [Protocol::XmlRpc, Protocol::Soap, Protocol::JsonRpc] {
            assert_eq!(
                streamed(proto, &resp, None),
                clarens_wire::encode_response(proto, &resp, None),
                "{proto:?}"
            );
        }
    }
    // Sanity-check the exact empty forms (documents the invariant the
    // streaming encoder hardcodes).
    let doc = String::from_utf8(streamed(
        Protocol::XmlRpc,
        &RpcResponse::Success(Value::array([
            Value::Str(String::new()),
            Value::Array(Vec::new()),
            Value::Struct(Default::default()),
        ])),
        None,
    ))
    .unwrap();
    assert!(doc.contains("<string></string>"), "{doc}");
    assert!(doc.contains("<array><data/></array>"), "{doc}");
    assert!(doc.contains("<struct/>"), "{doc}");
}

#[test]
fn fault_with_empty_message_matches() {
    let resp = RpcResponse::Fault(Fault::new(0, ""));
    for proto in [Protocol::XmlRpc, Protocol::Soap, Protocol::JsonRpc] {
        assert_eq!(
            streamed(proto, &resp, None),
            clarens_wire::encode_response(proto, &resp, None),
            "{proto:?}"
        );
    }
}

#[test]
fn int_width_boundaries_match() {
    for i in [
        0,
        i64::from(i32::MAX),
        i64::from(i32::MAX) + 1,
        i64::from(i32::MIN),
        i64::from(i32::MIN) - 1,
        i64::MAX,
        i64::MIN,
    ] {
        let resp = RpcResponse::Success(Value::Int(i));
        assert_eq!(
            streamed(Protocol::XmlRpc, &resp, None),
            clarens_wire::encode_response(Protocol::XmlRpc, &resp, None),
            "{i}"
        );
    }
}

#[test]
fn control_chars_escape_identically() {
    // XML numeric references and JSON \u escapes, byte-wise vs char-wise.
    let s = Value::Str("\u{01}a\u{1f}\u{7f}\nok\t".into());
    let resp = RpcResponse::Success(s);
    for proto in [Protocol::XmlRpc, Protocol::Soap, Protocol::JsonRpc] {
        assert_eq!(
            streamed(proto, &resp, None),
            clarens_wire::encode_response(proto, &resp, None),
            "{proto:?}"
        );
    }
}
