//! Property-based tests for the PKI substrate: algebraic laws for the
//! big-integer arithmetic that RSA correctness depends on, and round-trip
//! laws for DNs and certificates.

use proptest::prelude::*;

use clarens_pki::bigint::BigUint;
use clarens_pki::dn::DistinguishedName;

fn biguint_strategy(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..max_bytes)
        .prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutative(a in biguint_strategy(40), b in biguint_strategy(40)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associative(
        a in biguint_strategy(24),
        b in biguint_strategy(24),
        c in biguint_strategy(24),
    ) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutative(a in biguint_strategy(32), b in biguint_strategy(32)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(
        a in biguint_strategy(20),
        b in biguint_strategy(20),
        c in biguint_strategy(20),
    ) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn add_sub_inverse(a in biguint_strategy(40), b in biguint_strategy(40)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn divrem_identity(a in biguint_strategy(48), b in biguint_strategy(24)) {
        let b = if b.is_zero() { BigUint::one() } else { b };
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn shift_roundtrip(a in biguint_strategy(32), bits in 0usize..200) {
        prop_assert_eq!(a.shl(bits).shr(bits), a);
    }

    #[test]
    fn bytes_roundtrip(a in biguint_strategy(48)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint_strategy(48)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn modpow_product_law(
        a in biguint_strategy(16),
        e1 in 0u64..50,
        e2 in 0u64..50,
        m in biguint_strategy(16),
    ) {
        // a^(e1+e2) == a^e1 * a^e2 (mod m)
        let m = if m.is_zero() || m.is_one() { BigUint::from_u64(97) } else { m };
        let lhs = a.modpow(&BigUint::from_u64(e1 + e2), &m);
        let rhs = a
            .modpow(&BigUint::from_u64(e1), &m)
            .mulmod(&a.modpow(&BigUint::from_u64(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gcd_divides_both(a in biguint_strategy(16), b in biguint_strategy(16)) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.rem(&g).is_zero());
            prop_assert!(b.rem(&g).is_zero());
        } else {
            // gcd(0,0) = 0
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn dn_roundtrip(components in proptest::collection::vec(
        // Values avoid leading/trailing spaces: the parser trims the whole
        // line, so edge whitespace is not preserved (matching OpenSSL).
        ("(C|ST|L|O|OU|CN|DC)", "[A-Za-z0-9._@-]([A-Za-z0-9 ._@-]{0,10}[A-Za-z0-9._@-])?"),
        1..5,
    )) {
        let text: String = components
            .iter()
            .map(|(tag, value)| format!("/{tag}={value}"))
            .collect();
        let dn = DistinguishedName::parse(&text).unwrap();
        prop_assert_eq!(dn.to_string(), text);
        let reparsed = DistinguishedName::parse(&dn.to_string()).unwrap();
        prop_assert_eq!(reparsed, dn);
    }

    #[test]
    fn dn_prefix_of_extension(
        base in proptest::collection::vec(
            ("(O|OU|CN)", "[A-Za-z0-9 ]{1,8}"),
            1..4,
        ),
        extra in "[A-Za-z0-9 ]{1,8}",
    ) {
        let text: String = base.iter().map(|(t, v)| format!("/{t}={v}")).collect();
        let dn = DistinguishedName::parse(&text).unwrap();
        let extended = dn.with_component(clarens_pki::dn::AttributeType::CommonName, extra);
        prop_assert!(extended.has_prefix(&dn));
        // A strict extension is never a prefix of its base.
        prop_assert!(!dn.has_prefix(&extended));
    }

    #[test]
    fn dn_parser_never_panics(s in "\\PC{0,40}") {
        let _ = DistinguishedName::parse(&s);
    }

    #[test]
    fn sha256_length_and_determinism(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let d1 = clarens_pki::sha256::sha256(&data);
        let d2 = clarens_pki::sha256::sha256(&data);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(d1.len(), 32);
    }

    #[test]
    fn chacha20_involution(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        key in proptest::array::uniform32(any::<u8>()),
        counter in any::<u32>(),
    ) {
        let nonce = [9u8; 12];
        let mut buf = data.clone();
        clarens_pki::chacha20::xor_stream(&key, &nonce, counter, &mut buf);
        clarens_pki::chacha20::xor_stream(&key, &nonce, counter, &mut buf);
        prop_assert_eq!(buf, data);
    }
}

/// RSA round-trips are expensive with fresh keys; use one shared key pair
/// across all proptest cases.
mod rsa_props {
    use super::*;
    use clarens_pki::rsa;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn shared_keypair() -> &'static rsa::KeyPair {
        static KP: OnceLock<rsa::KeyPair> = OnceLock::new();
        KP.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xC1A2E5);
            rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn encrypt_decrypt_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..48)) {
            let kp = shared_keypair();
            let mut rng = StdRng::seed_from_u64(1);
            let ct = kp.public.encrypt(&mut rng, &msg).unwrap();
            prop_assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
        }

        #[test]
        fn sign_verify_roundtrip(msg in proptest::collection::vec(any::<u8>(), 0..128)) {
            let kp = shared_keypair();
            let sig = kp.private.sign(&msg);
            prop_assert!(kp.public.verify(&msg, &sig).is_ok());
            // Any single-bit flip in the message defeats verification.
            if !msg.is_empty() {
                let mut tampered = msg.clone();
                tampered[0] ^= 1;
                prop_assert!(kp.public.verify(&tampered, &sig).is_err());
            }
        }
    }
}
