//! # clarens-pki — a from-scratch PKI substrate for the Clarens reproduction
//!
//! The Clarens framework (van Lingen et al., ICPPW 2005) rests on
//! "SSL/TLS (RFC 2246) encryption and X509 (RFC 3280) certificate-based
//! authentication". This crate rebuilds the pieces of that stack the
//! framework actually depends on, with no external crypto dependencies:
//!
//! * [`bigint`] — multi-precision arithmetic (Knuth division, Miller–Rabin),
//! * [`sha256`], [`md5`], [`hmac`] — digest and MAC primitives with official
//!   test vectors,
//! * [`chacha20`] — the record cipher for the secure channel,
//! * [`rsa`] — key generation, PKCS#1 v1.5 signing and encryption with CRT,
//! * [`dn`] — slash-form distinguished names with the prefix-matching rule
//!   VO management uses,
//! * [`cert`] — certificates, CAs, *proxy certificates* with delegation
//!   chains (paper §2.6),
//! * [`channel`] — a miniature mutually-authenticated TLS-like transport
//!   ([`channel::SecureStream`] implements `Read`/`Write`).
//!
//! ## Security disclaimer
//!
//! This is a **simulation** of the paper's security stack, built so the
//! reproduction exercises the same code paths (handshakes, per-byte record
//! crypto, chain validation) with the same cost structure. It is neither
//! constant-time nor side-channel hardened, and defaults to short RSA keys
//! for test speed. Do not use it to protect real data.

pub mod bigint;
pub mod cert;
pub mod chacha20;
pub mod channel;
pub mod dn;
pub mod hmac;
pub mod md5;
pub mod pem;
pub mod rsa;
pub mod sha256;

pub use cert::{CertKind, Certificate, CertificateAuthority, Credential};
pub use channel::{ChannelError, SecureStream};
pub use dn::DistinguishedName;
