//! HMAC-SHA256 (RFC 2104) and an HKDF-style key expansion.
//!
//! The secure channel ([`crate::channel`]) MACs every record with
//! HMAC-SHA256 and derives its directional keys with the expansion
//! implemented here (modelled on TLS's PRF/HKDF-Expand).

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Initialize with a key of any length.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time comparison of two MACs.
pub fn verify_mac(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

/// HKDF-Expand-style derivation: produce `len` bytes of key material from
/// `secret`, bound to `label` and `context`.
pub fn derive_key(secret: &[u8], label: &str, context: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut mac = HmacSha256::new(secret);
        mac.update(&previous);
        mac.update(label.as_bytes());
        mac.update(context);
        mac.update(&[counter]);
        let block = mac.finalize();
        previous = block.to_vec();
        out.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    /// RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_vectors() {
        // Case 1
        let key = [0x0b; 20];
        assert_eq!(
            to_hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Case 2
        assert_eq!(
            to_hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Case 3
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            to_hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Case 6: key longer than block size
        let key = [0xaa; 131];
        assert_eq!(
            to_hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
        // Case 7: key and data longer than block size
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            to_hex(&hmac_sha256(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"session-key";
        let msg = b"a record payload of moderate size for the channel";
        let oneshot = hmac_sha256(key, msg);
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), oneshot);
    }

    #[test]
    fn verify_mac_behaviour() {
        let a = [1u8, 2, 3];
        assert!(verify_mac(&a, &[1, 2, 3]));
        assert!(!verify_mac(&a, &[1, 2, 4]));
        assert!(!verify_mac(&a, &[1, 2]));
        assert!(verify_mac(&[], &[]));
    }

    #[test]
    fn derive_key_properties() {
        let k1 = derive_key(b"secret", "client write", b"ctx", 32);
        let k2 = derive_key(b"secret", "server write", b"ctx", 32);
        let k3 = derive_key(b"secret", "client write", b"ctx", 32);
        let k4 = derive_key(b"other", "client write", b"ctx", 32);
        assert_eq!(k1, k3); // deterministic
        assert_ne!(k1, k2); // label-separated
        assert_ne!(k1, k4); // secret-separated
        assert_eq!(derive_key(b"s", "l", b"c", 100).len(), 100);
        // Prefix property does NOT hold across lengths by construction of
        // counter-mode expansion; but same length always matches.
        assert_eq!(
            derive_key(b"s", "l", b"c", 7),
            derive_key(b"s", "l", b"c", 7)
        );
    }
}
