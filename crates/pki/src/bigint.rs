//! Arbitrary-precision unsigned integers for the PKI substrate.
//!
//! The Clarens reproduction cannot link OpenSSL, so the RSA layer in
//! [`crate::rsa`] is built on this module: little-endian `u64`-limb
//! arithmetic with schoolbook multiplication, Knuth Algorithm D division,
//! square-and-multiply modular exponentiation, the extended Euclidean
//! algorithm, and Miller–Rabin primality testing. Sizes of interest are
//! 512–2048 bits, where schoolbook complexity is perfectly adequate.
//!
//! This code favours clarity and testability over constant-time execution;
//! it is a *simulation* of the paper's PKI (see DESIGN.md) and must not be
//! used to protect real data.

use std::cmp::Ordering;
use std::fmt;

use rand::{Rng, RngExt};

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` is little-endian and normalized — the most
/// significant limb is non-zero, and zero is represented by an empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a primitive.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// To big-endian bytes, minimal length (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the top limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// To big-endian bytes, zero-padded on the left to exactly `len` bytes.
    /// Panics if the value does not fit (programming error in callers).
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(text: &str) -> Option<Self> {
        if text.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(text.len().div_ceil(2));
        let padded: String = if text.len() % 2 == 1 {
            format!("0{text}")
        } else {
            text.to_owned()
        };
        for pair in padded.as_bytes().chunks(2) {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            bytes.push(((hi << 4) | lo) as u8);
        }
        Some(BigUint::from_bytes_be(&bytes))
    }

    /// Lower-case hexadecimal rendering (no prefix; `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut out = String::new();
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                out.push_str(&format!("{limb:x}"));
            } else {
                out.push_str(&format!("{limb:016x}"));
            }
        }
        out
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this one?
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Is the low bit set?
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Is the low bit clear (true for zero)?
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Cast to u64 if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction; panics if `other > self` (callers check order first).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Schoolbook multiplication, O(n·m).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder (Knuth Algorithm D). Panics on division by
    /// zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut quotient = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &limb in self.limbs.iter().rev() {
                let cur = (rem << 64) | limb as u128;
                quotient.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            quotient.reverse();
            let mut q = BigUint { limbs: quotient };
            q.normalize();
            return (q, BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra limb for the algorithm
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        let v_top = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q̂ = (u[j+n]·B + u[j+n-1]) / v[n-1]
            let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numerator / v_top;
            let mut rhat = numerator % v_top;
            // Correct q̂ (at most twice).
            while qhat >= 1u128 << 64 || qhat * v_next > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= qhat * vn
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - (p as u64 as i128) + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (un[j + n] as i128) - (carry as i128) + borrow;
            un[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;
            if went_negative {
                // q̂ was one too large; add back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = t as u64;
                    carry = t >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        un.truncate(n);
        let mut rem = BigUint { limbs: un };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// Remainder.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.divrem(modulus).1
    }

    /// Modular addition.
    pub fn addmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.add(other).rem(modulus)
    }

    /// Modular multiplication.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation (square-and-multiply, left-to-right).
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let base = self.rem(modulus);
        let bits = exponent.bit_length();
        for i in (0..bits).rev() {
            result = result.mulmod(&result, modulus);
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self·x ≡ 1 (mod modulus)`, or
    /// `None` when `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid with sign tracking: old_r = r coefficients over
        // the integers; we track t-coefficients as (sign, magnitude).
        if modulus.is_zero() {
            return None;
        }
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // t0 = 0, t1 = 1
        let mut t0 = (false, BigUint::zero()); // (negative?, magnitude)
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q*t1
            let qt1 = q.mul(&t1.1);
            let t2 = sub_signed(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        // t0 is the inverse; normalize into [0, modulus).
        let inv = if t0.0 {
            modulus.sub(&t0.1.rem(modulus))
        } else {
            t0.1.rem(modulus)
        };
        // Handle edge where magnitude % modulus == 0 for negative sign.
        Some(inv.rem(modulus))
    }

    /// A uniformly random integer in `[0, bound)` (rejection sampling).
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_length();
        loop {
            let candidate = BigUint::random_bits(rng, bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// A random integer with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        let limbs_needed = bits.div_ceil(64);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.random::<u64>());
        }
        let extra = limbs_needed * 64 - bits;
        if extra > 0 {
            if let Some(top) = limbs.last_mut() {
                *top >>= extra;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        let two = BigUint::from_u64(2);
        if self == &two {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Trial division by small primes.
        for &p in SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d · 2^s.
        let n_minus_1 = self.sub(&BigUint::one());
        let s = trailing_zeros(&n_minus_1);
        let d = n_minus_1.shr(s);

        'witness: for _ in 0..rounds {
            // Base in [2, n-2].
            let upper = self.sub(&BigUint::from_u64(3));
            let a = BigUint::random_below(rng, &upper).add(&two);
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s.saturating_sub(1) {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 8, "prime size too small");
        loop {
            let mut candidate = BigUint::random_bits(rng, bits);
            // Force the top bit (exact size) and low bit (odd).
            candidate = candidate
                .clone()
                .add(&BigUint::one().shl(bits - 1))
                .rem(&BigUint::one().shl(bits));
            if candidate.bit_length() < bits {
                candidate = candidate.add(&BigUint::one().shl(bits - 1));
            }
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.bit_length() != bits {
                continue;
            }
            if candidate.is_probable_prime(rng, 20) {
                return candidate;
            }
        }
    }
}

/// Signed subtraction helper for the extended Euclid: `a - b` where each
/// operand is a `(negative?, magnitude)` pair.
fn sub_signed(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both non-negative.
        (false, false) => {
            if a.1 >= b.1 {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        // a - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // (-a) - b = -(a + b)
        (true, false) => (true, a.1.add(&b.1)),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.1 >= a.1 {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
    }
}

fn trailing_zeros(n: &BigUint) -> usize {
    let mut count = 0;
    for &limb in &n.limbs {
        if limb == 0 {
            count += 64;
        } else {
            return count + limb.trailing_zeros() as usize;
        }
    }
    count
}

const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    /// Hex display (decimal conversion is not needed anywhere in the stack).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_normalization() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 2]),
            BigUint::from_u64(0x0102)
        );
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(BigUint::from_bytes_be(&[0, 0]), BigUint::zero());
    }

    #[test]
    fn byte_roundtrip() {
        let cases: &[&[u8]] = &[&[1], &[255, 254], &[1, 0, 0, 0, 0, 0, 0, 0, 0]];
        for bytes in cases {
            let v = BigUint::from_bytes_be(bytes);
            assert_eq!(v.to_bytes_be(), *bytes);
        }
        assert_eq!(n(0x1234).to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    fn hex_roundtrip() {
        // Canonical (no-leading-zero) hex round-trips exactly.
        for text in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::from_hex(text).unwrap();
            assert_eq!(v.to_hex(), text);
        }
        // Leading zeros and uppercase are accepted on input, canonicalized
        // on output.
        assert_eq!(BigUint::from_hex("00ff").unwrap(), n(255));
        assert_eq!(BigUint::from_hex("DEADBEEF").unwrap().to_hex(), "deadbeef");
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn add_sub() {
        assert_eq!(n(3).add(&n(4)), n(7));
        assert_eq!(n(u64::MAX).add(&n(1)).to_hex(), "10000000000000000");
        let big = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(
            big.add(&BigUint::one()).to_hex(),
            "100000000000000000000000000000000"
        );
        assert_eq!(big.add(&BigUint::one()).sub(&BigUint::one()), big);
        assert_eq!(n(10).sub(&n(10)), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn mul_basic() {
        assert_eq!(n(6).mul(&n(7)), n(42));
        assert_eq!(n(0).mul(&n(7)), BigUint::zero());
        let a = BigUint::from_hex("ffffffffffffffff").unwrap();
        assert_eq!(a.mul(&a).to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(64).to_hex(), "10000000000000000");
        assert_eq!(n(1).shl(65).shr(65), n(1));
        assert_eq!(n(0b1011).shl(3), n(0b1011000));
        assert_eq!(n(0b1011).shr(2), n(0b10));
        assert_eq!(n(5).shr(100), BigUint::zero());
        assert_eq!(BigUint::zero().shl(10), BigUint::zero());
    }

    #[test]
    fn bit_access() {
        let v = n(0b101);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(2));
        assert!(!v.bit(64));
        assert_eq!(v.bit_length(), 3);
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(n(1).shl(127).bit_length(), 128);
    }

    #[test]
    fn divrem_small() {
        let (q, r) = n(17).divrem(&n(5));
        assert_eq!((q, r), (n(3), n(2)));
        let (q, r) = n(4).divrem(&n(5));
        assert_eq!((q, r), (BigUint::zero(), n(4)));
        let (q, r) = n(5).divrem(&n(5));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = BigUint::from_hex("123456789abcdef0fedcba98765432100123456789abcdef").unwrap();
        let b = BigUint::from_hex("fedcba9876543210").unwrap();
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn divrem_identity_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a_bits = 1 + (rng.random::<u32>() % 512) as usize;
            let b_bits = 1 + (rng.random::<u32>() % 256) as usize;
            let a = BigUint::random_bits(&mut rng, a_bits);
            let mut b = BigUint::random_bits(&mut rng, b_bits);
            if b.is_zero() {
                b = BigUint::one();
            }
            let (q, r) = a.divrem(&b);
            assert_eq!(q.mul(&b).add(&r), a, "a={a} b={b}");
            assert!(r < b);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).divrem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_cases() {
        // 3^4 mod 5 = 81 mod 5 = 1
        assert_eq!(n(3).modpow(&n(4), &n(5)), n(1));
        // Fermat: a^(p-1) ≡ 1 mod p
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345] {
            assert_eq!(n(a).modpow(&p.sub(&n(1)), &p), n(1));
        }
        assert_eq!(n(5).modpow(&BigUint::zero(), &n(7)), n(1));
        assert_eq!(n(5).modpow(&n(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modpow_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let base = (rng.random::<u64>() % 1000) + 1;
            let exp = rng.random::<u64>() % 24;
            let modulus = (rng.random::<u64>() % 10_000) + 2;
            let mut expect = 1u128;
            for _ in 0..exp {
                expect = expect * base as u128 % modulus as u128;
            }
            assert_eq!(
                n(base).modpow(&n(exp), &n(modulus)),
                n(expect as u64),
                "{base}^{exp} mod {modulus}"
            );
        }
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(5)), n(1));
        assert_eq!(BigUint::zero().gcd(&n(5)), n(5));

        let inv = n(3).modinv(&n(7)).unwrap();
        assert_eq!(inv, n(5)); // 3*5 = 15 ≡ 1 mod 7
        assert!(n(6).modinv(&n(9)).is_none()); // gcd 3

        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let m = BigUint::random_prime(&mut rng, 64);
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.modinv(&m).unwrap();
            assert_eq!(a.mulmod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(3);
        for p in [2u64, 3, 5, 7, 997, 104_729, 1_000_000_007] {
            assert!(n(p).is_probable_prime(&mut rng, 20), "{p} should be prime");
        }
        for c in [0u64, 1, 4, 100, 997 * 991, 1_000_000_007 - 1] {
            assert!(
                !n(c).is_probable_prime(&mut rng, 20),
                "{c} should be composite"
            );
        }
        // Carmichael numbers must be caught.
        for c in [561u64, 1105, 1729, 41041] {
            assert!(!n(c).is_probable_prime(&mut rng, 20), "{c} is Carmichael");
        }
    }

    #[test]
    fn random_prime_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [16usize, 32, 64, 96] {
            let p = BigUint::random_prime(&mut rng, bits);
            assert_eq!(p.bit_length(), bits);
            assert!(p.is_odd());
        }
    }

    #[test]
    fn ordering() {
        assert!(n(1) < n(2));
        assert!(n(2) > n(1));
        assert!(n(1).shl(64) > n(u64::MAX));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = BigUint::from_hex("10000000001").unwrap();
        for _ in 0..100 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", n(255)), "0xff");
        assert_eq!(format!("{:?}", n(255)), "BigUint(0xff)");
        assert_eq!(format!("{}", BigUint::zero()), "0x0");
    }
}
