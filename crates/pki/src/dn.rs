//! X.509-style distinguished names in the slash-separated OpenSSL one-line
//! format the paper uses throughout:
//!
//! ```text
//! /O=doesciencegrid.org/OU=People/CN=John Smith 12345
//! /DC=org/DC=doegrids/OU=People/CN=Joe User
//! ```
//!
//! Two properties of DNs matter to Clarens (paper §2.1):
//!
//! 1. DNs are ordered attribute lists — the same attribute type (`DC`, `OU`)
//!    can repeat.
//! 2. "the hierarchical information in the DNs may also be used to define
//!    membership, so that only the initial significant part of the DN need
//!    be specified" — [`DistinguishedName::has_prefix`] implements that
//!    prefix-matching rule, which the VO manager builds on.

use std::fmt;

/// Recognized attribute types (free-form types are preserved as
/// [`AttributeType::Other`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttributeType {
    /// Country.
    Country,
    /// State or province.
    State,
    /// Locality/city.
    Locality,
    /// Organization.
    Organization,
    /// Organizational unit.
    OrganizationalUnit,
    /// Common name.
    CommonName,
    /// Email address.
    Email,
    /// Domain component.
    DomainComponent,
    /// Anything else, with the raw type string.
    Other(String),
}

impl AttributeType {
    /// Parse the short attribute tag.
    pub fn from_tag(tag: &str) -> Self {
        match tag.to_ascii_uppercase().as_str() {
            "C" => AttributeType::Country,
            "ST" => AttributeType::State,
            "L" => AttributeType::Locality,
            "O" => AttributeType::Organization,
            "OU" => AttributeType::OrganizationalUnit,
            "CN" => AttributeType::CommonName,
            "EMAIL" | "EMAILADDRESS" | "E" => AttributeType::Email,
            "DC" => AttributeType::DomainComponent,
            _ => AttributeType::Other(tag.to_owned()),
        }
    }

    /// The canonical short tag.
    pub fn tag(&self) -> &str {
        match self {
            AttributeType::Country => "C",
            AttributeType::State => "ST",
            AttributeType::Locality => "L",
            AttributeType::Organization => "O",
            AttributeType::OrganizationalUnit => "OU",
            AttributeType::CommonName => "CN",
            AttributeType::Email => "Email",
            AttributeType::DomainComponent => "DC",
            AttributeType::Other(s) => s,
        }
    }
}

/// One `TYPE=value` component of a DN.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// The attribute type.
    pub kind: AttributeType,
    /// The attribute value (verbatim; escaped `\/` unescaped).
    pub value: String,
}

/// An ordered distinguished name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistinguishedName {
    /// Components in certificate order (most significant first).
    pub attributes: Vec<Attribute>,
}

/// DN parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnError(pub String);

impl fmt::Display for DnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DN: {}", self.0)
    }
}

impl std::error::Error for DnError {}

impl DistinguishedName {
    /// Parse a one-line slash-separated DN. Values may contain escaped
    /// slashes (`\/`).
    pub fn parse(text: &str) -> Result<Self, DnError> {
        let text = text.trim();
        if !text.starts_with('/') {
            return Err(DnError(format!("must start with '/': {text:?}")));
        }
        let mut attributes = Vec::new();
        // Split on unescaped '/'.
        let mut components: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut chars = text[1..].chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some(escaped) => current.push(escaped),
                    None => return Err(DnError("trailing backslash".into())),
                },
                '/' => {
                    components.push(std::mem::take(&mut current));
                }
                c => current.push(c),
            }
        }
        components.push(current);

        for comp in components {
            if comp.is_empty() {
                return Err(DnError("empty component".into()));
            }
            let (tag, value) = comp
                .split_once('=')
                .ok_or_else(|| DnError(format!("component {comp:?} has no '='")))?;
            if tag.is_empty() {
                return Err(DnError(format!("component {comp:?} has empty type")));
            }
            attributes.push(Attribute {
                kind: AttributeType::from_tag(tag),
                value: value.to_owned(),
            });
        }
        if attributes.is_empty() {
            return Err(DnError("no components".into()));
        }
        Ok(DistinguishedName { attributes })
    }

    /// Build a DN programmatically.
    pub fn builder() -> DnBuilder {
        DnBuilder {
            dn: DistinguishedName::default(),
        }
    }

    /// The common name (last CN component), if any.
    pub fn common_name(&self) -> Option<&str> {
        self.attributes
            .iter()
            .rev()
            .find(|a| a.kind == AttributeType::CommonName)
            .map(|a| a.value.as_str())
    }

    /// Does `self` start with all the components of `prefix`, in order?
    ///
    /// This is the paper's rule that
    /// `/O=doesciencegrid.org/OU=People` matches every individual the DOE
    /// Science Grid CA issued. A DN is trivially a prefix of itself.
    pub fn has_prefix(&self, prefix: &DistinguishedName) -> bool {
        if prefix.attributes.len() > self.attributes.len() {
            return false;
        }
        self.attributes
            .iter()
            .zip(&prefix.attributes)
            .all(|(mine, theirs)| mine == theirs)
    }

    /// Append a component, returning a new DN (used to derive proxy
    /// certificate subjects: `<subject>/CN=proxy`).
    pub fn with_component(&self, kind: AttributeType, value: impl Into<String>) -> Self {
        let mut dn = self.clone();
        dn.attributes.push(Attribute {
            kind,
            value: value.into(),
        });
        dn
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for attr in &self.attributes {
            write!(f, "/{}={}", attr.kind.tag(), attr.value.replace('/', "\\/"))?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DistinguishedName {
    type Err = DnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DistinguishedName::parse(s)
    }
}

/// Fluent builder for [`DistinguishedName`].
pub struct DnBuilder {
    dn: DistinguishedName,
}

impl DnBuilder {
    fn push(mut self, kind: AttributeType, value: impl Into<String>) -> Self {
        self.dn.attributes.push(Attribute {
            kind,
            value: value.into(),
        });
        self
    }

    /// Add a country component.
    pub fn country(self, v: impl Into<String>) -> Self {
        self.push(AttributeType::Country, v)
    }

    /// Add an organization component.
    pub fn organization(self, v: impl Into<String>) -> Self {
        self.push(AttributeType::Organization, v)
    }

    /// Add an organizational-unit component.
    pub fn organizational_unit(self, v: impl Into<String>) -> Self {
        self.push(AttributeType::OrganizationalUnit, v)
    }

    /// Add a common-name component.
    pub fn common_name(self, v: impl Into<String>) -> Self {
        self.push(AttributeType::CommonName, v)
    }

    /// Add a domain component.
    pub fn domain_component(self, v: impl Into<String>) -> Self {
        self.push(AttributeType::DomainComponent, v)
    }

    /// Finish; panics if no component was added (empty DNs are invalid).
    pub fn build(self) -> DistinguishedName {
        assert!(
            !self.dn.attributes.is_empty(),
            "DN must have at least one component"
        );
        self.dn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        // The person DN from §2.1.
        let person =
            DistinguishedName::parse("/O=doesciencegrid.org/OU=People/CN=John Smith 12345")
                .unwrap();
        assert_eq!(person.attributes.len(), 3);
        assert_eq!(person.common_name(), Some("John Smith 12345"));
        assert_eq!(
            person.to_string(),
            "/O=doesciencegrid.org/OU=People/CN=John Smith 12345"
        );

        // The server DN from §2.1 (CN contains an escaped slash).
        let server =
            DistinguishedName::parse("/O=doesciencegrid.org/OU=Services/CN=host\\/www.mysite.edu")
                .unwrap();
        assert_eq!(server.common_name(), Some("host/www.mysite.edu"));
        // Re-serialization re-escapes.
        assert_eq!(
            server.to_string(),
            "/O=doesciencegrid.org/OU=Services/CN=host\\/www.mysite.edu"
        );

        // The shell-service user-map DN from §2.5.
        let joe = DistinguishedName::parse("/DC=org/DC=doegrids/OU=People/CN=Joe User").unwrap();
        assert_eq!(joe.attributes[0].kind, AttributeType::DomainComponent);
        assert_eq!(joe.attributes[1].value, "doegrids");
    }

    #[test]
    fn prefix_matching_as_in_paper() {
        // "To add all individuals to a particular group, only
        //  /O=doesciencegrid.org/OU=People need be specified"
        let prefix = DistinguishedName::parse("/O=doesciencegrid.org/OU=People").unwrap();
        let john = DistinguishedName::parse("/O=doesciencegrid.org/OU=People/CN=John Smith 12345")
            .unwrap();
        let service =
            DistinguishedName::parse("/O=doesciencegrid.org/OU=Services/CN=host").unwrap();
        let other = DistinguishedName::parse("/O=cern.ch/OU=People/CN=X").unwrap();

        assert!(john.has_prefix(&prefix));
        assert!(!service.has_prefix(&prefix));
        assert!(!other.has_prefix(&prefix));
        assert!(john.has_prefix(&john)); // reflexive
        assert!(!prefix.has_prefix(&john)); // shorter can't have longer prefix
    }

    #[test]
    fn parse_errors() {
        assert!(DistinguishedName::parse("").is_err());
        assert!(DistinguishedName::parse("no-slash").is_err());
        assert!(DistinguishedName::parse("/").is_err());
        assert!(DistinguishedName::parse("/O=a//CN=b").is_err());
        assert!(DistinguishedName::parse("/Oa").is_err());
        assert!(DistinguishedName::parse("/=v").is_err());
        assert!(DistinguishedName::parse("/O=a\\").is_err());
    }

    #[test]
    fn attribute_tags() {
        for (tag, kind) in [
            ("C", AttributeType::Country),
            ("ST", AttributeType::State),
            ("L", AttributeType::Locality),
            ("O", AttributeType::Organization),
            ("OU", AttributeType::OrganizationalUnit),
            ("CN", AttributeType::CommonName),
            ("DC", AttributeType::DomainComponent),
            ("Email", AttributeType::Email),
        ] {
            assert_eq!(AttributeType::from_tag(tag), kind);
            assert_eq!(AttributeType::from_tag(&tag.to_lowercase()), kind);
        }
        assert_eq!(
            AttributeType::from_tag("UID"),
            AttributeType::Other("UID".into())
        );
        assert_eq!(AttributeType::Other("UID".into()).tag(), "UID");
    }

    #[test]
    fn builder() {
        let dn = DistinguishedName::builder()
            .country("US")
            .organization("caltech")
            .organizational_unit("hep")
            .common_name("conrad")
            .build();
        assert_eq!(dn.to_string(), "/C=US/O=caltech/OU=hep/CN=conrad");
        let parsed = DistinguishedName::parse(&dn.to_string()).unwrap();
        assert_eq!(parsed, dn);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_builder_panics() {
        let _ = DistinguishedName::builder().build();
    }

    #[test]
    fn with_component_for_proxies() {
        let user = DistinguishedName::parse("/O=org/CN=alice").unwrap();
        let proxy = user.with_component(AttributeType::CommonName, "proxy");
        assert_eq!(proxy.to_string(), "/O=org/CN=alice/CN=proxy");
        assert!(proxy.has_prefix(&user));
        assert_eq!(proxy.common_name(), Some("proxy"));
        assert_eq!(user.common_name(), Some("alice"));
    }

    #[test]
    fn value_with_equals_sign() {
        // Only the first '=' splits type from value.
        let dn = DistinguishedName::parse("/CN=a=b").unwrap();
        assert_eq!(dn.attributes[0].value, "a=b");
    }

    #[test]
    fn fromstr_impl() {
        let dn: DistinguishedName = "/O=x/CN=y".parse().unwrap();
        assert_eq!(dn.common_name(), Some("y"));
        assert!("garbage".parse::<DistinguishedName>().is_err());
    }
}
