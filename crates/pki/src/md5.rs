//! MD5 (RFC 1321), implemented from scratch.
//!
//! The paper's file service exposes `file.md5()` "to obtain a hash file for
//! checking file integrity" (§2.3); this module provides exactly that. MD5
//! is cryptographically broken and is used here only for the integrity
//! checksum the historical interface specified — signatures use SHA-256.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 16;
/// Block size in bytes.
pub const BLOCK_LEN: usize = 64;

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Fresh state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffer_len = rest.len();
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.pad(&[0x80]);
        while self.buffer_len != 56 {
            self.pad(&[0]);
        }
        self.pad(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn pad(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut m = [0u32; 16];
        for i in 0..16 {
            m[i] = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let temp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot digest.
pub fn md5(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// One-shot digest as lowercase hex (the `file.md5()` wire format).
pub fn md5_hex(data: &[u8]) -> String {
    crate::sha256::to_hex(&md5(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(md5_hex(input), *expect);
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        let oneshot = md5(&data);
        for chunk_size in [1usize, 7, 64, 65, 100] {
            let mut h = Md5::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn padding_boundaries() {
        for len in 54..66usize {
            let data = vec![0x5A; len];
            let whole = md5(&data);
            let mut h = Md5::new();
            h.update(&data[..1]);
            h.update(&data[1..]);
            assert_eq!(h.finalize(), whole, "len={len}");
        }
    }
}
