//! PEM-style on-disk serialization for certificates, keys, and
//! credentials.
//!
//! Deployments need credentials as *files* (the paper's users carried
//! OpenSSL PEM certificates and key files; grid proxies lived in
//! `/tmp/x509up_u<uid>`). This module provides the equivalent for the
//! reproduction's formats: labelled blocks with the familiar
//! `-----BEGIN ...-----` armor, holding the crate's text encodings
//! (certificates as their canonical text form, keys as hex fields).

use std::fmt;

use crate::bigint::BigUint;
use crate::cert::{CertError, Certificate, Credential};
use crate::rsa::{PrivateKey, PublicKey};

/// Armor label for certificates.
pub const CERT_LABEL: &str = "CLARENS CERTIFICATE";
/// Armor label for private keys.
pub const KEY_LABEL: &str = "CLARENS PRIVATE KEY";

/// Errors from PEM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PemError(pub String);

impl fmt::Display for PemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PEM error: {}", self.0)
    }
}

impl std::error::Error for PemError {}

impl From<CertError> for PemError {
    fn from(e: CertError) -> Self {
        PemError(e.to_string())
    }
}

/// One armored block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The label between BEGIN/END.
    pub label: String,
    /// The body text (verbatim lines between the armor).
    pub body: String,
}

/// Wrap a body in armor.
pub fn encode_block(label: &str, body: &str) -> String {
    let mut out = format!("-----BEGIN {label}-----\n");
    out.push_str(body.trim_end());
    out.push_str(&format!("\n-----END {label}-----\n"));
    out
}

/// Parse all armored blocks in a document (text outside blocks is
/// ignored, like OpenSSL does).
pub fn decode_blocks(text: &str) -> Result<Vec<Block>, PemError> {
    let mut blocks = Vec::new();
    let mut current: Option<(String, String)> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("-----BEGIN ") {
            let label = rest
                .strip_suffix("-----")
                .ok_or_else(|| PemError(format!("malformed BEGIN line {trimmed:?}")))?;
            if current.is_some() {
                return Err(PemError("nested BEGIN".into()));
            }
            current = Some((label.to_owned(), String::new()));
        } else if let Some(rest) = trimmed.strip_prefix("-----END ") {
            let label = rest
                .strip_suffix("-----")
                .ok_or_else(|| PemError(format!("malformed END line {trimmed:?}")))?;
            match current.take() {
                Some((open_label, body)) if open_label == label => {
                    blocks.push(Block {
                        label: open_label,
                        body,
                    });
                }
                Some((open_label, _)) => {
                    return Err(PemError(format!(
                        "END {label:?} does not match BEGIN {open_label:?}"
                    )))
                }
                None => return Err(PemError("END without BEGIN".into())),
            }
        } else if let Some((_, body)) = current.as_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    if current.is_some() {
        return Err(PemError("unterminated block".into()));
    }
    Ok(blocks)
}

/// Serialize a certificate as an armored block.
pub fn encode_certificate(cert: &Certificate) -> String {
    encode_block(CERT_LABEL, &cert.to_text())
}

/// Serialize a private key as an armored block.
pub fn encode_private_key(key: &PrivateKey) -> String {
    let body = format!(
        "n: {}\ne: {}\nd: {}\np: {}\nq: {}\n",
        key.public.n.to_hex(),
        key.public.e.to_hex(),
        key.d.to_hex(),
        key.p.to_hex(),
        key.q.to_hex(),
    );
    encode_block(KEY_LABEL, &body)
}

/// Reconstruct a private key from its block body (recomputing the CRT
/// parameters from d, p, q).
pub fn decode_private_key(body: &str) -> Result<PrivateKey, PemError> {
    let mut fields = std::collections::BTreeMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(": ")
            .ok_or_else(|| PemError(format!("bad key line {line:?}")))?;
        fields.insert(k.to_owned(), v.to_owned());
    }
    let field = |name: &str| -> Result<BigUint, PemError> {
        let hex = fields
            .get(name)
            .ok_or_else(|| PemError(format!("key missing field {name}")))?;
        BigUint::from_hex(hex).ok_or_else(|| PemError(format!("bad hex in field {name}")))
    };
    let n = field("n")?;
    let e = field("e")?;
    let d = field("d")?;
    let p = field("p")?;
    let q = field("q")?;
    // Consistency: p·q must equal n.
    if p.mul(&q) != n {
        return Err(PemError("inconsistent key: p*q != n".into()));
    }
    let one = BigUint::one();
    let p1 = p.sub(&one);
    let q1 = q.sub(&one);
    let dp = d.rem(&p1);
    let dq = d.rem(&q1);
    let qinv = q
        .modinv(&p)
        .ok_or_else(|| PemError("inconsistent key: q has no inverse mod p".into()))?;
    Ok(PrivateKey {
        public: PublicKey { n, e },
        d,
        p,
        q,
        dp,
        dq,
        qinv,
    })
}

/// Serialize a credential: the leaf certificate, its chain, and the key.
pub fn encode_credential(credential: &Credential) -> String {
    let mut out = encode_certificate(&credential.certificate);
    for link in &credential.chain {
        out.push_str(&encode_certificate(link));
    }
    out.push_str(&encode_private_key(&credential.key));
    out
}

/// Parse a credential file (first certificate block is the leaf, the rest
/// are the chain; exactly one key block).
pub fn decode_credential(text: &str) -> Result<Credential, PemError> {
    let blocks = decode_blocks(text)?;
    let mut certs = Vec::new();
    let mut key = None;
    for block in blocks {
        match block.label.as_str() {
            CERT_LABEL => certs.push(Certificate::from_text(&block.body)?),
            KEY_LABEL => {
                if key.is_some() {
                    return Err(PemError("multiple key blocks".into()));
                }
                key = Some(decode_private_key(&block.body)?);
            }
            other => return Err(PemError(format!("unexpected block {other:?}"))),
        }
    }
    if certs.is_empty() {
        return Err(PemError("no certificate block".into()));
    }
    let key = key.ok_or_else(|| PemError("no key block".into()))?;
    // The key must match the leaf certificate.
    let leaf = certs.remove(0);
    if key.public != leaf.public_key {
        return Err(PemError("key does not match leaf certificate".into()));
    }
    Ok(Credential {
        certificate: leaf,
        key,
        chain: certs,
    })
}

/// Parse every certificate block in a file (trust-root bundles).
pub fn decode_certificates(text: &str) -> Result<Vec<Certificate>, PemError> {
    let mut certs = Vec::new();
    for block in decode_blocks(text)? {
        if block.label == CERT_LABEL {
            certs.push(Certificate::from_text(&block.body)?);
        }
    }
    if certs.is_empty() {
        return Err(PemError("no certificate blocks".into()));
    }
    Ok(certs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use crate::dn::DistinguishedName;
    use crate::rsa;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: i64 = 1_118_836_800;

    fn fixture() -> (CertificateAuthority, Credential) {
        let mut rng = StdRng::seed_from_u64(0xBEE);
        let ca = CertificateAuthority::new(
            &mut rng,
            DistinguishedName::parse("/O=g/CN=CA").unwrap(),
            NOW,
            3650,
        );
        let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let cert = ca.issue(
            DistinguishedName::parse("/O=g/OU=People/CN=pat").unwrap(),
            &kp.public,
            NOW,
            365,
        );
        (
            ca,
            Credential {
                certificate: cert,
                key: kp.private,
                chain: vec![],
            },
        )
    }

    #[test]
    fn block_roundtrip() {
        let text = encode_block("TEST", "line one\nline two");
        let blocks = decode_blocks(&text).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].label, "TEST");
        assert_eq!(blocks[0].body, "line one\nline two\n");
    }

    #[test]
    fn multiple_blocks_with_noise() {
        let text = format!(
            "leading comment\n{}between blocks\n{}trailing",
            encode_block("A", "aaa"),
            encode_block("B", "bbb"),
        );
        let blocks = decode_blocks(&text).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].label, "A");
        assert_eq!(blocks[1].label, "B");
    }

    #[test]
    fn malformed_blocks_rejected() {
        assert!(decode_blocks("-----BEGIN A-----\n").is_err()); // unterminated
        assert!(decode_blocks("-----END A-----\n").is_err()); // end without begin
        assert!(decode_blocks("-----BEGIN A-----\n-----END B-----\n").is_err()); // mismatch
        assert!(decode_blocks(
            "-----BEGIN A-----\n-----BEGIN B-----\n-----END B-----\n-----END A-----\n"
        )
        .is_err()); // nested
    }

    #[test]
    fn private_key_roundtrip() {
        let (_, cred) = fixture();
        let pem = encode_private_key(&cred.key);
        let blocks = decode_blocks(&pem).unwrap();
        let decoded = decode_private_key(&blocks[0].body).unwrap();
        assert_eq!(decoded, cred.key);
        // Signatures made with the reloaded key verify.
        let sig = decoded.sign(b"msg");
        cred.key.public.verify(b"msg", &sig).unwrap();
    }

    #[test]
    fn corrupted_key_rejected() {
        let (_, cred) = fixture();
        let pem = encode_private_key(&cred.key);
        // Swap p's hex for q's: p*q still equals n => passes that check;
        // instead corrupt n itself.
        let tampered = pem.replace("n: ", "n: f");
        let blocks = decode_blocks(&tampered).unwrap();
        assert!(decode_private_key(&blocks[0].body).is_err());
        assert!(decode_private_key("garbage").is_err());
        assert!(decode_private_key("n: zz\n").is_err());
    }

    #[test]
    fn credential_roundtrip() {
        let (ca, cred) = fixture();
        let pem = encode_credential(&cred);
        let decoded = decode_credential(&pem).unwrap();
        assert_eq!(decoded.certificate, cred.certificate);
        assert_eq!(decoded.key, cred.key);
        assert!(decoded.chain.is_empty());
        decoded
            .certificate
            .verify_signature(&ca.certificate.public_key)
            .unwrap();
    }

    #[test]
    fn proxy_credential_with_chain_roundtrips() {
        let (_, cred) = fixture();
        let mut rng = StdRng::seed_from_u64(0xFACE);
        let proxy = cred.delegate_proxy(&mut rng, NOW + 1, 3600);
        let pem = encode_credential(&proxy);
        let decoded = decode_credential(&pem).unwrap();
        assert_eq!(decoded.certificate, proxy.certificate);
        assert_eq!(decoded.chain, proxy.chain);
        assert_eq!(decoded.identity(), proxy.identity());
    }

    #[test]
    fn mismatched_key_and_cert_rejected() {
        let (_, cred) = fixture();
        let mut rng = StdRng::seed_from_u64(0xD00);
        let other = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let mut pem = encode_certificate(&cred.certificate);
        pem.push_str(&encode_private_key(&other.private));
        assert!(decode_credential(&pem).is_err());
    }

    #[test]
    fn root_bundle_parsing() {
        let (ca, cred) = fixture();
        let bundle = format!(
            "{}{}",
            encode_certificate(&ca.certificate),
            encode_certificate(&cred.certificate)
        );
        let certs = decode_certificates(&bundle).unwrap();
        assert_eq!(certs.len(), 2);
        assert!(decode_certificates("no blocks here").is_err());
    }
}
