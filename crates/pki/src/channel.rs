//! A TLS-like secure channel with mutual X.509-style authentication.
//!
//! PClarens delegated SSL to Apache; our from-scratch server needs its own
//! encrypted transport, so this module implements a miniature handshake +
//! record protocol with the same *shape* as SSL 3.0/TLS 1.0 (the protocols
//! the paper's "SSL/TLS-encrypted network connections... reduce performance
//! by up to 50%" measurement used):
//!
//! * **Handshake** — hellos with nonces, server certificate chain, RSA key
//!   transport of a premaster secret, client certificate chain plus a
//!   transcript signature (mutual auth — Clarens requires "certificate
//!   based authentication when establishing a connection").
//! * **Record layer** — length-framed records encrypted with ChaCha20 and
//!   authenticated with HMAC-SHA256; sequence numbers prevent replay and
//!   reordering.
//!
//! [`SecureStream`] implements [`std::io::Read`] and [`std::io::Write`] so
//! the HTTP server can treat plaintext and secure transports uniformly.

use std::io::{self, Read, Write};

use rand::{Rng, RngExt};

use crate::cert::{verify_chain, CertError, Certificate, Credential};
use crate::chacha20::ChaCha20;
use crate::dn::DistinguishedName;
use crate::hmac::{derive_key, hmac_sha256, verify_mac, HmacSha256};
use crate::sha256::Sha256;

/// Maximum plaintext bytes per record (SSL records are ≤ 16 KiB too).
pub const MAX_RECORD: usize = 16 * 1024;
/// Maximum serialized handshake message (bounds allocation on hostile
/// peers).
const MAX_HANDSHAKE: usize = 256 * 1024;
/// Protocol magic for hello messages.
const MAGIC: &[u8; 8] = b"CLARENS1";
/// MAC length on each record.
const MAC_LEN: usize = 32;

/// Channel establishment or I/O errors.
#[derive(Debug)]
pub enum ChannelError {
    /// Underlying socket error.
    Io(io::Error),
    /// Peer violated the handshake protocol.
    Handshake(String),
    /// Certificate problem.
    Cert(CertError),
    /// Record MAC check failed (tampering or key mismatch).
    BadRecord,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Io(e) => write!(f, "channel I/O error: {e}"),
            ChannelError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ChannelError::Cert(e) => write!(f, "certificate error: {e}"),
            ChannelError::BadRecord => write!(f, "record authentication failed"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<io::Error> for ChannelError {
    fn from(e: io::Error) -> Self {
        ChannelError::Io(e)
    }
}

impl From<CertError> for ChannelError {
    fn from(e: CertError) -> Self {
        ChannelError::Cert(e)
    }
}

/// Length-prefixed plaintext frame I/O used during the handshake.
fn write_frame<S: Write>(stream: &mut S, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame<S: Read>(stream: &mut S, max: usize) -> Result<Vec<u8>, ChannelError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max {
        return Err(ChannelError::Handshake(format!(
            "frame of {len} bytes exceeds limit"
        )));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Serialize a certificate chain (leaf first) for the wire.
fn encode_chain(leaf: &Certificate, rest: &[Certificate]) -> Vec<u8> {
    let mut out = Vec::new();
    let total = 1 + rest.len();
    out.extend_from_slice(&(total as u32).to_be_bytes());
    for cert in std::iter::once(leaf).chain(rest) {
        let text = cert.to_text();
        out.extend_from_slice(&(text.len() as u32).to_be_bytes());
        out.extend_from_slice(text.as_bytes());
    }
    out
}

fn decode_chain(data: &[u8]) -> Result<Vec<Certificate>, ChannelError> {
    if data.len() < 4 {
        return Err(ChannelError::Handshake("truncated chain".into()));
    }
    let count = u32::from_be_bytes(data[0..4].try_into().unwrap()) as usize;
    if count == 0 || count > 16 {
        return Err(ChannelError::Handshake(format!(
            "implausible chain length {count}"
        )));
    }
    let mut offset = 4;
    let mut chain = Vec::with_capacity(count);
    for _ in 0..count {
        if data.len() < offset + 4 {
            return Err(ChannelError::Handshake("truncated chain entry".into()));
        }
        let len = u32::from_be_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;
        if data.len() < offset + len {
            return Err(ChannelError::Handshake("truncated certificate".into()));
        }
        let text = std::str::from_utf8(&data[offset..offset + len])
            .map_err(|_| ChannelError::Handshake("certificate not UTF-8".into()))?;
        chain.push(Certificate::from_text(text).map_err(ChannelError::Cert)?);
        offset += len;
    }
    Ok(chain)
}

/// One direction of the record protocol.
struct Direction {
    key: [u8; 32],
    nonce_base: [u8; 12],
    mac_key: Vec<u8>,
    sequence: u64,
}

impl Direction {
    fn from_material(material: &[u8]) -> Self {
        let mut key = [0u8; 32];
        key.copy_from_slice(&material[0..32]);
        let mut nonce_base = [0u8; 12];
        nonce_base.copy_from_slice(&material[32..44]);
        Direction {
            key,
            nonce_base,
            mac_key: material[44..76].to_vec(),
            sequence: 0,
        }
    }

    /// Per-record nonce: base XORed with the sequence number (like TLS 1.3).
    fn record_nonce(&self) -> [u8; 12] {
        let mut nonce = self.nonce_base;
        let seq = self.sequence.to_be_bytes();
        for i in 0..8 {
            nonce[4 + i] ^= seq[i];
        }
        nonce
    }

    fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut ciphertext = plaintext.to_vec();
        ChaCha20::new(&self.key, &self.record_nonce(), 0).apply(&mut ciphertext);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&self.sequence.to_be_bytes());
        mac.update(&(ciphertext.len() as u32).to_be_bytes());
        mac.update(&ciphertext);
        let tag = mac.finalize();
        self.sequence += 1;
        let mut record = ciphertext;
        record.extend_from_slice(&tag);
        record
    }

    fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if record.len() < MAC_LEN {
            return Err(ChannelError::BadRecord);
        }
        let (ciphertext, tag) = record.split_at(record.len() - MAC_LEN);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&self.sequence.to_be_bytes());
        mac.update(&(ciphertext.len() as u32).to_be_bytes());
        mac.update(ciphertext);
        if !verify_mac(&mac.finalize(), tag) {
            return Err(ChannelError::BadRecord);
        }
        let mut plaintext = ciphertext.to_vec();
        ChaCha20::new(&self.key, &self.record_nonce(), 0).apply(&mut plaintext);
        self.sequence += 1;
        Ok(plaintext)
    }
}

/// An established, mutually-authenticated encrypted stream.
pub struct SecureStream<S> {
    stream: S,
    /// Identity (end-entity DN) of the peer, post proxy resolution.
    peer_identity: DistinguishedName,
    /// The leaf certificate the peer presented.
    peer_certificate: Certificate,
    send: Direction,
    recv: Direction,
    /// Decrypted bytes not yet consumed by `read`.
    read_buffer: Vec<u8>,
    read_offset: usize,
    /// Plaintext pending encryption on flush.
    write_buffer: Vec<u8>,
}

impl<S: Read + Write> SecureStream<S> {
    /// Client side: connect over `stream`, verifying the server against
    /// `roots` and presenting `credential`.
    pub fn connect<R: Rng + ?Sized>(
        mut stream: S,
        credential: &Credential,
        roots: &[Certificate],
        now: i64,
        rng: &mut R,
    ) -> Result<Self, ChannelError> {
        let mut transcript = Sha256::new();

        // -> ClientHello
        let client_random: [u8; 32] = rng.random();
        let mut hello = MAGIC.to_vec();
        hello.extend_from_slice(&client_random);
        write_frame(&mut stream, &hello)?;
        transcript.update(&hello);

        // <- ServerHello { random, chain }
        let server_hello = read_frame(&mut stream, MAX_HANDSHAKE)?;
        transcript.update(&server_hello);
        if server_hello.len() < 8 + 32 || &server_hello[0..8] != MAGIC {
            return Err(ChannelError::Handshake("bad server hello".into()));
        }
        let server_random: [u8; 32] = server_hello[8..40].try_into().unwrap();
        let server_chain = decode_chain(&server_hello[40..])?;
        verify_chain(&server_chain, roots, now)?;
        let server_cert = server_chain[0].clone();

        // -> ClientKeyExchange { E_server(premaster), chain, sig(transcript) }
        let premaster: [u8; 48] = rng.random();
        let encrypted = server_cert
            .public_key
            .encrypt(rng, &premaster)
            .map_err(|e| ChannelError::Handshake(format!("premaster encryption: {e}")))?;
        let mut msg = Vec::new();
        msg.extend_from_slice(&(encrypted.len() as u32).to_be_bytes());
        msg.extend_from_slice(&encrypted);
        msg.extend_from_slice(&encode_chain(&credential.certificate, &credential.chain));
        // Sign the transcript so far plus the premaster ciphertext: binds
        // the client identity to this session.
        let mut to_sign = transcript.clone();
        to_sign.update(&encrypted);
        let signature = credential.key.sign(&to_sign.finalize());
        msg.extend_from_slice(&(signature.len() as u32).to_be_bytes());
        msg.extend_from_slice(&signature);
        write_frame(&mut stream, &msg)?;
        transcript.update(&msg);

        // Key derivation.
        let mut context = Vec::with_capacity(64);
        context.extend_from_slice(&client_random);
        context.extend_from_slice(&server_random);
        let master = hmac_sha256(&premaster, &context);
        let client_material = derive_key(&master, "client write", &context, 76);
        let server_material = derive_key(&master, "server write", &context, 76);

        // <- Finished (first encrypted record must open correctly)
        let mut chan = SecureStream {
            stream,
            peer_identity: server_chain[0].subject.clone(),
            peer_certificate: server_cert,
            send: Direction::from_material(&client_material),
            recv: Direction::from_material(&server_material),
            read_buffer: Vec::new(),
            read_offset: 0,
            write_buffer: Vec::new(),
        };
        let finished = chan.read_record()?;
        if finished != b"finished" {
            return Err(ChannelError::Handshake("bad finished message".into()));
        }
        chan.write_record(b"finished")?;
        Ok(chan)
    }

    /// Server side: accept a connection, presenting `credential` and
    /// verifying the client against `roots`. Returns the stream and the
    /// full client chain (the session layer stores it for delegation).
    pub fn accept<R: Rng + ?Sized>(
        mut stream: S,
        credential: &Credential,
        roots: &[Certificate],
        now: i64,
        rng: &mut R,
    ) -> Result<(Self, Vec<Certificate>), ChannelError> {
        let mut transcript = Sha256::new();

        // <- ClientHello
        let hello = read_frame(&mut stream, MAX_HANDSHAKE)?;
        transcript.update(&hello);
        if hello.len() != 8 + 32 || &hello[0..8] != MAGIC {
            return Err(ChannelError::Handshake("bad client hello".into()));
        }
        let client_random: [u8; 32] = hello[8..40].try_into().unwrap();

        // -> ServerHello
        let server_random: [u8; 32] = rng.random();
        let mut server_hello = MAGIC.to_vec();
        server_hello.extend_from_slice(&server_random);
        server_hello.extend_from_slice(&encode_chain(&credential.certificate, &credential.chain));
        write_frame(&mut stream, &server_hello)?;
        transcript.update(&server_hello);

        // <- ClientKeyExchange
        let msg = read_frame(&mut stream, MAX_HANDSHAKE)?;
        if msg.len() < 4 {
            return Err(ChannelError::Handshake("truncated key exchange".into()));
        }
        let enc_len = u32::from_be_bytes(msg[0..4].try_into().unwrap()) as usize;
        if msg.len() < 4 + enc_len {
            return Err(ChannelError::Handshake("truncated premaster".into()));
        }
        let encrypted = &msg[4..4 + enc_len];
        let premaster = credential
            .key
            .decrypt(encrypted)
            .map_err(|e| ChannelError::Handshake(format!("premaster decryption: {e}")))?;
        if premaster.len() != 48 {
            return Err(ChannelError::Handshake("bad premaster length".into()));
        }

        // Client chain + signature.
        let rest = &msg[4 + enc_len..];
        let client_chain = decode_chain(rest)?;
        // Find where the chain ended to locate the signature.
        let mut offset = 4;
        for _ in 0..u32::from_be_bytes(rest[0..4].try_into().unwrap()) {
            let len = u32::from_be_bytes(rest[offset..offset + 4].try_into().unwrap()) as usize;
            offset += 4 + len;
        }
        if rest.len() < offset + 4 {
            return Err(ChannelError::Handshake("missing signature".into()));
        }
        let sig_len = u32::from_be_bytes(rest[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 4;
        if rest.len() < offset + sig_len {
            return Err(ChannelError::Handshake("truncated signature".into()));
        }
        let signature = &rest[offset..offset + sig_len];

        let client_identity = verify_chain(&client_chain, roots, now)?;
        let mut to_sign = transcript.clone();
        to_sign.update(encrypted);
        client_chain[0]
            .public_key
            .verify(&to_sign.finalize(), signature)
            .map_err(|_| ChannelError::Handshake("client transcript signature invalid".into()))?;
        transcript.update(&msg);

        // Key derivation (mirror of the client).
        let mut context = Vec::with_capacity(64);
        context.extend_from_slice(&client_random);
        context.extend_from_slice(&server_random);
        let master = hmac_sha256(&premaster, &context);
        let client_material = derive_key(&master, "client write", &context, 76);
        let server_material = derive_key(&master, "server write", &context, 76);

        let mut chan = SecureStream {
            stream,
            peer_identity: client_identity,
            peer_certificate: client_chain[0].clone(),
            send: Direction::from_material(&server_material),
            recv: Direction::from_material(&client_material),
            read_buffer: Vec::new(),
            read_offset: 0,
            write_buffer: Vec::new(),
        };
        chan.write_record(b"finished")?;
        let finished = chan.read_record()?;
        if finished != b"finished" {
            return Err(ChannelError::Handshake("bad finished message".into()));
        }
        Ok((chan, client_chain))
    }

    /// The peer's effective identity DN (end entity below any proxies).
    pub fn peer_identity(&self) -> &DistinguishedName {
        &self.peer_identity
    }

    /// The leaf certificate the peer presented.
    pub fn peer_certificate(&self) -> &Certificate {
        &self.peer_certificate
    }

    /// Unwrap the inner stream (for shutdown).
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Borrow the inner stream (e.g. to set socket options).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    fn write_record(&mut self, plaintext: &[u8]) -> Result<(), ChannelError> {
        debug_assert!(plaintext.len() <= MAX_RECORD);
        let record = self.send.seal(plaintext);
        write_frame(&mut self.stream, &record)?;
        Ok(())
    }

    fn read_record(&mut self) -> Result<Vec<u8>, ChannelError> {
        let record = read_frame(&mut self.stream, MAX_RECORD + MAC_LEN + 16)?;
        self.recv.open(&record)
    }
}

impl<S: Read + Write> Read for SecureStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.read_offset == self.read_buffer.len() {
            match self.read_record() {
                Ok(plaintext) => {
                    self.read_buffer = plaintext;
                    self.read_offset = 0;
                    if self.read_buffer.is_empty() {
                        return Ok(0);
                    }
                }
                Err(ChannelError::Io(e)) => {
                    // EOF on a record boundary is a clean close.
                    if e.kind() == io::ErrorKind::UnexpectedEof {
                        return Ok(0);
                    }
                    return Err(e);
                }
                Err(other) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        other.to_string(),
                    ))
                }
            }
        }
        let n = buf.len().min(self.read_buffer.len() - self.read_offset);
        buf[..n].copy_from_slice(&self.read_buffer[self.read_offset..self.read_offset + n]);
        self.read_offset += n;
        Ok(n)
    }
}

impl<S: Read + Write> Write for SecureStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_buffer.extend_from_slice(buf);
        // Flush full records eagerly to bound memory.
        while self.write_buffer.len() >= MAX_RECORD {
            let chunk: Vec<u8> = self.write_buffer.drain(..MAX_RECORD).collect();
            self.write_record(&chunk)
                .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.write_buffer.is_empty() {
            let chunk = std::mem::take(&mut self.write_buffer);
            self.write_record(&chunk)
                .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
        }
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use crate::dn::DistinguishedName;
    use crate::rsa;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::{TcpListener, TcpStream};

    const NOW: i64 = 1_118_836_800;

    fn dn(text: &str) -> DistinguishedName {
        DistinguishedName::parse(text).unwrap()
    }

    struct TestPki {
        ca: CertificateAuthority,
        server: Credential,
        client: Credential,
    }

    fn test_pki(seed: u64) -> TestPki {
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = CertificateAuthority::new(&mut rng, dn("/O=test/CN=CA"), NOW, 3650);
        let server_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let server_cert = ca.issue(
            dn("/O=test/OU=Services/CN=host\\/www.mysite.edu"),
            &server_kp.public,
            NOW,
            365,
        );
        let client_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let client_cert = ca.issue(
            dn("/O=test/OU=People/CN=alice"),
            &client_kp.public,
            NOW,
            365,
        );
        TestPki {
            ca,
            server: Credential {
                certificate: server_cert,
                key: server_kp.private,
                chain: vec![],
            },
            client: Credential {
                certificate: client_cert,
                key: client_kp.private,
                chain: vec![],
            },
        }
    }

    type ClientResult = Result<SecureStream<TcpStream>, ChannelError>;
    type ServerResult = Result<(SecureStream<TcpStream>, Vec<Certificate>), ChannelError>;

    /// Run client and server handshakes over a real TCP socket pair.
    fn handshake_pair(
        pki: &TestPki,
        client_cred: &Credential,
        now: i64,
    ) -> (ClientResult, ServerResult) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let roots = vec![pki.ca.certificate.clone()];
        let server_cred = pki.server.clone();
        let server_roots = roots.clone();
        let server = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut rng = StdRng::seed_from_u64(1000);
            SecureStream::accept(sock, &server_cred, &server_roots, now, &mut rng)
        });
        let sock = TcpStream::connect(addr).unwrap();
        let mut rng = StdRng::seed_from_u64(2000);
        let client = SecureStream::connect(sock, client_cred, &roots, now, &mut rng);
        (client, server.join().unwrap())
    }

    #[test]
    fn mutual_authentication_and_data_flow() {
        let pki = test_pki(1);
        let (client, server) = handshake_pair(&pki, &pki.client, NOW + 10);
        let mut client = client.unwrap();
        let (mut server, chain) = server.unwrap();

        assert_eq!(
            server.peer_identity().to_string(),
            "/O=test/OU=People/CN=alice"
        );
        assert_eq!(
            client.peer_identity().to_string(),
            "/O=test/OU=Services/CN=host\\/www.mysite.edu"
        );
        assert_eq!(chain.len(), 1);

        // Client -> server.
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 18];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"GET / HTTP/1.1\r\n\r\n");

        // Server -> client, multiple records.
        let big = vec![0x42u8; MAX_RECORD * 2 + 100];
        server.write_all(&big).unwrap();
        server.flush().unwrap();
        let mut received = vec![0u8; big.len()];
        client.read_exact(&mut received).unwrap();
        assert_eq!(received, big);
    }

    #[test]
    fn proxy_credential_authenticates_as_user() {
        let pki = test_pki(2);
        let mut rng = StdRng::seed_from_u64(77);
        let proxy = pki.client.delegate_proxy(&mut rng, NOW, 3600);
        let (client, server) = handshake_pair(&pki, &proxy, NOW + 10);
        client.unwrap();
        let (server, chain) = server.unwrap();
        // Effective identity is alice, not the proxy DN.
        assert_eq!(
            server.peer_identity().to_string(),
            "/O=test/OU=People/CN=alice"
        );
        assert_eq!(
            chain[0].subject.to_string(),
            "/O=test/OU=People/CN=alice/CN=proxy"
        );
    }

    #[test]
    fn expired_client_cert_rejected() {
        let pki = test_pki(3);
        let (client, server) = handshake_pair(&pki, &pki.client, NOW + 400 * 86_400);
        assert!(server.is_err());
        // The client may fail at various points (server cert also expired
        // at this time) — the important part is no channel establishes.
        assert!(client.is_err());
    }

    #[test]
    fn untrusted_client_rejected() {
        let pki = test_pki(4);
        // A client with a credential from a different CA.
        let rogue_pki = test_pki(5);
        let (_client, server) = handshake_pair(&pki, &rogue_pki.client, NOW + 10);
        match server {
            Err(ChannelError::Cert(_))
            | Err(ChannelError::Handshake(_))
            | Err(ChannelError::Io(_)) => {}
            Ok(_) => panic!("rogue client must not authenticate"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn tampered_record_detected() {
        let pki = test_pki(6);
        let (client, server) = handshake_pair(&pki, &pki.client, NOW + 10);
        let mut client = client.unwrap();
        let (server, _) = server.unwrap();
        // Write a record, then corrupt the raw stream by writing garbage
        // directly to the underlying socket.
        client.write_all(b"hello").unwrap();
        client.flush().unwrap();
        let mut raw = client.into_inner();
        // A fake "record": length prefix + garbage.
        raw.write_all(&20u32.to_be_bytes()).unwrap();
        raw.write_all(&[0u8; 20]).unwrap();
        raw.flush().unwrap();

        let mut server = server;
        let mut buf = [0u8; 5];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        let mut more = [0u8; 1];
        let err = server.read(&mut more).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_hello_rejected() {
        let pki = test_pki(7);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let roots = vec![pki.ca.certificate.clone()];
        let cred = pki.server.clone();
        let server = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            SecureStream::accept(sock, &cred, &roots, NOW, &mut rng)
        });
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&40u32.to_be_bytes()).unwrap();
        sock.write_all(&[0xAB; 40]).unwrap();
        assert!(matches!(
            server.join().unwrap(),
            Err(ChannelError::Handshake(_))
        ));
    }

    #[test]
    fn oversized_handshake_frame_rejected() {
        let pki = test_pki(8);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let roots = vec![pki.ca.certificate.clone()];
        let cred = pki.server.clone();
        let server = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            SecureStream::accept(sock, &cred, &roots, NOW, &mut rng)
        });
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        assert!(matches!(
            server.join().unwrap(),
            Err(ChannelError::Handshake(_))
        ));
    }
}
