//! Textbook RSA with PKCS#1 v1.5-style padding, on [`crate::bigint`].
//!
//! This is the asymmetric primitive behind certificates, proxy delegation,
//! and the secure-channel handshake. Key generation uses Miller–Rabin
//! primes; private-key operations use the CRT optimization. Signatures are
//! RSASSA-PKCS1-v1_5 over SHA-256; encryption is RSAES-PKCS1-v1_5.
//!
//! **Security disclaimer** (also in DESIGN.md): this implementation is not
//! constant-time and uses short keys by default so that test suites and
//! benchmarks run quickly. It simulates the *cost structure and semantics*
//! of the paper's X.509/SSL stack; it must not protect real data.

use rand::{Rng, RngExt};

use crate::bigint::BigUint;
use crate::sha256::sha256;

/// Default modulus size for generated keys (bits). 512 keeps handshakes
/// affordable in tests; benchmarks can request larger sizes.
pub const DEFAULT_KEY_BITS: usize = 512;

/// The public exponent, the conventional F4.
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// RSA errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the modulus.
    MessageTooLong,
    /// Ciphertext or signature does not match the modulus size.
    InvalidLength,
    /// Padding check failed on decryption.
    PaddingError,
    /// Signature verification failed.
    BadSignature,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message too long for RSA modulus"),
            RsaError::InvalidLength => write!(f, "input length does not match modulus"),
            RsaError::PaddingError => write!(f, "PKCS#1 padding check failed"),
            RsaError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
}

/// An RSA private key (with CRT parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateKey {
    /// The public half.
    pub public: PublicKey,
    /// Private exponent.
    pub d: BigUint,
    /// First prime.
    pub p: BigUint,
    /// Second prime.
    pub q: BigUint,
    /// `d mod (p-1)`.
    pub dp: BigUint,
    /// `d mod (q-1)`.
    pub dq: BigUint,
    /// `q^{-1} mod p`.
    pub qinv: BigUint,
}

/// A generated key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// Public key.
    pub public: PublicKey,
    /// Private key.
    pub private: PrivateKey,
}

impl PublicKey {
    /// Modulus size in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_length().div_ceil(8)
    }

    /// Raw RSA public operation `m^e mod n`.
    fn raw(&self, m: &BigUint) -> BigUint {
        m.modpow(&self.e, &self.n)
    }

    /// Encrypt with RSAES-PKCS1-v1_5 (type 2 padding).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        message: &[u8],
    ) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_len();
        if message.len() + 11 > k {
            return Err(RsaError::MessageTooLong);
        }
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        for _ in 0..(k - message.len() - 3) {
            // Nonzero random padding bytes.
            loop {
                let b: u8 = rng.random();
                if b != 0 {
                    em.push(b);
                    break;
                }
            }
        }
        em.push(0x00);
        em.extend_from_slice(message);
        let c = self.raw(&BigUint::from_bytes_be(&em));
        Ok(c.to_bytes_be_padded(k))
    }

    /// Verify an RSASSA-PKCS1-v1_5 SHA-256 signature.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), RsaError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(RsaError::InvalidLength);
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(RsaError::InvalidLength);
        }
        let em = self.raw(&s).to_bytes_be_padded(k);
        let expected = emsa_pkcs1_v15(message, k)?;
        if em == expected {
            Ok(())
        } else {
            Err(RsaError::BadSignature)
        }
    }
}

impl PrivateKey {
    /// Raw RSA private operation using the CRT.
    fn raw(&self, c: &BigUint) -> BigUint {
        // m1 = c^dp mod p ; m2 = c^dq mod q
        let m1 = c.modpow(&self.dp, &self.p);
        let m2 = c.modpow(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p  (lift m2 to avoid underflow)
        let m1_lifted = if m1 >= m2 {
            m1.sub(&m2)
        } else {
            m1.add(&self.p).sub(&m2.rem(&self.p))
        };
        let h = self.qinv.mulmod(&m1_lifted.rem(&self.p), &self.p);
        // m = m2 + h*q
        m2.add(&h.mul(&self.q))
    }

    /// Decrypt RSAES-PKCS1-v1_5.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(RsaError::InvalidLength);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(RsaError::InvalidLength);
        }
        let em = self.raw(&c).to_bytes_be_padded(k);
        if em.len() < 11 || em[0] != 0x00 || em[1] != 0x02 {
            return Err(RsaError::PaddingError);
        }
        // Find the 0x00 separator after at least 8 padding bytes.
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::PaddingError)?;
        if sep < 8 {
            return Err(RsaError::PaddingError);
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Sign with RSASSA-PKCS1-v1_5 over SHA-256.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15(message, k).expect("modulus too small for SHA-256 signature");
        let m = BigUint::from_bytes_be(&em);
        self.raw(&m).to_bytes_be_padded(k)
    }
}

/// EMSA-PKCS1-v1_5 encoding: `00 01 FF..FF 00 <DigestInfo(SHA-256)> <hash>`.
fn emsa_pkcs1_v15(message: &[u8], k: usize) -> Result<Vec<u8>, RsaError> {
    /// DER prefix for a SHA-256 DigestInfo.
    const SHA256_PREFIX: [u8; 19] = [
        0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
        0x05, 0x00, 0x04, 0x20,
    ];
    let digest = sha256(message);
    let t_len = SHA256_PREFIX.len() + digest.len();
    if k < t_len + 11 {
        return Err(RsaError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xFF);
    em.push(0x00);
    em.extend_from_slice(&SHA256_PREFIX);
    em.extend_from_slice(&digest);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

/// Generate a key pair with the given modulus size in bits.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> KeyPair {
    assert!(bits >= 384, "modulus too small for SHA-256 signatures");
    let e = BigUint::from_u64(PUBLIC_EXPONENT);
    loop {
        let p = BigUint::random_prime(rng, bits / 2);
        let q = BigUint::random_prime(rng, bits - bits / 2);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        if n.bit_length() != bits {
            continue;
        }
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        let phi = p1.mul(&q1);
        let d = match e.modinv(&phi) {
            Some(d) => d,
            None => continue, // gcd(e, phi) != 1; rare — pick new primes
        };
        let dp = d.rem(&p1);
        let dq = d.rem(&q1);
        let qinv = match q.modinv(&p) {
            Some(x) => x,
            None => continue,
        };
        let public = PublicKey { n, e: e.clone() };
        let private = PrivateKey {
            public: public.clone(),
            d,
            p,
            q,
            dp,
            dq,
            qinv,
        };
        return KeyPair { public, private };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> KeyPair {
        let mut rng = StdRng::seed_from_u64(20050615);
        generate(&mut rng, DEFAULT_KEY_BITS)
    }

    #[test]
    fn keygen_invariants() {
        let kp = keypair();
        assert_eq!(kp.public.n.bit_length(), DEFAULT_KEY_BITS);
        assert_eq!(kp.public.e, BigUint::from_u64(PUBLIC_EXPONENT));
        // d·e ≡ 1 (mod φ)
        let phi = kp
            .private
            .p
            .sub(&BigUint::one())
            .mul(&kp.private.q.sub(&BigUint::one()));
        assert_eq!(kp.private.d.mulmod(&kp.public.e, &phi), BigUint::one());
        // p·q = n
        assert_eq!(kp.private.p.mul(&kp.private.q), kp.public.n);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(1);
        for msg in [&b""[..], b"x", b"premaster-secret-0123456789abcdef"] {
            let ct = kp.public.encrypt(&mut rng, msg).unwrap();
            assert_eq!(ct.len(), kp.public.modulus_len());
            assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_randomized() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(2);
        let a = kp.public.encrypt(&mut rng, b"same message").unwrap();
        let b = kp.public.encrypt(&mut rng, b"same message").unwrap();
        assert_ne!(a, b, "PKCS#1 type 2 padding must randomize ciphertexts");
    }

    #[test]
    fn message_too_long_rejected() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(3);
        let too_long = vec![0u8; kp.public.modulus_len() - 10];
        assert_eq!(
            kp.public.encrypt(&mut rng, &too_long),
            Err(RsaError::MessageTooLong)
        );
    }

    #[test]
    fn tampered_ciphertext_fails_padding() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(4);
        let mut ct = kp.public.encrypt(&mut rng, b"secret").unwrap();
        ct[5] ^= 0xFF;
        // Either padding fails or (vanishingly unlikely) garbage decrypts;
        // padding failure is the expected outcome.
        assert!(kp.private.decrypt(&ct).is_err() || kp.private.decrypt(&ct).unwrap() != b"secret");
        assert_eq!(kp.private.decrypt(&ct[1..]), Err(RsaError::InvalidLength));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let msg = b"certificate to-be-signed bytes";
        let sig = kp.private.sign(msg);
        assert_eq!(sig.len(), kp.public.modulus_len());
        kp.public.verify(msg, &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message_and_tampering() {
        let kp = keypair();
        let sig = kp.private.sign(b"original");
        assert_eq!(
            kp.public.verify(b"forged", &sig),
            Err(RsaError::BadSignature)
        );
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(kp.public.verify(b"original", &bad).is_err());
        assert_eq!(
            kp.public.verify(b"original", &sig[1..]),
            Err(RsaError::InvalidLength)
        );
    }

    #[test]
    fn verify_rejects_other_key() {
        let kp1 = keypair();
        let mut rng = StdRng::seed_from_u64(99);
        let kp2 = generate(&mut rng, DEFAULT_KEY_BITS);
        let sig = kp1.private.sign(b"msg");
        assert!(kp2.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let m = BigUint::random_below(&mut rng, &kp.public.n);
            let crt = kp.private.raw(&m);
            let plain = m.modpow(&kp.private.d, &kp.public.n);
            assert_eq!(crt, plain);
        }
    }

    #[test]
    fn signature_deterministic() {
        let kp = keypair();
        assert_eq!(kp.private.sign(b"m"), kp.private.sign(b"m"));
    }
}
