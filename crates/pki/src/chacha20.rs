//! ChaCha20 stream cipher (RFC 8439), from scratch.
//!
//! The secure channel uses ChaCha20 for record encryption — it stands in for
//! the symmetric ciphers a 2005 SSL stack would negotiate (RC4/3DES/AES),
//! reproducing the per-byte encryption cost that the paper's informal "SSL
//! reduces performance by up to 50%" measurement reflects.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block size.
const BLOCK_LEN: usize = 64;

/// A ChaCha20 cipher instance positioned at a block counter.
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; BLOCK_LEN],
    /// Offset into `keystream` of the next unused byte (BLOCK_LEN = empty).
    offset: usize,
}

impl ChaCha20 {
    /// Create a cipher with the given key and nonce, starting at block
    /// `counter` (0 for the start of the stream).
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            state,
            keystream: [0; BLOCK_LEN],
            offset: BLOCK_LEN,
        }
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Generate the next keystream block and advance the counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, &w) in working.iter().enumerate() {
            let word = w.wrapping_add(self.state[i]);
            self.keystream[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.offset = 0;
    }

    /// XOR the keystream into `data` in place (encryption == decryption).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.offset == BLOCK_LEN {
                self.refill();
            }
            *byte ^= self.keystream[self.offset];
            self.offset += 1;
        }
    }
}

/// One-shot convenience: encrypt/decrypt `data` with a fresh cipher.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    /// RFC 8439 §2.3.2 test vector (block function) via §2.4.2 encryption.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        xor_stream(&key, &nonce, 1, &mut data);
        assert_eq!(
            to_hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut data = original.clone();
        xor_stream(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut oneshot = vec![0u8; 300];
        xor_stream(&key, &nonce, 5, &mut oneshot);

        let mut cipher = ChaCha20::new(&key, &nonce, 5);
        let mut streamed = vec![0u8; 300];
        for chunk in streamed.chunks_mut(17) {
            cipher.apply(chunk);
        }
        assert_eq!(streamed, oneshot);
    }

    #[test]
    fn different_keys_nonces_counters_differ() {
        let base = (vec![0u8; 64], [0u8; 32], [0u8; 12]);
        let mut a = base.0.clone();
        xor_stream(&base.1, &base.2, 0, &mut a);

        let mut key2 = base.1;
        key2[0] = 1;
        let mut b = base.0.clone();
        xor_stream(&key2, &base.2, 0, &mut b);
        assert_ne!(a, b);

        let mut nonce2 = base.2;
        nonce2[0] = 1;
        let mut c = base.0.clone();
        xor_stream(&base.1, &nonce2, 0, &mut c);
        assert_ne!(a, c);

        let mut d = base.0.clone();
        xor_stream(&base.1, &base.2, 1, &mut d);
        assert_ne!(a, d);
    }

    #[test]
    fn empty_input_ok() {
        let mut data: Vec<u8> = vec![];
        xor_stream(&[0; 32], &[0; 12], 0, &mut data);
        assert!(data.is_empty());
    }
}
