//! X.509-style certificates, certificate authorities, and proxy
//! certificates.
//!
//! Clarens authenticates every connection with "X509 certificate-based
//! authentication" (paper §2) and supports *proxy certificates* — "a
//! temporary certificate (public key) and unencrypted private key that can
//! be used to log into remote servers" with delegation (§2.6).
//!
//! Instead of ASN.1/DER this module uses a deterministic line-based
//! to-be-signed (TBS) encoding — the trust semantics (issuer signatures,
//! validity windows, CA flags, proxy subject-extension rules) are the part
//! of X.509 the rest of the stack depends on, and those are implemented
//! faithfully.

use std::fmt;

use rand::{Rng, RngExt};

use crate::bigint::BigUint;
use crate::dn::{AttributeType, DistinguishedName};
use crate::rsa::{self, KeyPair, PrivateKey, PublicKey, RsaError};

/// Seconds per day, for validity helpers.
pub const DAY: i64 = 86_400;

/// Certificate kind: affects what the subject key may sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertKind {
    /// A certificate authority (can issue end-entity and CA certs).
    Authority,
    /// An end entity (user or server).
    EndEntity,
    /// A proxy certificate (issued by an end entity's own key).
    Proxy,
}

impl CertKind {
    fn label(self) -> &'static str {
        match self {
            CertKind::Authority => "authority",
            CertKind::EndEntity => "end-entity",
            CertKind::Proxy => "proxy",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "authority" => Some(CertKind::Authority),
            "end-entity" => Some(CertKind::EndEntity),
            "proxy" => Some(CertKind::Proxy),
            _ => None,
        }
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Serial number, unique per issuer.
    pub serial: u64,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// Validity start (Unix seconds, inclusive).
    pub not_before: i64,
    /// Validity end (Unix seconds, exclusive).
    pub not_after: i64,
    /// Subject public key.
    pub public_key: PublicKey,
    /// What this certificate is.
    pub kind: CertKind,
    /// RSA signature over [`Certificate::tbs_bytes`] by the issuer key.
    pub signature: Vec<u8>,
}

/// Certificate validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// Signature did not verify.
    BadSignature,
    /// Certificate outside its validity window.
    Expired,
    /// Chain structure invalid (order, kinds, name chaining).
    InvalidChain(String),
    /// Serialized form unparseable.
    Malformed(String),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadSignature => write!(f, "certificate signature invalid"),
            CertError::Expired => write!(f, "certificate expired or not yet valid"),
            CertError::InvalidChain(m) => write!(f, "invalid certificate chain: {m}"),
            CertError::Malformed(m) => write!(f, "malformed certificate: {m}"),
        }
    }
}

impl std::error::Error for CertError {}

impl From<RsaError> for CertError {
    fn from(_: RsaError) -> Self {
        CertError::BadSignature
    }
}

impl Certificate {
    /// Deterministic TBS encoding, the input to the issuer's signature.
    pub fn tbs_bytes(
        serial: u64,
        subject: &DistinguishedName,
        issuer: &DistinguishedName,
        not_before: i64,
        not_after: i64,
        public_key: &PublicKey,
        kind: CertKind,
    ) -> Vec<u8> {
        format!(
            "version: 1\nserial: {serial}\nsubject: {subject}\nissuer: {issuer}\n\
             not-before: {not_before}\nnot-after: {not_after}\n\
             key-n: {}\nkey-e: {}\nkind: {}\n",
            public_key.n.to_hex(),
            public_key.e.to_hex(),
            kind.label(),
        )
        .into_bytes()
    }

    /// This certificate's own TBS bytes.
    pub fn tbs(&self) -> Vec<u8> {
        Certificate::tbs_bytes(
            self.serial,
            &self.subject,
            &self.issuer,
            self.not_before,
            self.not_after,
            &self.public_key,
            self.kind,
        )
    }

    /// Verify this certificate's signature against an issuer public key.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> Result<(), CertError> {
        issuer_key
            .verify(&self.tbs(), &self.signature)
            .map_err(|_| CertError::BadSignature)
    }

    /// Is `now` inside the validity window?
    pub fn valid_at(&self, now: i64) -> bool {
        now >= self.not_before && now < self.not_after
    }

    /// Is this a self-signed certificate (subject == issuer)?
    pub fn is_self_signed(&self) -> bool {
        self.subject == self.issuer
    }

    /// Serialize to the storable text form (TBS plus signature line).
    pub fn to_text(&self) -> String {
        let mut text = String::from_utf8(self.tbs()).expect("TBS is UTF-8");
        text.push_str(&format!(
            "signature: {}\n",
            crate::sha256::to_hex(&self.signature)
        ));
        text
    }

    /// Parse the text form produced by [`Certificate::to_text`].
    pub fn from_text(text: &str) -> Result<Self, CertError> {
        let mut serial = None;
        let mut subject = None;
        let mut issuer = None;
        let mut not_before = None;
        let mut not_after = None;
        let mut key_n = None;
        let mut key_e = None;
        let mut kind = None;
        let mut signature = None;

        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (field, value) = line
                .split_once(": ")
                .ok_or_else(|| CertError::Malformed(format!("bad line {line:?}")))?;
            match field {
                "version" => {
                    if value != "1" {
                        return Err(CertError::Malformed(format!("unknown version {value}")));
                    }
                }
                "serial" => {
                    serial = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| CertError::Malformed(format!("bad serial {value:?}")))?,
                    )
                }
                "subject" => {
                    subject = Some(
                        DistinguishedName::parse(value)
                            .map_err(|e| CertError::Malformed(e.to_string()))?,
                    )
                }
                "issuer" => {
                    issuer = Some(
                        DistinguishedName::parse(value)
                            .map_err(|e| CertError::Malformed(e.to_string()))?,
                    )
                }
                "not-before" => {
                    not_before =
                        Some(value.parse::<i64>().map_err(|_| {
                            CertError::Malformed(format!("bad not-before {value:?}"))
                        })?)
                }
                "not-after" => {
                    not_after =
                        Some(value.parse::<i64>().map_err(|_| {
                            CertError::Malformed(format!("bad not-after {value:?}"))
                        })?)
                }
                "key-n" => {
                    key_n = Some(
                        BigUint::from_hex(value)
                            .ok_or_else(|| CertError::Malformed("bad key-n".to_string()))?,
                    )
                }
                "key-e" => {
                    key_e = Some(
                        BigUint::from_hex(value)
                            .ok_or_else(|| CertError::Malformed("bad key-e".to_string()))?,
                    )
                }
                "kind" => {
                    kind = Some(
                        CertKind::from_label(value)
                            .ok_or_else(|| CertError::Malformed(format!("bad kind {value:?}")))?,
                    )
                }
                "signature" => {
                    signature = Some(
                        hex_to_bytes(value)
                            .ok_or_else(|| CertError::Malformed("bad signature hex".into()))?,
                    )
                }
                other => {
                    return Err(CertError::Malformed(format!("unknown field {other:?}")));
                }
            }
        }

        let missing = |name: &str| CertError::Malformed(format!("missing field {name}"));
        Ok(Certificate {
            serial: serial.ok_or_else(|| missing("serial"))?,
            subject: subject.ok_or_else(|| missing("subject"))?,
            issuer: issuer.ok_or_else(|| missing("issuer"))?,
            not_before: not_before.ok_or_else(|| missing("not-before"))?,
            not_after: not_after.ok_or_else(|| missing("not-after"))?,
            public_key: PublicKey {
                n: key_n.ok_or_else(|| missing("key-n"))?,
                e: key_e.ok_or_else(|| missing("key-e"))?,
            },
            kind: kind.ok_or_else(|| missing("kind"))?,
            signature: signature.ok_or_else(|| missing("signature"))?,
        })
    }
}

fn hex_to_bytes(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(text.len() / 2);
    for pair in text.as_bytes().chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// A certificate authority: a self-signed certificate plus its private key.
pub struct CertificateAuthority {
    /// The CA's self-signed certificate.
    pub certificate: Certificate,
    /// The CA signing key.
    pub key: PrivateKey,
    next_serial: std::sync::atomic::AtomicU64,
}

impl CertificateAuthority {
    /// Create a new root CA with a fresh key pair.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        name: DistinguishedName,
        now: i64,
        validity_days: i64,
    ) -> Self {
        let kp = rsa::generate(rng, rsa::DEFAULT_KEY_BITS);
        Self::with_keypair(kp, name, now, validity_days)
    }

    /// Create a root CA around an existing key pair (deterministic tests).
    pub fn with_keypair(
        kp: KeyPair,
        name: DistinguishedName,
        now: i64,
        validity_days: i64,
    ) -> Self {
        let tbs = Certificate::tbs_bytes(
            0,
            &name,
            &name,
            now,
            now + validity_days * DAY,
            &kp.public,
            CertKind::Authority,
        );
        let signature = kp.private.sign(&tbs);
        let certificate = Certificate {
            serial: 0,
            subject: name.clone(),
            issuer: name,
            not_before: now,
            not_after: now + validity_days * DAY,
            public_key: kp.public,
            kind: CertKind::Authority,
            signature,
        };
        CertificateAuthority {
            certificate,
            key: kp.private,
            next_serial: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// The serial number the next issued certificate will get.
    pub fn next_serial(&self) -> u64 {
        self.next_serial.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Set the next serial number (CAs persisted across processes restore
    /// their counter so serials stay unique per issuer).
    pub fn set_next_serial(&self, serial: u64) {
        self.next_serial
            .store(serial, std::sync::atomic::Ordering::Relaxed);
    }

    /// Issue an end-entity (user or server) certificate.
    pub fn issue(
        &self,
        subject: DistinguishedName,
        subject_key: &PublicKey,
        now: i64,
        validity_days: i64,
    ) -> Certificate {
        self.issue_kind(
            subject,
            subject_key,
            now,
            validity_days,
            CertKind::EndEntity,
        )
    }

    /// Issue an intermediate CA certificate.
    pub fn issue_ca(
        &self,
        subject: DistinguishedName,
        subject_key: &PublicKey,
        now: i64,
        validity_days: i64,
    ) -> Certificate {
        self.issue_kind(
            subject,
            subject_key,
            now,
            validity_days,
            CertKind::Authority,
        )
    }

    fn issue_kind(
        &self,
        subject: DistinguishedName,
        subject_key: &PublicKey,
        now: i64,
        validity_days: i64,
        kind: CertKind,
    ) -> Certificate {
        let serial = self
            .next_serial
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let not_after = now + validity_days * DAY;
        let tbs = Certificate::tbs_bytes(
            serial,
            &subject,
            &self.certificate.subject,
            now,
            not_after,
            subject_key,
            kind,
        );
        Certificate {
            serial,
            subject,
            issuer: self.certificate.subject.clone(),
            not_before: now,
            not_after,
            public_key: subject_key.clone(),
            kind,
            signature: self.key.sign(&tbs),
        }
    }
}

/// A credential: a certificate plus the matching private key (what a user
/// or server holds; also the payload the proxy service stores).
#[derive(Debug, Clone)]
pub struct Credential {
    /// The certificate.
    pub certificate: Certificate,
    /// The matching private key.
    pub key: PrivateKey,
    /// The issuing chain, leaf-first, excluding `certificate` itself and
    /// excluding the trust root (empty for directly CA-issued certs).
    pub chain: Vec<Certificate>,
}

impl Credential {
    /// Create a proxy credential from this one (paper §2.6): generates a
    /// fresh short-lived key pair whose certificate is signed by *this*
    /// credential's key, with the subject extended by `/CN=proxy`.
    pub fn delegate_proxy<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        now: i64,
        validity_secs: i64,
    ) -> Credential {
        let kp = rsa::generate(rng, rsa::DEFAULT_KEY_BITS);
        let subject = self
            .certificate
            .subject
            .with_component(AttributeType::CommonName, "proxy");
        let serial = rng.random::<u64>();
        let tbs = Certificate::tbs_bytes(
            serial,
            &subject,
            &self.certificate.subject,
            now,
            now + validity_secs,
            &kp.public,
            CertKind::Proxy,
        );
        let certificate = Certificate {
            serial,
            subject,
            issuer: self.certificate.subject.clone(),
            not_before: now,
            not_after: now + validity_secs,
            public_key: kp.public,
            kind: CertKind::Proxy,
            signature: self.key.sign(&tbs),
        };
        let mut chain = vec![self.certificate.clone()];
        chain.extend(self.chain.iter().cloned());
        Credential {
            certificate,
            key: kp.private,
            chain,
        }
    }

    /// The *effective identity* of this credential: for proxies, the DN of
    /// the end entity at the bottom of the delegation chain (ACLs and VO
    /// membership are evaluated against the user, not the proxy — this is
    /// the whole point of delegation).
    pub fn identity(&self) -> &DistinguishedName {
        for link in &self.chain {
            if link.kind == CertKind::EndEntity {
                return &link.subject;
            }
        }
        &self.certificate.subject
    }
}

/// Validate a certificate chain against a set of trust roots.
///
/// `chain` is leaf-first: `chain[0]` is the presented certificate, each
/// subsequent entry is its issuer, and the last entry must chain to (or be)
/// one of `roots`. Proxy rules: a proxy's issuer must be the end entity (or
/// previous proxy) whose subject prefixes the proxy's subject; proxies can
/// issue further proxies but never CA or end-entity certificates.
///
/// On success returns the *effective identity* DN (the end entity below any
/// proxies).
pub fn verify_chain(
    chain: &[Certificate],
    roots: &[Certificate],
    now: i64,
) -> Result<DistinguishedName, CertError> {
    if chain.is_empty() {
        return Err(CertError::InvalidChain("empty chain".into()));
    }
    // Every certificate must be in-validity.
    for cert in chain {
        if !cert.valid_at(now) {
            return Err(CertError::Expired);
        }
    }
    // Walk leaf -> root.
    for i in 0..chain.len() {
        let cert = &chain[i];
        let issuer_cert: &Certificate = if i + 1 < chain.len() {
            &chain[i + 1]
        } else {
            // Last link: must be signed by a trust root (or be one).
            let root = roots
                .iter()
                .find(|r| r.subject == cert.issuer)
                .ok_or_else(|| {
                    CertError::InvalidChain(format!("no trust root for issuer {}", cert.issuer))
                })?;
            if !root.valid_at(now) {
                return Err(CertError::Expired);
            }
            cert.verify_signature(&root.public_key)?;
            continue;
        };
        if issuer_cert.subject != cert.issuer {
            return Err(CertError::InvalidChain(format!(
                "issuer name mismatch: cert issued by {}, next link is {}",
                cert.issuer, issuer_cert.subject
            )));
        }
        // Kind rules.
        match (cert.kind, issuer_cert.kind) {
            (CertKind::Proxy, CertKind::EndEntity) | (CertKind::Proxy, CertKind::Proxy) => {
                if !cert.subject.has_prefix(&issuer_cert.subject) {
                    return Err(CertError::InvalidChain(
                        "proxy subject must extend issuer subject".into(),
                    ));
                }
            }
            (CertKind::EndEntity, CertKind::Authority)
            | (CertKind::Authority, CertKind::Authority) => {}
            (kind, issuer_kind) => {
                return Err(CertError::InvalidChain(format!(
                    "{} certificate cannot be issued by {} certificate",
                    kind.label(),
                    issuer_kind.label()
                )));
            }
        }
        cert.verify_signature(&issuer_cert.public_key)?;
    }

    // Effective identity: the first end entity from the leaf down.
    for cert in chain {
        if cert.kind == CertKind::EndEntity {
            return Ok(cert.subject.clone());
        }
    }
    Ok(chain[0].subject.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: i64 = 1_118_836_800; // 2005-06-15

    fn dn(text: &str) -> DistinguishedName {
        DistinguishedName::parse(text).unwrap()
    }

    fn test_ca(seed: u64) -> CertificateAuthority {
        let mut rng = StdRng::seed_from_u64(seed);
        CertificateAuthority::new(&mut rng, dn("/O=doesciencegrid.org/CN=Test CA"), NOW, 3650)
    }

    fn user_credential(ca: &CertificateAuthority, name: &str, seed: u64) -> Credential {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let cert = ca.issue(dn(name), &kp.public, NOW, 365);
        Credential {
            certificate: cert,
            key: kp.private,
            chain: vec![],
        }
    }

    #[test]
    fn ca_self_signed() {
        let ca = test_ca(1);
        assert!(ca.certificate.is_self_signed());
        ca.certificate
            .verify_signature(&ca.certificate.public_key)
            .unwrap();
        assert_eq!(ca.certificate.kind, CertKind::Authority);
    }

    #[test]
    fn issue_and_verify_user_cert() {
        let ca = test_ca(2);
        let user = user_credential(
            &ca,
            "/O=doesciencegrid.org/OU=People/CN=John Smith 12345",
            3,
        );
        user.certificate
            .verify_signature(&ca.certificate.public_key)
            .unwrap();
        let id = verify_chain(
            std::slice::from_ref(&user.certificate),
            std::slice::from_ref(&ca.certificate),
            NOW + DAY,
        )
        .unwrap();
        assert_eq!(id, user.certificate.subject);
    }

    #[test]
    fn expired_cert_rejected() {
        let ca = test_ca(4);
        let user = user_credential(&ca, "/O=x/CN=u", 5);
        let roots = [ca.certificate.clone()];
        assert_eq!(
            verify_chain(
                std::slice::from_ref(&user.certificate),
                &roots,
                NOW + 366 * DAY
            ),
            Err(CertError::Expired)
        );
        assert_eq!(
            verify_chain(std::slice::from_ref(&user.certificate), &roots, NOW - 1),
            Err(CertError::Expired)
        );
    }

    #[test]
    fn unknown_issuer_rejected() {
        let ca1 = test_ca(6);
        let user = user_credential(&ca1, "/O=x/CN=u", 8);
        // A root with a different subject: no candidate issuer at all.
        let mut rng = StdRng::seed_from_u64(7);
        let other_ca = CertificateAuthority::new(&mut rng, dn("/O=cern.ch/CN=Other CA"), NOW, 3650);
        match verify_chain(
            std::slice::from_ref(&user.certificate),
            &[other_ca.certificate],
            NOW + 1,
        ) {
            Err(CertError::InvalidChain(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        // A root with the *same* subject but a different key: the name
        // matches, the signature must not.
        let impostor = test_ca(7); // same DN as test_ca(6)
        match verify_chain(&[user.certificate], &[impostor.certificate], NOW + 1) {
            Err(CertError::BadSignature) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forged_signature_rejected() {
        let ca = test_ca(9);
        let mut user = user_credential(&ca, "/O=x/CN=u", 10);
        user.certificate.subject = dn("/O=x/CN=admin"); // tamper
        assert!(verify_chain(&[user.certificate], &[ca.certificate], NOW + 1).is_err());
    }

    #[test]
    fn proxy_delegation() {
        let ca = test_ca(11);
        let user = user_credential(&ca, "/O=org/OU=People/CN=alice", 12);
        let mut rng = StdRng::seed_from_u64(13);
        let proxy = user.delegate_proxy(&mut rng, NOW + 10, 12 * 3600);

        assert_eq!(
            proxy.certificate.subject.to_string(),
            "/O=org/OU=People/CN=alice/CN=proxy"
        );
        assert_eq!(proxy.certificate.kind, CertKind::Proxy);
        // Chain: proxy -> user -> CA root.
        let mut chain = vec![proxy.certificate.clone()];
        chain.extend(proxy.chain.clone());
        let id = verify_chain(&chain, std::slice::from_ref(&ca.certificate), NOW + 20).unwrap();
        // The effective identity is the *user*, not the proxy.
        assert_eq!(id, user.certificate.subject);
        assert_eq!(proxy.identity(), &user.certificate.subject);
    }

    #[test]
    fn second_level_proxy() {
        let ca = test_ca(14);
        let user = user_credential(&ca, "/O=org/CN=bob", 15);
        let mut rng = StdRng::seed_from_u64(16);
        let p1 = user.delegate_proxy(&mut rng, NOW, 3600);
        let p2 = p1.delegate_proxy(&mut rng, NOW, 1800);
        assert_eq!(
            p2.certificate.subject.to_string(),
            "/O=org/CN=bob/CN=proxy/CN=proxy"
        );
        let mut chain = vec![p2.certificate.clone()];
        chain.extend(p2.chain.clone());
        let id = verify_chain(&chain, std::slice::from_ref(&ca.certificate), NOW + 5).unwrap();
        assert_eq!(id, user.certificate.subject);
    }

    #[test]
    fn proxy_expires_before_user_cert() {
        let ca = test_ca(17);
        let user = user_credential(&ca, "/O=org/CN=carol", 18);
        let mut rng = StdRng::seed_from_u64(19);
        let proxy = user.delegate_proxy(&mut rng, NOW, 3600);
        let mut chain = vec![proxy.certificate.clone()];
        chain.extend(proxy.chain.clone());
        // After the proxy lifetime but well within the user cert lifetime.
        assert_eq!(
            verify_chain(&chain, std::slice::from_ref(&ca.certificate), NOW + 7200),
            Err(CertError::Expired)
        );
    }

    #[test]
    fn proxy_cannot_issue_end_entity() {
        let ca = test_ca(20);
        let user = user_credential(&ca, "/O=org/CN=dave", 21);
        let mut rng = StdRng::seed_from_u64(22);
        let proxy = user.delegate_proxy(&mut rng, NOW, 3600);

        // Hand-craft an end-entity cert "issued" by the proxy key.
        let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let subject = dn("/O=org/CN=mallory");
        let tbs = Certificate::tbs_bytes(
            99,
            &subject,
            &proxy.certificate.subject,
            NOW,
            NOW + DAY,
            &kp.public,
            CertKind::EndEntity,
        );
        let rogue = Certificate {
            serial: 99,
            subject,
            issuer: proxy.certificate.subject.clone(),
            not_before: NOW,
            not_after: NOW + DAY,
            public_key: kp.public,
            kind: CertKind::EndEntity,
            signature: proxy.key.sign(&tbs),
        };
        let mut chain = vec![rogue, proxy.certificate.clone()];
        chain.extend(proxy.chain.clone());
        match verify_chain(&chain, std::slice::from_ref(&ca.certificate), NOW + 1) {
            Err(CertError::InvalidChain(msg)) => {
                assert!(msg.contains("cannot be issued"), "{msg}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn proxy_subject_must_extend_issuer() {
        let ca = test_ca(23);
        let user = user_credential(&ca, "/O=org/CN=erin", 24);
        let mut rng = StdRng::seed_from_u64(25);
        // Craft a proxy whose subject is NOT an extension of the user DN.
        let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let subject = dn("/O=org/CN=impostor/CN=proxy");
        let tbs = Certificate::tbs_bytes(
            7,
            &subject,
            &user.certificate.subject,
            NOW,
            NOW + 3600,
            &kp.public,
            CertKind::Proxy,
        );
        let bad_proxy = Certificate {
            serial: 7,
            subject,
            issuer: user.certificate.subject.clone(),
            not_before: NOW,
            not_after: NOW + 3600,
            public_key: kp.public,
            kind: CertKind::Proxy,
            signature: user.key.sign(&tbs),
        };
        let chain = vec![bad_proxy, user.certificate.clone()];
        match verify_chain(&chain, std::slice::from_ref(&ca.certificate), NOW + 1) {
            Err(CertError::InvalidChain(msg)) => assert!(msg.contains("extend"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn intermediate_ca_chain() {
        let root = test_ca(26);
        let mut rng = StdRng::seed_from_u64(27);
        let inter_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let inter_cert = root.issue_ca(dn("/O=org/CN=Intermediate CA"), &inter_kp.public, NOW, 730);
        let inter = CertificateAuthority::with_keypair(
            KeyPair {
                public: inter_kp.public.clone(),
                private: inter_kp.private.clone(),
            },
            dn("/O=org/CN=Intermediate CA"),
            NOW,
            730,
        );
        // Re-issue via the intermediate (with_keypair made it self-signed;
        // we use its key but present the root-issued cert in the chain).
        let user_kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let user_cert = inter.issue(dn("/O=org/CN=frank"), &user_kp.public, NOW, 365);
        let chain = vec![user_cert, inter_cert];
        let id = verify_chain(&chain, std::slice::from_ref(&root.certificate), NOW + 1).unwrap();
        assert_eq!(id.to_string(), "/O=org/CN=frank");
    }

    #[test]
    fn text_roundtrip() {
        let ca = test_ca(28);
        let user = user_credential(&ca, "/O=org/OU=People/CN=grace", 29);
        let text = user.certificate.to_text();
        let parsed = Certificate::from_text(&text).unwrap();
        assert_eq!(parsed, user.certificate);
        // Signature still verifies after round-trip.
        parsed.verify_signature(&ca.certificate.public_key).unwrap();
    }

    #[test]
    fn malformed_text_rejected() {
        assert!(Certificate::from_text("").is_err());
        assert!(Certificate::from_text("version: 2\n").is_err());
        assert!(Certificate::from_text("nonsense").is_err());
        let ca = test_ca(30);
        let text = ca.certificate.to_text();
        // Drop the signature line.
        let without_sig: String = text
            .lines()
            .filter(|l| !l.starts_with("signature"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            Certificate::from_text(&without_sig),
            Err(CertError::Malformed(_))
        ));
    }

    #[test]
    fn serial_numbers_increment() {
        let ca = test_ca(31);
        let mut rng = StdRng::seed_from_u64(32);
        let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
        let c1 = ca.issue(dn("/O=o/CN=a"), &kp.public, NOW, 1);
        let c2 = ca.issue(dn("/O=o/CN=b"), &kp.public, NOW, 1);
        assert_ne!(c1.serial, c2.serial);
    }

    #[test]
    fn empty_chain_rejected() {
        let ca = test_ca(33);
        assert!(verify_chain(&[], std::slice::from_ref(&ca.certificate), NOW).is_err());
    }
}
