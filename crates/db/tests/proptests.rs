//! Property tests for the store: an arbitrary op sequence applied to a
//! persistent store and replayed through WAL recovery must equal the same
//! sequence applied to a plain in-memory model.

use proptest::prelude::*;

use clarens_db::log::{decode_op, encode_op, LogOp};
use clarens_db::Store;

#[derive(Debug, Clone)]
enum Op {
    Put(String, String, Vec<u8>),
    Delete(String, String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let bucket = prop_oneof![Just("a".to_string()), Just("b".to_string())];
    let key = "[a-z]{1,4}";
    prop_oneof![
        (
            bucket.clone(),
            key,
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(b, k, v)| Op::Put(b, k, v)),
        (bucket, "[a-z]{1,4}").prop_map(|(b, k)| Op::Delete(b, k)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wal_replay_equals_model(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        // Distinct per case to avoid collisions across parallel runs.
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "clarens-db-prop-{}-{case}.wal",
            std::process::id(),
        ));
        let _ = std::fs::remove_file(&path);

        let mut model: std::collections::BTreeMap<(String, String), Vec<u8>> =
            Default::default();
        {
            let store = Store::open(&path).unwrap();
            for op in &ops {
                match op {
                    Op::Put(b, k, v) => {
                        store.put(b, k, v.clone()).unwrap();
                        model.insert((b.clone(), k.clone()), v.clone());
                    }
                    Op::Delete(b, k) => {
                        store.delete(b, k).unwrap();
                        model.remove(&(b.clone(), k.clone()));
                    }
                }
            }
            store.sync().unwrap();
        }
        // Reopen: recovered state must equal the model.
        let store = Store::open(&path).unwrap();
        for ((b, k), v) in &model {
            let got = store.get(b, k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        for bucket in ["a", "b"] {
            let live: usize =
                model.keys().filter(|(b, _)| b == bucket).count();
            prop_assert_eq!(store.len(bucket), live);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn logop_roundtrip(
        bucket in "[a-z]{1,8}",
        key in "[a-z0-9./]{0,16}",
        value in proptest::collection::vec(any::<u8>(), 0..64),
        is_put in any::<bool>(),
    ) {
        let op = if is_put {
            LogOp::Put { bucket, key, value }
        } else {
            LogOp::Delete { bucket, key }
        };
        prop_assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
    }

    #[test]
    fn decoder_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_op(&payload);
    }

    #[test]
    fn scan_prefix_equals_filter(
        keys in proptest::collection::btree_set("[a-z.]{1,6}", 0..20),
        prefix in "[a-z.]{0,3}",
    ) {
        let store = Store::in_memory();
        for k in &keys {
            store.put("b", k, k.as_bytes().to_vec()).unwrap();
        }
        let scanned: Vec<String> =
            store.scan_prefix("b", &prefix).into_iter().map(|(k, _)| k).collect();
        let expected: Vec<String> =
            keys.iter().filter(|k| k.starts_with(&prefix)).cloned().collect();
        prop_assert_eq!(scanned, expected);
    }
}
