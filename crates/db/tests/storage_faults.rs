//! Failure-mode regressions for the storage engine, driven through the
//! `clarens-faults` failpoints:
//!
//! * a leader's fsync failure must poison every member of its group-commit
//!   batch — no follower may report success for an append the failed sync
//!   was supposed to cover, and the store must degrade to read-only;
//! * a replication read racing a background compaction must never observe
//!   the rename window (new file bytes labeled with the old epoch, or a
//!   torn view of either file).
//!
//! Global (`with`) arming is safe here: `db.wal.fsync` only fires for the
//! durable store in the poison test (the race test's store never fsyncs on
//! the append path), and `db.compact.swap` only fires inside compaction,
//! which the poison test never runs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use clarens_db::log::decode_stream;
use clarens_db::{is_degraded_error, LogOp, StorageOptions, Store};

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "clarens-db-faults-{}-{name}.db",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Satellite regression: with group commit on, a failed leader fsync must
/// fail the *whole batch*. Every concurrent writer gets an error (the
/// injected fsync failure, the poisoned-group error, or the degraded-store
/// error once the store poisons itself) — no writer may be told its append
/// is durable, and none of the failed appends may be visible in memory.
#[test]
fn group_commit_fsync_failure_poisons_whole_batch() {
    let path = temp_path("poison");
    let store = Arc::new(
        Store::open_with(
            &path,
            StorageOptions {
                sync: true,
                group_commit: true,
                ..StorageOptions::default()
            },
        )
        .unwrap(),
    );
    // Prove the store works before the fault.
    store.put("b", "pre", b"ok".to_vec()).unwrap();
    assert_eq!(store.stats().syncs, 1);

    // Every fsync from here on fails, whichever thread leads the batch.
    let guard = clarens_faults::with(clarens_faults::sites::DB_WAL_FSYNC, "err");

    let writers = 8;
    let barrier = Arc::new(Barrier::new(writers));
    let failures = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..writers {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        let failures = Arc::clone(&failures);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            match store.put("b", &format!("batch-{t}"), b"v".to_vec()) {
                Ok(()) => panic!("writer {t} reported success after a failed group fsync"),
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        clarens_faults::is_injected(&e)
                            || msg.contains("poisoned")
                            || is_degraded_error(&e),
                        "writer {t}: unexpected error {msg}"
                    );
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    drop(guard);

    assert_eq!(failures.load(Ordering::Relaxed), writers as u64);
    assert!(store.is_degraded());
    // WAL-first ordering: none of the failed appends reached memory.
    for t in 0..writers {
        assert_eq!(store.get("b", &format!("batch-{t}")), None);
    }
    assert_eq!(store.get("b", "pre").unwrap(), b"ok");
    // The fault has cleared but the store stays read-only.
    assert!(is_degraded_error(
        &store.put("b", "late", b"v".to_vec()).unwrap_err()
    ));
    drop(store);
    std::fs::remove_file(&path).unwrap();
}

/// Satellite regression: `wal_read` racing an in-flight background
/// compaction. The `db.compact.swap` delay failpoint holds the
/// rename→reopen→epoch-bump window open while a follower-style reader
/// hammers the log. Every chunk must decode cleanly (whole CRC-valid
/// frames only) and carry a self-consistent epoch, so the shadow replica
/// resyncs exactly once and converges on the store's state.
#[test]
fn wal_read_never_straddles_compaction_swap() {
    let path = temp_path("swap-race");
    let store = Arc::new(Store::open(&path).unwrap());
    for i in 0..300 {
        store.put("b", "hot", format!("v{i}").into_bytes()).unwrap();
    }
    store.put("b", "stable", b"s".to_vec()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut shadow: HashMap<(String, String), Vec<u8>> = HashMap::new();
            let mut epoch = 0u64;
            let mut offset = 0u64;
            let mut resyncs = 0u64;
            loop {
                // Small chunks maximize reads landing inside the window.
                let chunk = store.wal_read(epoch, offset, 512).unwrap();
                if chunk.epoch != epoch || chunk.offset != offset {
                    // Stale cursor: the log was rewritten under us. Start
                    // over from the snapshot the server now serves (the
                    // served offset is folded in via next_offset below).
                    shadow.clear();
                    epoch = chunk.epoch;
                    resyncs += 1;
                }
                let ops = decode_stream(&chunk.data)
                    .expect("replication chunk with torn or corrupt frames");
                for op in ops {
                    match op {
                        LogOp::Put { bucket, key, value } => {
                            shadow.insert((bucket, key), value);
                        }
                        LogOp::Delete { bucket, key } => {
                            shadow.remove(&(bucket, key));
                        }
                        LogOp::EpochFence { .. } => {}
                    }
                }
                offset = chunk.next_offset();
                let drained = offset >= chunk.len && chunk.epoch == store.wal_epoch();
                if stop.load(Ordering::SeqCst) && drained {
                    return (shadow, resyncs);
                }
                if chunk.data.is_empty() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        })
    };

    // Hold the swap window open (50ms) while the reader hammers it, then
    // compact in the background-janitor's position.
    let guard = clarens_faults::with(clarens_faults::sites::DB_COMPACT_SWAP, "delay:50ms");
    store.compact().unwrap();
    drop(guard);
    assert_eq!(store.wal_epoch(), 1);
    stop.store(true, Ordering::SeqCst);

    let (shadow, resyncs) = reader.join().unwrap();
    assert!(resyncs >= 1, "the epoch bump must force a cursor resync");
    assert_eq!(
        shadow.len(),
        2,
        "shadow replica diverged: {:?}",
        shadow.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        shadow.get(&("b".to_string(), "hot".to_string())).unwrap(),
        b"v299"
    );
    assert_eq!(
        shadow
            .get(&("b".to_string(), "stable".to_string()))
            .unwrap(),
        b"s"
    );
    drop(store);
    std::fs::remove_file(&path).unwrap();
}

/// The delay variant above keeps the swap alive; the `err` variant aborts
/// it. An aborted swap must leave the original log intact, the epoch
/// unbumped, and the store fully writable (compaction is best-effort).
#[test]
fn failed_swap_leaves_log_intact() {
    let path = temp_path("swap-abort");
    let store = Store::open(&path).unwrap();
    for i in 0..100 {
        store.put("b", "hot", format!("v{i}").into_bytes()).unwrap();
    }
    let before = store.wal_offset();
    {
        let _g = clarens_faults::with(clarens_faults::sites::DB_COMPACT_SWAP, "err");
        let err = store.compact().unwrap_err();
        assert!(clarens_faults::is_injected(&err), "{err}");
    }
    assert_eq!(store.wal_epoch(), 0);
    assert_eq!(store.wal_offset(), before);
    assert!(!store.is_degraded());
    assert!(
        !path.with_extension("compact").exists(),
        "aborted compaction must clean up its temp file"
    );
    // Still writable, still compactable once the fault clears.
    store.put("b", "post", b"x".to_vec()).unwrap();
    store.compact().unwrap();
    assert_eq!(store.wal_epoch(), 1);
    assert_eq!(store.get("b", "post").unwrap(), b"x");
    assert_eq!(store.get("b", "hot").unwrap(), b"v99");
    drop(store);
    std::fs::remove_file(&path).unwrap();
}
