//! The store's functional contract, exercised identically through every
//! storage backend behind the [`clarens_db::StorageEngine`] trait, plus
//! the cross-backend compatibility guarantee (both engines persist the
//! same CRC-framed record format, so a database can be reopened under
//! either).

use std::path::PathBuf;

use clarens_db::{StorageBackend, StorageOptions, Store};

fn temp_path(name: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("clarens-db-suite-{}-{name}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn options(backend: StorageBackend) -> StorageOptions {
    StorageOptions {
        backend,
        ..StorageOptions::default()
    }
}

const BACKENDS: [StorageBackend; 2] = [StorageBackend::Wal, StorageBackend::Mmap];

fn backend_name(backend: StorageBackend) -> &'static str {
    match backend {
        StorageBackend::Wal => "wal",
        StorageBackend::Mmap => "mmap",
    }
}

#[test]
fn crud_round_trip_every_backend() {
    for backend in BACKENDS {
        let path = temp_path(&format!("crud-{}", backend_name(backend)));
        let store = Store::open_with(&path, options(backend)).unwrap();
        assert_eq!(store.backend(), backend_name(backend));
        store.put("b", "k", b"v1".to_vec()).unwrap();
        store.put("b", "k", b"v2".to_vec()).unwrap();
        assert_eq!(store.get("b", "k").unwrap(), b"v2");
        assert!(store.delete("b", "k").unwrap());
        assert!(!store.contains("b", "k"));
        store.put("acl", "path/a", b"1".to_vec()).unwrap();
        store.put("acl", "path/b", b"2".to_vec()).unwrap();
        assert_eq!(store.scan_prefix("acl", "path/").len(), 2);
        drop(store);
        // The mmap backend writes no file until its first checkpoint.
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn persistence_across_reopen_every_backend() {
    for backend in BACKENDS {
        let path = temp_path(&format!("reopen-{}", backend_name(backend)));
        {
            let store = Store::open_with(&path, options(backend)).unwrap();
            store.put("sessions", "s1", b"alice".to_vec()).unwrap();
            store.put("sessions", "s2", b"bob".to_vec()).unwrap();
            store.delete("sessions", "s1").unwrap();
            // For the WAL engine sync() fsyncs the log; for the mmap
            // engine it cuts a checkpoint — either way state must
            // survive the process.
            store.sync().unwrap();
        }
        {
            let store = Store::open_with(&path, options(backend)).unwrap();
            assert_eq!(store.get("sessions", "s1"), None);
            assert_eq!(store.get("sessions", "s2").unwrap(), b"bob");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn compaction_preserves_state_every_backend() {
    for backend in BACKENDS {
        let path = temp_path(&format!("compact-{}", backend_name(backend)));
        let store = Store::open_with(&path, options(backend)).unwrap();
        for i in 0..50 {
            store.put("b", "hot", format!("v{i}").into_bytes()).unwrap();
            store.put("b", &format!("cold-{i}"), vec![i as u8]).unwrap();
        }
        let epoch_before = store.wal_epoch();
        store.compact().unwrap();
        assert_eq!(store.wal_epoch(), epoch_before + 1);
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(store.get("b", "hot").unwrap(), b"v49");
        assert_eq!(store.len("b"), 51);
        // Appends keep landing after the rewrite.
        store.put("b", "post", b"x".to_vec()).unwrap();
        store.sync().unwrap();
        drop(store);
        let store = Store::open_with(&path, options(backend)).unwrap();
        assert_eq!(store.get("b", "post").unwrap(), b"x");
        assert_eq!(store.len("b"), 52);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn concurrent_writers_every_backend() {
    use std::sync::Arc;
    for backend in BACKENDS {
        let path = temp_path(&format!("threads-{}", backend_name(backend)));
        let store = Arc::new(Store::open_with(&path, options(backend)).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store
                        .put(&format!("bucket-{t}"), &format!("k{i}"), vec![t as u8])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4 {
            assert_eq!(store.len(&format!("bucket-{t}")), 100);
        }
        store.sync().unwrap();
        drop(store);
        let store = Store::open_with(&path, options(backend)).unwrap();
        assert_eq!(store.bucket_names().len(), 4);
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }
}

/// The snapshot format is a compacted WAL, so a database written by one
/// backend opens under the other — in both directions.
#[test]
fn backend_switch_round_trip() {
    let path = temp_path("switch");
    {
        let store = Store::open_with(&path, options(StorageBackend::Wal)).unwrap();
        for i in 0..20 {
            store.put("b", &format!("k{i}"), vec![i as u8]).unwrap();
        }
        store.delete("b", "k0").unwrap();
        store.sync().unwrap();
    }
    {
        // wal → mmap: the mmap engine tolerates the un-compacted log's
        // superseded records (it replays frames in order).
        let store = Store::open_with(&path, options(StorageBackend::Mmap)).unwrap();
        assert_eq!(store.get("b", "k0"), None);
        assert_eq!(store.get("b", "k19").unwrap(), vec![19u8]);
        assert_eq!(store.len("b"), 19);
        store.put("b", "from-mmap", b"x".to_vec()).unwrap();
        store.sync().unwrap(); // checkpoint: rewrites as a pure snapshot
    }
    {
        // mmap → wal: the checkpoint is a valid (compacted) WAL.
        let store = Store::open_with(&path, options(StorageBackend::Wal)).unwrap();
        assert_eq!(store.get("b", "from-mmap").unwrap(), b"x");
        assert_eq!(store.len("b"), 20);
        store.put("b", "from-wal", b"y".to_vec()).unwrap();
        store.sync().unwrap();
    }
    {
        let store = Store::open_with(&path, options(StorageBackend::Mmap)).unwrap();
        assert_eq!(store.get("b", "from-wal").unwrap(), b"y");
    }
    std::fs::remove_file(&path).unwrap();
}

/// Durability contracts that differ by design: the mmap engine refuses to
/// ship a replication log, the WAL engine serves one.
#[test]
fn log_shipping_is_wal_only() {
    let wal_path = temp_path("ship-wal");
    let mmap_path = temp_path("ship-mmap");
    let wal = Store::open_with(&wal_path, options(StorageBackend::Wal)).unwrap();
    let mmap = Store::open_with(&mmap_path, options(StorageBackend::Mmap)).unwrap();
    wal.put("b", "k", b"v".to_vec()).unwrap();
    mmap.put("b", "k", b"v".to_vec()).unwrap();
    assert!(!wal.wal_read(0, 0, 1 << 20).unwrap().data.is_empty());
    let err = mmap.wal_read(0, 0, 1 << 20).unwrap_err();
    assert!(err.to_string().contains("does not ship"), "{err}");
    drop(wal);
    drop(mmap);
    std::fs::remove_file(&wal_path).unwrap();
    // The mmap store never checkpointed, so it has no file on disk.
    let _ = std::fs::remove_file(&mmap_path);
}

/// Group commit in durable mode: N concurrent writers must converge on
/// far fewer than N fsyncs (one per batch), and everything acknowledged
/// must actually be on disk after reopen.
#[test]
fn group_commit_batches_fsyncs() {
    use std::sync::Arc;
    let path = temp_path("group");
    let store = Arc::new(
        Store::open_with(
            &path,
            StorageOptions {
                sync: true,
                group_commit: true,
                ..StorageOptions::default()
            },
        )
        .unwrap(),
    );
    let writers = 8;
    let per_writer = 25;
    let mut handles = Vec::new();
    for t in 0..writers {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_writer {
                store
                    .put("b", &format!("t{t}-k{i}"), b"v".to_vec())
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = store.stats();
    let total = (writers * per_writer) as u64;
    assert!(stats.syncs >= 1);
    assert!(
        stats.syncs < total,
        "group commit issued {} fsyncs for {} appends (no batching?)",
        stats.syncs,
        total
    );
    assert!(stats.group_commits >= 1);
    drop(store);
    let store = Store::open(&path).unwrap();
    assert_eq!(store.len("b"), (writers * per_writer) as usize);
    drop(store);
    std::fs::remove_file(&path).unwrap();
}
