//! Write-ahead log: the on-disk persistence layer of [`crate::Store`].
//!
//! Record format (all integers little-endian):
//!
//! ```text
//! [u32 payload_len][payload][u32 crc32(payload)]
//! payload := [u8 op][u16 bucket_len][bucket][u16 key_len][key]
//!            [u32 value_len][value]          (value only for Put)
//! ```
//!
//! Recovery replays records until EOF or the first corrupt/truncated
//! record — a torn tail (crash mid-write) truncates cleanly rather than
//! corrupting the store, which is what lets Clarens sessions "survive
//! server failures or restarts transparently" (paper §2).

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::Path;

use crate::crc32::crc32;

/// Maximum sizes, to reject corrupt length fields during recovery.
const MAX_NAME: usize = u16::MAX as usize;
const MAX_VALUE: usize = 256 * 1024 * 1024;

/// Largest structurally possible frame payload; length fields beyond this
/// are corruption, not data.
pub(crate) const MAX_FRAME_PAYLOAD: usize = MAX_VALUE + 2 * MAX_NAME + 16;

/// A logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// Insert or overwrite `bucket/key`.
    Put {
        /// Namespace.
        bucket: String,
        /// Key within the namespace.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove `bucket/key`.
    Delete {
        /// Namespace.
        bucket: String,
        /// Key within the namespace.
        key: String,
    },
    /// A leader-epoch fence. Written by a node when it claims leadership
    /// of a replicated cluster; it carries no data but travels through the
    /// shipped log so every follower learns the new epoch in-band, in
    /// exact write order relative to the surrounding data records.
    EpochFence {
        /// The leader epoch being claimed.
        epoch: u64,
    },
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_EPOCH_FENCE: u8 = 3;

/// Serialize one operation into the payload format.
pub fn encode_op(op: &LogOp) -> Vec<u8> {
    let mut out = Vec::new();
    match op {
        LogOp::Put { bucket, key, value } => {
            out.push(OP_PUT);
            push_name(&mut out, bucket);
            push_name(&mut out, key);
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        LogOp::Delete { bucket, key } => {
            out.push(OP_DELETE);
            push_name(&mut out, bucket);
            push_name(&mut out, key);
        }
        LogOp::EpochFence { epoch } => {
            out.push(OP_EPOCH_FENCE);
            out.extend_from_slice(&epoch.to_le_bytes());
        }
    }
    out
}

fn push_name(out: &mut Vec<u8>, name: &str) {
    assert!(name.len() <= MAX_NAME, "bucket/key name too long");
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

/// Decode one payload. Returns `None` on structural corruption.
pub fn decode_op(payload: &[u8]) -> Option<LogOp> {
    let mut pos = 0usize;
    let op = *payload.get(pos)?;
    pos += 1;
    if op == OP_EPOCH_FENCE {
        if payload.len() != pos + 8 {
            return None;
        }
        let epoch = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
        return Some(LogOp::EpochFence { epoch });
    }
    let bucket = read_name(payload, &mut pos)?;
    let key = read_name(payload, &mut pos)?;
    match op {
        OP_PUT => {
            if payload.len() < pos + 4 {
                return None;
            }
            let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if len > MAX_VALUE || payload.len() != pos + len {
                return None;
            }
            Some(LogOp::Put {
                bucket,
                key,
                value: payload[pos..].to_vec(),
            })
        }
        OP_DELETE => {
            if pos != payload.len() {
                return None;
            }
            Some(LogOp::Delete { bucket, key })
        }
        _ => None,
    }
}

fn read_name(payload: &[u8], pos: &mut usize) -> Option<String> {
    if payload.len() < *pos + 2 {
        return None;
    }
    let len = u16::from_le_bytes(payload[*pos..*pos + 2].try_into().unwrap()) as usize;
    *pos += 2;
    if payload.len() < *pos + len {
        return None;
    }
    let name = std::str::from_utf8(&payload[*pos..*pos + len])
        .ok()?
        .to_owned();
    *pos += len;
    Some(name)
}

/// An open write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    /// Bytes of fully-framed, flushed records on disk. This is the
    /// replication high-water mark: a WAL shipper may serve any prefix of
    /// `[0, len)` and never observe a torn frame.
    len: u64,
    /// Whether to fsync after every append (durable but slow; tests and
    /// benches usually leave this off, mirroring a DB with default
    /// `innodb_flush_log_at_trx_commit`-style relaxation).
    pub sync_on_append: bool,
}

impl Wal {
    /// Open (creating if needed) a log at `path` in append mode.
    pub fn open(path: &Path, sync_on_append: bool) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            writer: BufWriter::new(file),
            len,
            sync_on_append,
        })
    }

    /// Bytes of complete records appended so far (including anything the
    /// file held when it was opened).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one operation.
    pub fn append(&mut self, op: &LogOp) -> io::Result<()> {
        let record = encode_record(op);
        write_framed(&mut self.writer, &record)?;
        self.writer.flush()?;
        self.len += record.len() as u64;
        if self.sync_on_append {
            self.fsync()?;
        }
        Ok(())
    }

    fn fsync(&mut self) -> io::Result<()> {
        clarens_faults::check_io(clarens_faults::sites::DB_WAL_FSYNC)?;
        self.writer.get_ref().sync_data()
    }

    /// Force everything to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.fsync()
    }
}

/// Frame one operation as it appears on disk:
/// `[u32 payload_len][payload][u32 crc32(payload)]`.
pub fn encode_record(op: &LogOp) -> Vec<u8> {
    let payload = encode_op(op);
    let mut record = Vec::with_capacity(payload.len() + 8);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&payload);
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record
}

/// On-disk frame size of a `Put` record, without encoding it — the store
/// uses this to track live bytes (and thus the WAL garbage ratio) from the
/// key/value lengths alone.
pub fn put_record_size(bucket: &str, key: &str, value_len: usize) -> u64 {
    // frame len + op byte + 2 name-length prefixes + value-length prefix
    // + CRC, plus the names and the value themselves.
    (4 + 1 + 2 + 2 + 4 + 4 + bucket.len() + key.len() + value_len) as u64
}

/// Write one framed record to completion. `write` may consume fewer bytes
/// than offered (the `db.wal.append` failpoint simulates exactly that);
/// treating a short write as success would frame-shift every record that
/// follows, so we loop until the record is fully queued.
pub fn write_framed(writer: &mut dyn Write, record: &[u8]) -> io::Result<()> {
    let mut written = 0;
    while written < record.len() {
        let rest = &record[written..];
        let n = match clarens_faults::eval(clarens_faults::sites::DB_WAL_APPEND) {
            Some(clarens_faults::Injected::Err) => {
                return Err(clarens_faults::injected_error(
                    clarens_faults::sites::DB_WAL_APPEND,
                ))
            }
            Some(clarens_faults::Injected::ShortWrite(cap)) => {
                writer.write(&rest[..cap.min(rest.len())])?
            }
            _ => match writer.write(rest) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            },
        };
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    Ok(())
}

/// Length of the longest prefix of `data` that consists of whole,
/// CRC-valid records. WAL shippers trim replication chunks with this so a
/// read that raced an in-flight append never ships a partial frame, and
/// followers use it to reject a corrupted chunk wholesale.
pub fn frame_prefix(data: &[u8]) -> usize {
    let mut pos = 0usize;
    loop {
        if data.len() < pos + 4 {
            return pos;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_PAYLOAD || data.len() < pos + 4 + len + 4 {
            return pos;
        }
        let payload = &data[pos + 4..pos + 4 + len];
        let crc = u32::from_le_bytes(data[pos + 4 + len..pos + 8 + len].try_into().unwrap());
        if crc32(payload) != crc {
            return pos;
        }
        pos += 4 + len + 4;
    }
}

/// Decode a byte run of framed records into operations. Returns `None` if
/// the run is anything other than a whole number of CRC-valid, structurally
/// sound records — a replication follower must apply a chunk entirely or
/// not at all.
pub fn decode_stream(data: &[u8]) -> Option<Vec<LogOp>> {
    if frame_prefix(data) != data.len() {
        return None;
    }
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        ops.push(decode_op(&data[pos + 4..pos + 4 + len])?);
        pos += 4 + len + 4;
    }
    Some(ops)
}

/// The outcome of a recovery scan.
pub struct Recovery {
    /// Operations recovered, in append order.
    pub ops: Vec<LogOp>,
    /// True if the scan stopped early at a corrupt/torn record (the caller
    /// should truncate the file to `valid_len` so the next append starts
    /// on a frame boundary).
    pub torn_tail: bool,
    /// Byte length of the valid record prefix — the offset the torn tail
    /// starts at, or the whole file when the log is clean.
    pub valid_len: u64,
}

/// Replay a log file. Missing file ⇒ empty recovery.
pub fn recover(path: &Path) -> io::Result<Recovery> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Recovery {
                ops: Vec::new(),
                torn_tail: false,
                valid_len: 0,
            })
        }
        Err(e) => return Err(e),
    };
    let size = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut ops = Vec::new();
    let mut offset = 0u64;
    loop {
        let mut len_buf = [0u8; 4];
        match reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // Clean EOF if we were at a record boundary; a few stray
                // bytes constitute a torn tail.
                let torn = offset + 4 > size && offset != size;
                let torn = torn || (size - offset > 0 && size - offset < 4);
                return Ok(Recovery {
                    ops,
                    torn_tail: torn,
                    valid_len: offset,
                });
            }
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Ok(Recovery {
                ops,
                torn_tail: true,
                valid_len: offset,
            });
        }
        let mut payload = vec![0u8; len];
        let mut crc_buf = [0u8; 4];
        if reader.read_exact(&mut payload).is_err() || reader.read_exact(&mut crc_buf).is_err() {
            return Ok(Recovery {
                ops,
                torn_tail: true,
                valid_len: offset,
            });
        }
        if crc32(&payload) != u32::from_le_bytes(crc_buf) {
            return Ok(Recovery {
                ops,
                torn_tail: true,
                valid_len: offset,
            });
        }
        match decode_op(&payload) {
            Some(op) => ops.push(op),
            None => {
                return Ok(Recovery {
                    ops,
                    torn_tail: true,
                    valid_len: offset,
                })
            }
        }
        offset += 4 + len as u64 + 4;
        let _ = reader.stream_position();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clarens-db-log-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn put(bucket: &str, key: &str, value: &[u8]) -> LogOp {
        LogOp::Put {
            bucket: bucket.into(),
            key: key.into(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ops = [
            put("sessions", "abc", b"payload"),
            put("vo", "", b""),
            LogOp::Delete {
                bucket: "acl".into(),
                key: "file.read".into(),
            },
            LogOp::EpochFence { epoch: 0 },
            LogOp::EpochFence { epoch: u64::MAX },
        ];
        for op in &ops {
            assert_eq!(decode_op(&encode_op(op)).unwrap(), *op);
        }
    }

    #[test]
    fn fence_decode_rejects_bad_length() {
        let good = encode_op(&LogOp::EpochFence { epoch: 42 });
        assert!(decode_op(&good[..good.len() - 1]).is_none()); // truncated
        let mut long = good.clone();
        long.push(0);
        assert!(decode_op(&long).is_none()); // trailing junk
    }

    #[test]
    fn decode_rejects_corruption() {
        let good = encode_op(&put("b", "k", b"v"));
        assert!(decode_op(&good[..good.len() - 1]).is_none()); // truncated
        let mut bad_op = good.clone();
        bad_op[0] = 99;
        assert!(decode_op(&bad_op).is_none()); // unknown opcode
        assert!(decode_op(&[]).is_none());
        // Delete with trailing junk.
        let mut del = encode_op(&LogOp::Delete {
            bucket: "b".into(),
            key: "k".into(),
        });
        del.push(0);
        assert!(decode_op(&del).is_none());
    }

    #[test]
    fn append_and_recover() {
        let path = temp_path("basic");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&put("s", "k1", b"v1")).unwrap();
            wal.append(&put("s", "k2", b"v2")).unwrap();
            wal.append(&LogOp::Delete {
                bucket: "s".into(),
                key: "k1".into(),
            })
            .unwrap();
            wal.sync().unwrap();
        }
        let recovery = recover(&path).unwrap();
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.ops.len(), 3);
        assert_eq!(recovery.ops[0], put("s", "k1", b"v1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let recovery = recover(Path::new("/nonexistent/definitely/not/here.wal")).unwrap();
        assert!(recovery.ops.is_empty());
        assert!(!recovery.torn_tail);
    }

    #[test]
    fn torn_tail_detected_and_prefix_recovered() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&put("s", "k1", b"v1")).unwrap();
            wal.append(&put("s", "k2", b"v2")).unwrap();
            wal.sync().unwrap();
        }
        // Truncate mid-record.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();

        let recovery = recover(&path).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.ops.len(), 1);
        assert_eq!(recovery.ops[0], put("s", "k1", b"v1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bitflip_detected_by_crc() {
        let path = temp_path("bitflip");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&put("s", "key", b"value-bytes")).unwrap();
            wal.append(&put("s", "key2", b"more")).unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte inside the first record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let recovery = recover(&path).unwrap();
        assert!(recovery.torn_tail);
        assert!(recovery.ops.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_writes_loop_to_completion() {
        // Every underlying write is capped at 3 bytes: the append loop
        // must keep going until the whole record is framed on disk.
        let path = temp_path("short-write");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            let _g = clarens_faults::with_thread(clarens_faults::sites::DB_WAL_APPEND, "short:3");
            wal.append(&put("sessions", "key", b"value-that-needs-many-writes"))
                .unwrap();
            wal.append(&put("sessions", "key2", b"second")).unwrap();
            wal.sync().unwrap();
        }
        let recovery = recover(&path).unwrap();
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.ops.len(), 2);
        assert_eq!(
            recovery.ops[0],
            put("sessions", "key", b"value-that-needs-many-writes")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_append_error_surfaces() {
        let path = temp_path("inject-append");
        let mut wal = Wal::open(&path, false).unwrap();
        {
            let _g =
                clarens_faults::with_thread(clarens_faults::sites::DB_WAL_APPEND, "err|times=1");
            let err = wal.append(&put("b", "k", b"v")).unwrap_err();
            assert!(clarens_faults::is_injected(&err), "{err}");
        }
        // After the transient fault clears, the log still works.
        wal.append(&put("b", "k", b"v")).unwrap();
        wal.sync().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fsync_error_surfaces() {
        let path = temp_path("inject-fsync");
        let mut wal = Wal::open(&path, true).unwrap();
        let _g = clarens_faults::with_thread(clarens_faults::sites::DB_WAL_FSYNC, "err");
        let err = wal.append(&put("b", "k", b"v")).unwrap_err();
        assert!(clarens_faults::is_injected(&err), "{err}");
        let err = wal.sync().unwrap_err();
        assert!(clarens_faults::is_injected(&err), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_len_tracks_framed_bytes() {
        let path = temp_path("len");
        let first;
        {
            let mut wal = Wal::open(&path, false).unwrap();
            assert!(wal.is_empty());
            wal.append(&put("s", "k1", b"v1")).unwrap();
            first = wal.len();
            assert_eq!(first, std::fs::metadata(&path).unwrap().len());
            wal.append(&put("s", "k2", b"v2")).unwrap();
            assert!(wal.len() > first);
        }
        // Reopen picks up where the file left off.
        let wal = Wal::open(&path, false).unwrap();
        assert_eq!(wal.len(), std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frame_prefix_and_decode_stream() {
        let path = temp_path("frames");
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&put("s", "k1", b"v1")).unwrap();
            wal.append(&put("s", "k2", b"v2")).unwrap();
            wal.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // The whole file is complete frames and decodes in order.
        assert_eq!(frame_prefix(&bytes), bytes.len());
        let ops = decode_stream(&bytes).unwrap();
        assert_eq!(ops, vec![put("s", "k1", b"v1"), put("s", "k2", b"v2")]);
        // A truncated run keeps only the whole-frame prefix...
        let cut = &bytes[..bytes.len() - 3];
        let prefix = frame_prefix(cut);
        assert!(prefix < cut.len());
        assert_eq!(decode_stream(&cut[..prefix]).unwrap().len(), 1);
        // ...and decode_stream refuses the torn run outright.
        assert!(decode_stream(cut).is_none());
        // A CRC flip in the first record rejects everything from there on.
        let mut flipped = bytes.clone();
        flipped[8] ^= 0xFF;
        assert_eq!(frame_prefix(&flipped), 0);
        assert!(decode_stream(&flipped).is_none());
        // Empty input is a valid empty stream.
        assert_eq!(frame_prefix(&[]), 0);
        assert_eq!(decode_stream(&[]).unwrap(), vec![]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn huge_length_field_treated_as_torn() {
        let path = temp_path("hugelen");
        std::fs::write(&path, (u32::MAX).to_le_bytes()).unwrap();
        let recovery = recover(&path).unwrap();
        assert!(recovery.torn_tail);
        assert!(recovery.ops.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
