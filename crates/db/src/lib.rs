//! # clarens-db — embedded persistent key-value store
//!
//! The Clarens server keeps sessions, VO structures, ACLs, and the method
//! registry "in a database" (paper §2.1, §4); sessions persist "on the
//! server side... allowing clients to survive server failures or restarts
//! transparently" (§2). This crate is that database: a namespaced KV store
//! with a CRC-checked write-ahead log, crash recovery, and compaction.
//!
//! ```
//! use clarens_db::Store;
//! let store = Store::in_memory();
//! store.put("sessions", "abc123", b"/O=org/CN=alice".to_vec()).unwrap();
//! assert_eq!(store.get("sessions", "abc123").unwrap(), b"/O=org/CN=alice");
//! ```

pub mod crc32;
pub mod log;
pub mod mmap_engine;
pub mod storage;
pub mod store;
pub mod wal_engine;

pub use log::{decode_stream, frame_prefix, LogOp};
pub use storage::{SnapshotSource, StorageBackend, StorageCounters, StorageEngine, StorageOptions};
pub use store::{is_degraded_error, Store, StoreStats, WalChunk, DEGRADED_MSG};
