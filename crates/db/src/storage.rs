//! The storage-engine seam behind [`crate::Store`].
//!
//! The store separates *what* it keeps (sharded in-memory bucket maps,
//! generation counters, degraded-mode policy) from *how* that state is
//! made durable. A [`StorageEngine`] owns the persistent image of the
//! database and is chosen per deployment:
//!
//! * [`crate::wal_engine::WalEngine`] — the default append-only
//!   write-ahead log with group commit and background compaction; the
//!   only engine that can ship its log to replication followers.
//! * [`crate::mmap_engine::MmapEngine`] — a checkpointing snapshot engine
//!   that memory-maps the file on open, for follower/read-mostly nodes
//!   where durability-at-checkpoint is acceptable and bounded cold
//!   restart matters more than per-write persistence.
//!
//! Both persist the same CRC-framed record format ([`crate::log`]), so a
//! store can be reopened under either backend.

use std::io;

use crate::log::LogOp;
use crate::store::WalChunk;

/// Which engine backs a persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// Append-only WAL with group commit + background compaction.
    #[default]
    Wal,
    /// Mmap-recovered snapshot file, persisted at checkpoint granularity.
    Mmap,
}

impl std::str::FromStr for StorageBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wal" => Ok(StorageBackend::Wal),
            "mmap" => Ok(StorageBackend::Mmap),
            other => Err(format!("bad storage_backend {other:?} (wal|mmap)")),
        }
    }
}

/// Tuning knobs for opening a persistent store.
#[derive(Debug, Clone, Copy)]
pub struct StorageOptions {
    /// Engine choice.
    pub backend: StorageBackend,
    /// Make every append durable before acknowledging it (WAL engine
    /// only; the mmap engine is durable at checkpoints by design).
    pub sync: bool,
    /// Batch concurrent durable appends behind one fsync (group commit).
    /// Only meaningful with `sync`; turning it off reverts to one fsync
    /// per append for A/B measurement.
    pub group_commit: bool,
    /// Background-compact once the fraction of dead bytes in the log
    /// exceeds this ratio (`0.0` disables the janitor; manual
    /// [`crate::Store::compact`] always works).
    pub compact_ratio: f64,
    /// Don't compact logs smaller than this many bytes, however garbage-
    /// heavy — rewriting tiny files buys nothing and thrashes.
    pub compact_min_bytes: u64,
    /// Number of lock-striped bucket shards (rounded up to at least 1).
    pub shards: usize,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            backend: StorageBackend::Wal,
            sync: false,
            group_commit: true,
            compact_ratio: 0.5,
            compact_min_bytes: 256 * 1024,
            shards: 16,
        }
    }
}

/// Monotonic counters every engine maintains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageCounters {
    /// fsync/fdatasync calls issued (per-append syncs, group commits,
    /// explicit syncs, compaction/checkpoint rewrites, recovery repairs).
    pub fsyncs: u64,
    /// Group-commit batches led (each one fsync covering ≥ 1 append).
    pub group_commits: u64,
    /// Compactions (WAL) or checkpoints (mmap) completed.
    pub compactions: u64,
    /// Total bytes handed to the filesystem (appends + rewrite copies);
    /// divided by live bytes this is the engine's write amplification.
    pub bytes_written: u64,
}

/// A consistent view of the store's live state, supplied by the store to
/// engines that persist at snapshot granularity (checkpoint or compact).
/// Implementations must emit every live `(bucket, key, value)` exactly
/// once, holding whatever locks make the cut atomic.
pub trait SnapshotSource: Send + Sync {
    /// Stream every live record to `emit`, stopping at the first error.
    fn emit_ops(&self, emit: &mut EmitOp<'_>) -> io::Result<()>;
}

/// Sink for [`SnapshotSource::emit_ops`]: called once per live
/// `(bucket, key, value)`.
pub type EmitOp<'a> = dyn FnMut(&str, &str, &[u8]) -> io::Result<()> + 'a;

/// A persistence engine: the durable half of a [`crate::Store`].
///
/// Engines are internally synchronized (the store calls them from many
/// threads at once) and must keep their on-disk image recoverable after a
/// crash at any instant — a torn final record is repairable, a
/// frame-shifted middle is not.
pub trait StorageEngine: Send + Sync {
    /// Short backend name, as exposed via stats ("wal", "mmap").
    fn name(&self) -> &'static str;

    /// Record one operation per the engine's durability contract. An
    /// error means the operation must not be applied to memory (the
    /// store degrades to read-only).
    fn append(&self, op: &LogOp) -> io::Result<()>;

    /// Force pending state to disk. `state` supplies a consistent
    /// snapshot for engines that persist whole images; the WAL engine
    /// ignores it and fsyncs its log.
    fn sync(&self, state: &dyn SnapshotSource) -> io::Result<()>;

    /// Rewrite the persistent image as a minimal snapshot of live state.
    /// Safe to call concurrently with appends; concurrent calls coalesce.
    fn compact(&self, state: &dyn SnapshotSource) -> io::Result<()>;

    /// Should the janitor compact now? `live_bytes` is the store's
    /// estimate of the on-disk size of a minimal snapshot.
    fn wants_compaction(&self, live_bytes: u64, ratio: f64) -> bool;

    /// Committed length in bytes of the persistent image (the
    /// replication high-water mark for log-shipping engines).
    fn committed_len(&self) -> u64;

    /// Incarnation of the persistent file; bumps whenever a rewrite
    /// invalidates previously handed-out offsets.
    fn epoch(&self) -> u64;

    /// Can this engine serve its log to replication followers?
    fn ships_log(&self) -> bool {
        false
    }

    /// Read a replication chunk (see [`crate::Store::wal_read`]). Errors
    /// for engines that do not ship a log.
    fn read_log(&self, epoch: u64, offset: u64, max_bytes: usize) -> io::Result<WalChunk>;

    /// Snapshot of the engine's counters.
    fn counters(&self) -> StorageCounters;
}
