//! Checkpointing snapshot engine for follower/read-mostly nodes.
//!
//! Instead of an append-only log, this engine keeps the whole store as
//! one snapshot file of CRC-framed records and rewrites it atomically
//! (temp file + `rename`) at every checkpoint. On open the file is
//! memory-mapped read-only and the frames are parsed straight out of the
//! page cache — no read syscalls, no tail of dead records to replay — so
//! cold restart is bounded by live-state size, which is the property
//! follower nodes care about: their durability story is "resync from the
//! leader", not "fsync every write".
//!
//! Durability contract: appends are acknowledged from memory and become
//! durable at the next checkpoint ([`StorageEngine::sync`] or a janitor
//! compaction). The snapshot format is identical to a fully compacted
//! WAL, so a store can be switched between `storage_backend = wal` and
//! `mmap` across restarts in either direction.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::log::{encode_record, frame_prefix, put_record_size, LogOp};
use crate::storage::{SnapshotSource, StorageCounters, StorageEngine, StorageOptions};
use crate::store::WalChunk;

/// Read a whole file through a private read-only mapping, falling back to
/// an ordinary read where mmap is unavailable (non-unix, empty file, or a
/// failed syscall).
#[cfg(unix)]
mod map {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A scoped read-only mapping of one file.
    pub struct Mapped {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mapped {
        pub fn of(file: &File, len: usize) -> Option<Mapped> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return None;
            }
            Some(Mapped { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapped {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    pub fn read_all(path: &std::path::Path) -> io::Result<Vec<super::LogOp>> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len() as usize;
        match Mapped::of(&file, len) {
            Some(mapped) => Ok(super::parse_frames(mapped.bytes())),
            None => {
                drop(file);
                Ok(super::parse_frames(&std::fs::read(path)?))
            }
        }
    }
}

#[cfg(not(unix))]
mod map {
    use std::io;

    pub fn read_all(path: &std::path::Path) -> io::Result<Vec<super::LogOp>> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(super::parse_frames(&bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

/// Decode every whole CRC-valid frame; a torn or corrupt tail (possible
/// only if the file predates the atomic-rename checkpoint discipline,
/// e.g. a WAL being adopted by this backend) is dropped silently, exactly
/// like WAL torn-tail recovery.
fn parse_frames(bytes: &[u8]) -> Vec<LogOp> {
    let whole = frame_prefix(bytes);
    crate::log::decode_stream(&bytes[..whole]).unwrap_or_default()
}

/// Snapshot-checkpoint engine (see module docs).
pub struct MmapEngine {
    path: PathBuf,
    /// Serializes checkpoints (two concurrent rewrites would race the
    /// rename).
    checkpoint_lock: Mutex<()>,
    compact_min_bytes: u64,
    /// Bytes of record frames accepted since the last checkpoint — the
    /// volume at risk, and the janitor's checkpoint trigger.
    dirty_bytes: AtomicU64,
    /// Length of the snapshot file as of the last checkpoint/open.
    snapshot_len: AtomicU64,
    epoch: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    bytes_written: AtomicU64,
}

impl MmapEngine {
    /// Open the snapshot at `path` (missing file ⇒ empty store) and
    /// return the engine plus the recovered operations.
    pub fn open(path: PathBuf, options: &StorageOptions) -> io::Result<(MmapEngine, Vec<LogOp>)> {
        let ops = map::read_all(&path)?;
        let snapshot_len = match std::fs::metadata(&path) {
            Ok(m) => m.len(),
            Err(_) => 0,
        };
        let engine = MmapEngine {
            path,
            checkpoint_lock: Mutex::new(()),
            compact_min_bytes: options.compact_min_bytes,
            dirty_bytes: AtomicU64::new(0),
            snapshot_len: AtomicU64::new(snapshot_len),
            epoch: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        };
        Ok((engine, ops))
    }

    /// Rewrite the snapshot atomically from `state`.
    fn checkpoint(&self, state: &dyn SnapshotSource) -> io::Result<()> {
        let _guard = self.checkpoint_lock.lock();
        let tmp = self.path.with_extension("checkpoint");
        let mut written = 0u64;
        {
            let mut writer = BufWriter::new(File::create(&tmp)?);
            state.emit_ops(&mut |bucket, key, value| {
                let record = encode_record(&LogOp::Put {
                    bucket: bucket.to_owned(),
                    key: key.to_owned(),
                    value: value.to_vec(),
                });
                written += record.len() as u64;
                writer.write_all(&record)
            })?;
            writer.flush()?;
            writer.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.bytes_written.fetch_add(written, Ordering::Relaxed);
        self.snapshot_len.store(written, Ordering::Release);
        self.dirty_bytes.store(0, Ordering::Release);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

impl StorageEngine for MmapEngine {
    fn name(&self) -> &'static str {
        "mmap"
    }

    fn append(&self, op: &LogOp) -> io::Result<()> {
        // Accepted into memory; durable at the next checkpoint. Track the
        // at-risk volume so the janitor knows when a checkpoint is due.
        let size = match op {
            LogOp::Put { bucket, key, value } => put_record_size(bucket, key, value.len()),
            LogOp::Delete { bucket, key } => put_record_size(bucket, key, 0),
            // frame len + op byte + u64 epoch + CRC
            LogOp::EpochFence { .. } => 4 + 1 + 8 + 4,
        };
        self.dirty_bytes.fetch_add(size, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self, state: &dyn SnapshotSource) -> io::Result<()> {
        self.checkpoint(state)
    }

    fn compact(&self, state: &dyn SnapshotSource) -> io::Result<()> {
        self.checkpoint(state)
    }

    fn wants_compaction(&self, _live_bytes: u64, _ratio: f64) -> bool {
        // Checkpoint whenever enough un-persisted bytes accumulate; the
        // garbage-ratio knob does not apply (a snapshot has no garbage).
        self.dirty_bytes.load(Ordering::Acquire) >= self.compact_min_bytes
    }

    fn committed_len(&self) -> u64 {
        self.snapshot_len.load(Ordering::Acquire)
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn read_log(&self, _epoch: u64, _offset: u64, _max_bytes: usize) -> io::Result<WalChunk> {
        Err(io::Error::other(
            "storage_backend mmap does not ship a log (use the wal backend on leaders)",
        ))
    }

    fn counters(&self) -> StorageCounters {
        StorageCounters {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            group_commits: 0,
            compactions: self.checkpoints.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}
