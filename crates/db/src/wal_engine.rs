//! The default storage engine: an append-only write-ahead log with group
//! commit and background compaction.
//!
//! **Group commit.** In durable mode every acknowledged append must be
//! fsynced, but fsync latency is the whole cost — so concurrent appenders
//! share it. An appender writes its record under the log mutex (capturing
//! a logical LSN), then enters [`WalEngine::commit`]: the first arrival
//! becomes the batch leader, issues one `fdatasync` covering everything
//! written so far, and publishes the new durable watermark; everyone else
//! parks on a condvar and returns as soon as the watermark passes their
//! LSN. While the leader's fsync is in flight the log mutex is free, so
//! the next batch accumulates behind it — N writers converge on ~1 fsync
//! per batch instead of N. A leader fsync failure poisons the group:
//! every member whose LSN the failed sync would have covered gets the
//! error (and the store degrades to read-only), because the kernel may
//! have dropped their dirty pages on the floor.
//!
//! **Background compaction.** The log grows with every overwrite; the
//! janitor rewrites it as a minimal snapshot *off the hot path*. The
//! rewrite replays the immutable committed prefix of the log itself
//! (never the in-memory maps: the store appends to the log *before*
//! inserting into memory, so a memory snapshot can miss an op that is
//! already on disk), then loops copying the freshly appended tail without
//! any lock until the remainder is small, and only then blocks appenders
//! for one final tail copy + atomic rename. The append stall is bounded
//! by [`FINAL_TAIL_MAX`] bytes, not by the log size. The rename bumps the
//! file epoch so replication cursors resync; the swap (rename + handle
//! reopen + epoch bump) happens under a writer lock that
//! [`WalEngine::read_log`] read-locks, so a concurrent reader can never
//! observe the new file under the old epoch (or vice versa).

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// The vendored parking_lot guard is a std guard alias, so std's Condvar
// composes with it directly.
use std::sync::Condvar;

use parking_lot::{Mutex, RwLock};

use crate::crc32::crc32;
use crate::log::{encode_record, frame_prefix, recover, write_framed, LogOp};
use crate::storage::{StorageCounters, StorageEngine, StorageOptions};
use crate::store::WalChunk;

/// Once the uncopied tail is at most this many bytes, compaction takes
/// the append lock and finishes; this bounds the append stall.
const FINAL_TAIL_MAX: u64 = 64 * 1024;

/// Chunk size for tail copies during compaction.
const COPY_CHUNK: usize = 64 * 1024;

struct WalInner {
    /// Shared handle so fsync (and compaction) can run on a clone of the
    /// `Arc` without holding the append lock.
    file: Arc<File>,
    /// Physical length of the current log file.
    file_len: u64,
    /// Logical append counter. Monotone across compactions (which reset
    /// `file_len`), so group-commit watermarks survive a file swap.
    lsn: u64,
}

#[derive(Default)]
struct GroupState {
    /// A leader's fsync is in flight.
    leader: bool,
    /// A group fsync failed: every later commit fails fast.
    poisoned: bool,
}

/// Append-only WAL engine (see module docs).
pub struct WalEngine {
    path: PathBuf,
    inner: Mutex<WalInner>,
    group: Mutex<GroupState>,
    group_cond: Condvar,
    /// Highest LSN known durable. Advanced while holding `group` (so
    /// condvar waiters never miss a wakeup) but read lock-free by the
    /// commit fast path.
    synced: AtomicU64,
    sync_on_append: bool,
    group_commit: bool,
    compact_min_bytes: u64,
    /// Published committed length (bytes of whole flushed records), so
    /// gauges and replication reads never take the append lock.
    committed: AtomicU64,
    epoch: AtomicU64,
    /// Excludes `read_log` from the rename→reopen→epoch-bump window.
    swap: RwLock<()>,
    /// Coalesces concurrent compactions (janitor + manual).
    compacting: AtomicBool,
    fsyncs: AtomicU64,
    group_commits: AtomicU64,
    compactions: AtomicU64,
    bytes_written: AtomicU64,
}

impl WalEngine {
    /// Open (creating if needed) the log at `path`, repairing a torn tail
    /// in place, and return the engine plus the recovered operations in
    /// append order.
    pub fn open(path: PathBuf, options: &StorageOptions) -> io::Result<(WalEngine, Vec<LogOp>)> {
        let recovery = recover(&path)?;
        let mut startup_fsyncs = 0;
        if recovery.torn_tail {
            // A crash tore the last record: truncate to the valid prefix
            // so the next append starts on a frame boundary. This is an
            // O(1) repair — no rewrite — and it only pays for an fsync
            // when the store is configured for durable appends.
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(recovery.valid_len)?;
            if options.sync {
                file.sync_data()?;
                startup_fsyncs = 1;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let file_len = file.metadata()?.len();
        let engine = WalEngine {
            path,
            inner: Mutex::new(WalInner {
                file: Arc::new(file),
                file_len,
                lsn: 0,
            }),
            group: Mutex::new(GroupState::default()),
            group_cond: Condvar::new(),
            synced: AtomicU64::new(0),
            sync_on_append: options.sync,
            group_commit: options.group_commit,
            compact_min_bytes: options.compact_min_bytes,
            committed: AtomicU64::new(file_len),
            epoch: AtomicU64::new(0),
            swap: RwLock::new(()),
            compacting: AtomicBool::new(false),
            fsyncs: AtomicU64::new(startup_fsyncs),
            group_commits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        };
        Ok((engine, recovery.ops))
    }

    /// Group-commit rendezvous: return once LSN `lsn` is durable, leading
    /// a batch fsync if nobody else is.
    fn commit(&self, lsn: u64) -> io::Result<()> {
        // Lock-free fast path: a leader that captured its batch after our
        // append already made us durable.
        if self.synced.load(Ordering::Acquire) >= lsn {
            return Ok(());
        }
        let mut state = self.group.lock();
        loop {
            if self.synced.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            if state.poisoned {
                return Err(io::Error::other(
                    "group commit poisoned by an earlier fsync failure",
                ));
            }
            if state.leader {
                state = self
                    .group_cond
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
                continue;
            }
            state.leader = true;
            drop(state);
            // Commit window: writers released by the previous batch are
            // right now re-appending their next records. One scheduler
            // yield lets them reach the log before the batch target is
            // captured, roughly doubling the batch — worth microseconds
            // against the fsync below.
            std::thread::yield_now();
            // Capture the batch: every LSN appended so far is fully
            // written (appends advance `lsn` only after the record is in
            // the file), so one fdatasync covers them all. The append
            // lock is released before the sync, letting the next batch
            // pile up behind this one.
            let (target, file) = {
                let inner = self.inner.lock();
                (inner.lsn, Arc::clone(&inner.file))
            };
            let result = clarens_faults::check_io(clarens_faults::sites::DB_WAL_FSYNC)
                .and_then(|()| file.sync_data());
            state = self.group.lock();
            state.leader = false;
            match result {
                Ok(()) => {
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.group_commits.fetch_add(1, Ordering::Relaxed);
                    // fetch_max: a compaction may have published a higher
                    // watermark while we were syncing.
                    self.synced.fetch_max(target, Ordering::AcqRel);
                    self.group_cond.notify_all();
                }
                Err(e) => {
                    state.poisoned = true;
                    self.group_cond.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Replay the committed prefix `[0, mark)` of the log into a minimal
    /// state map. Every frame below the committed length must be intact;
    /// a torn one here means the file is corrupt, and compaction aborts
    /// leaving the original untouched.
    fn replay_prefix(path: &Path, mark: u64) -> io::Result<Vec<LogOp>> {
        let mut reader = BufReader::new(File::open(path)?).take(mark);
        let mut live: std::collections::BTreeMap<(String, String), Vec<u8>> =
            std::collections::BTreeMap::new();
        let mut fence: Option<u64> = None;
        let corrupt = || io::Error::other("WAL corrupt inside committed prefix");
        loop {
            let mut len_buf = [0u8; 4];
            match reader.read_exact(&mut len_buf) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if len > crate::log::MAX_FRAME_PAYLOAD {
                return Err(corrupt());
            }
            let mut payload = vec![0u8; len];
            let mut crc_buf = [0u8; 4];
            reader.read_exact(&mut payload).map_err(|_| corrupt())?;
            reader.read_exact(&mut crc_buf).map_err(|_| corrupt())?;
            if crc32(&payload) != u32::from_le_bytes(crc_buf) {
                return Err(corrupt());
            }
            match crate::log::decode_op(&payload).ok_or_else(corrupt)? {
                LogOp::Put { bucket, key, value } => {
                    live.insert((bucket, key), value);
                }
                LogOp::Delete { bucket, key } => {
                    live.remove(&(bucket, key));
                }
                LogOp::EpochFence { epoch } => {
                    fence = Some(fence.map_or(epoch, |f| f.max(epoch)));
                }
            }
        }
        // The snapshot keeps only the newest leader fence, first, so a
        // follower replaying a compacted log still learns the epoch
        // in-band before any data record.
        Ok(fence
            .map(|epoch| LogOp::EpochFence { epoch })
            .into_iter()
            .chain(
                live.into_iter()
                    .map(|((bucket, key), value)| LogOp::Put { bucket, key, value }),
            )
            .collect())
    }

    /// Copy `[*mark, end)` of `src` into `dst`, advancing `*mark`.
    fn copy_tail(
        &self,
        src: &mut File,
        dst: &mut BufWriter<File>,
        mark: &mut u64,
        end: u64,
    ) -> io::Result<()> {
        src.seek(SeekFrom::Start(*mark))?;
        let mut remaining = end - *mark;
        let mut buf = vec![0u8; COPY_CHUNK.min(remaining as usize).max(1)];
        while remaining > 0 {
            let want = buf.len().min(remaining as usize);
            let n = match src.read(&mut buf[..want]) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            dst.write_all(&buf[..n])?;
            self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
            remaining -= n as u64;
        }
        *mark = end;
        Ok(())
    }

    fn compact_inner(&self) -> io::Result<()> {
        let tmp = self.path.with_extension("compact");
        let mut mark = self.inner.lock().file_len;

        // Phase 1: snapshot the committed prefix (no locks held — the
        // bytes below `mark` are immutable while the file lives).
        let live = Self::replay_prefix(&self.path, mark)?;
        let mut writer = BufWriter::new(File::create(&tmp)?);
        for op in &live {
            let record = encode_record(op);
            writer.write_all(&record)?;
            self.bytes_written
                .fetch_add(record.len() as u64, Ordering::Relaxed);
        }

        // Phase 2: chase the tail without blocking appenders until the
        // gap is small; then pay the one big fsync off the append path.
        let mut src = File::open(&self.path)?;
        loop {
            let end = self.inner.lock().file_len;
            if end - mark <= FINAL_TAIL_MAX {
                break;
            }
            self.copy_tail(&mut src, &mut writer, &mut mark, end)?;
        }
        writer.flush()?;
        writer.get_ref().sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);

        // Phase 3: the only stop-the-world window — copy the final tail
        // (≤ FINAL_TAIL_MAX bytes), rename, reopen, bump the epoch. The
        // swap write-lock keeps `read_log` from straddling the rename.
        let _swap = self.swap.write();
        let mut inner = self.inner.lock();
        let end = inner.file_len;
        self.copy_tail(&mut src, &mut writer, &mut mark, end)?;
        writer.flush()?;
        writer.get_ref().sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        // Failpoint: hold the swap window open (or fail it) on demand.
        clarens_faults::check_io(clarens_faults::sites::DB_COMPACT_SWAP)?;
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        inner.file_len = file.metadata()?.len();
        inner.file = Arc::new(file);
        self.committed.store(inner.file_len, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        if self.sync_on_append && self.group_commit {
            // Everything appended before the swap is in the new, fsynced
            // file: release any parked group members up to that LSN.
            let lsn = inner.lsn;
            drop(inner);
            let _state = self.group.lock();
            self.synced.fetch_max(lsn, Ordering::AcqRel);
            self.group_cond.notify_all();
        }
        Ok(())
    }
}

impl StorageEngine for WalEngine {
    fn name(&self) -> &'static str {
        "wal"
    }

    fn append(&self, op: &LogOp) -> io::Result<()> {
        let record = encode_record(op);
        let (lsn, file) = {
            let mut inner = self.inner.lock();
            {
                let mut sink: &File = &inner.file;
                write_framed(&mut sink, &record)?;
            }
            inner.file_len += record.len() as u64;
            inner.lsn += 1;
            self.committed.store(inner.file_len, Ordering::Release);
            self.bytes_written
                .fetch_add(record.len() as u64, Ordering::Relaxed);
            (inner.lsn, Arc::clone(&inner.file))
        };
        if !self.sync_on_append {
            return Ok(());
        }
        if self.group_commit {
            self.commit(lsn)
        } else {
            clarens_faults::check_io(clarens_faults::sites::DB_WAL_FSYNC)?;
            file.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    fn sync(&self, _state: &dyn crate::storage::SnapshotSource) -> io::Result<()> {
        let (lsn, file) = {
            let inner = self.inner.lock();
            (inner.lsn, Arc::clone(&inner.file))
        };
        clarens_faults::check_io(clarens_faults::sites::DB_WAL_FSYNC)?;
        file.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if self.sync_on_append && self.group_commit {
            let _state = self.group.lock();
            self.synced.fetch_max(lsn, Ordering::AcqRel);
            self.group_cond.notify_all();
        }
        Ok(())
    }

    fn compact(&self, _state: &dyn crate::storage::SnapshotSource) -> io::Result<()> {
        if self.compacting.swap(true, Ordering::SeqCst) {
            return Ok(()); // a compaction is already in flight
        }
        let result = self.compact_inner();
        self.compacting.store(false, Ordering::SeqCst);
        if result.is_err() {
            let _ = std::fs::remove_file(self.path.with_extension("compact"));
        }
        result
    }

    fn wants_compaction(&self, live_bytes: u64, ratio: f64) -> bool {
        let len = self.committed.load(Ordering::Acquire);
        if len < self.compact_min_bytes || live_bytes >= len {
            return false;
        }
        (len - live_bytes) as f64 / len as f64 >= ratio
    }

    fn committed_len(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn ships_log(&self) -> bool {
        true
    }

    fn read_log(&self, epoch: u64, offset: u64, max_bytes: usize) -> io::Result<WalChunk> {
        // The read lock pins the (file, epoch) pairing: a compaction swap
        // takes the write side, so we can never read the new file's bytes
        // and label them with the old epoch.
        let _swap = self.swap.read();
        let cur_epoch = self.epoch.load(Ordering::SeqCst);
        let committed = self.committed.load(Ordering::Acquire);
        let start = if epoch != cur_epoch || offset > committed {
            0
        } else {
            offset
        };
        let budget = (committed - start).min(max_bytes as u64) as usize;
        let mut data = vec![0u8; budget];
        if budget > 0 {
            let mut file = File::open(&self.path)?;
            file.seek(SeekFrom::Start(start))?;
            let mut filled = 0;
            while filled < budget {
                match file.read(&mut data[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            data.truncate(filled);
            let whole = frame_prefix(&data);
            data.truncate(whole);
        }
        Ok(WalChunk {
            epoch: cur_epoch,
            offset: start,
            data,
            len: committed,
        })
    }

    fn counters(&self) -> StorageCounters {
        StorageCounters {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}
