//! CRC-32 (IEEE 802.3 polynomial), used to checksum write-ahead-log
//! records so that a torn write at the tail of the log is detected during
//! recovery instead of being replayed as garbage.

/// Build the lookup table for the reflected polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Incremental CRC-32.
#[derive(Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"a moderately long write-ahead log record payload";
        let whole = crc32(data);
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"record".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut tampered = data.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32(&tampered), original);
            }
        }
    }
}
