//! The namespaced key-value store.
//!
//! [`Store`] is the "database" the paper refers to throughout: "The list of
//! group members is cached in a database, as is all VO information" (§2.1),
//! and each Figure-4 request "incurs a database lookup for all registered
//! methods in the server" (§4). It offers:
//!
//! * named buckets, each an ordered map of `String → Vec<u8>`, lock-striped
//!   across [`StorageOptions::shards`] shards by bucket hash so writes to
//!   different buckets (sessions vs. VO vs. ACL) never contend,
//! * optional durability through a pluggable [`StorageEngine`] (group-commit
//!   WAL by default, checkpointing mmap snapshot as the alternative),
//! * crash recovery with torn-tail truncation and background log compaction
//!   (a janitor thread triggered by the WAL garbage ratio),
//! * prefix scans (hierarchical ACL/VO keys are path-like),
//! * lookup counters, so the benchmark harness can report DB activity per
//!   request like the paper describes,
//! * per-bucket generation counters, so read-through caches layered above
//!   the store can validate an entry with a single atomic load instead of a
//!   lookup plus deserialization.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::log::LogOp;
use crate::mmap_engine::MmapEngine;
use crate::storage::{
    SnapshotSource, StorageBackend, StorageCounters, StorageEngine, StorageOptions,
};
use crate::wal_engine::WalEngine;

/// Inner map type: bucket name → ordered key/value map.
type Buckets = BTreeMap<String, BTreeMap<String, Vec<u8>>>;

/// How often the janitor re-evaluates the garbage ratio.
const JANITOR_TICK: Duration = Duration::from_millis(200);

/// On-disk frame size of a `Put` record, from component lengths (see
/// [`crate::log::put_record_size`]); the store tracks the summed size of
/// all live records to estimate the log's garbage ratio without I/O.
fn frame_size(bucket_len: usize, key_len: usize, value_len: usize) -> u64 {
    (4 + 1 + 2 + 2 + 4 + 4 + bucket_len + key_len + value_len) as u64
}

/// Store statistics (monotonic counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of point lookups served.
    pub lookups: u64,
    /// Number of scans served.
    pub scans: u64,
    /// Number of writes (put + delete).
    pub writes: u64,
    /// Number of WAL fsyncs issued (per-append syncs, group commits,
    /// explicit syncs, compaction rewrites, recovery repairs).
    pub syncs: u64,
    /// Group-commit batches (each one fsync covering ≥ 1 append).
    pub group_commits: u64,
    /// Compactions / checkpoints completed.
    pub compactions: u64,
}

/// The lock-striped bucket maps. Shared with the janitor thread, which
/// needs a consistent snapshot source that outlives any one borrow of the
/// store.
struct ShardSet {
    shards: Box<[RwLock<Buckets>]>,
}

impl ShardSet {
    fn new(n: usize) -> ShardSet {
        ShardSet {
            shards: (0..n.max(1))
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// FNV-1a over the bucket name selects the shard; every key of one
    /// bucket lives in one shard, so single-bucket operations take one
    /// lock and cross-bucket writes stripe.
    fn shard(&self, bucket: &str) -> &RwLock<Buckets> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bucket.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }
}

impl SnapshotSource for ShardSet {
    fn emit_ops(&self, emit: &mut crate::storage::EmitOp<'_>) -> io::Result<()> {
        // Hold every shard's read lock for the whole emit: the cut must
        // be a single consistent point in time.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        for guard in &guards {
            for (bucket, map) in guard.iter() {
                for (key, value) in map {
                    emit(bucket, key, value)?;
                }
            }
        }
        Ok(())
    }
}

/// A concurrent, optionally-persistent KV store.
pub struct Store {
    shards: Arc<ShardSet>,
    /// `None` for purely in-memory stores.
    engine: Option<Arc<dyn StorageEngine>>,
    lookups: AtomicU64,
    scans: AtomicU64,
    writes: AtomicU64,
    /// Per-bucket generation counters. Bumped inside the shard write-lock
    /// scope after every mutation, so a reader that loads a generation
    /// *before* reading data can never cache stale data under a current
    /// tag (the bump invalidates it; spurious invalidation is the only
    /// possible race, never staleness).
    generations: RwLock<HashMap<String, Arc<AtomicU64>>>,
    /// Set once a WAL write or fsync fails. A failed append may have left
    /// a partial record in the log, and after a failed fsync the kernel
    /// may have dropped dirty pages — either way further appends could
    /// frame-shift or silently lose durability, so the store degrades to
    /// explicit read-only instead (paper's "sessions survive restarts"
    /// promise requires the log to stay trustworthy).
    degraded: Arc<AtomicBool>,
    /// Estimated on-disk bytes of a minimal snapshot of current state.
    /// `committed_len - live_bytes` is the log's garbage, which is what
    /// triggers the janitor.
    live_bytes: Arc<AtomicU64>,
    /// Highest leader-epoch fence seen, either appended locally (a node
    /// claiming leadership) or replayed from the log at open. Distinct
    /// from [`Store::wal_epoch`], which counts log-file incarnations.
    fence_epoch: AtomicU64,
    janitor_stop: Option<Arc<AtomicBool>>,
    janitor: Option<std::thread::JoinHandle<()>>,
}

/// One cursor-addressed slice of the write-ahead log, served to
/// replication followers. `data` is always a whole number of CRC-framed
/// records starting at `offset` within WAL incarnation `epoch`; `len` is
/// the leader's committed WAL length at read time, so a follower can
/// compute its replication lag as `len - (offset + data.len())`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalChunk {
    /// WAL incarnation the chunk was read from.
    pub epoch: u64,
    /// Byte offset of the first record in `data`.
    pub offset: u64,
    /// Framed records (`[len][payload][crc]`, repeated).
    pub data: Vec<u8>,
    /// Committed WAL length when the chunk was cut.
    pub len: u64,
}

impl WalChunk {
    /// Cursor for the next fetch.
    pub fn next_offset(&self) -> u64 {
        self.offset + self.data.len() as u64
    }
}

/// Message prefix of errors served by a degraded (read-only) store.
pub const DEGRADED_MSG: &str = "store degraded (read-only)";

/// Was this error produced by a degraded store refusing a write?
pub fn is_degraded_error(err: &io::Error) -> bool {
    err.to_string().starts_with(DEGRADED_MSG)
}

impl Store {
    /// A purely in-memory store (no durability).
    pub fn in_memory() -> Self {
        Self::assemble(None, Vec::new(), &StorageOptions::default())
    }

    /// An in-memory store with an explicit shard count (used by the
    /// lock-striping ablation; the default is [`StorageOptions::shards`]).
    pub fn in_memory_with_shards(shards: usize) -> Self {
        Self::assemble(
            None,
            Vec::new(),
            &StorageOptions {
                shards,
                ..StorageOptions::default()
            },
        )
    }

    /// Open a persistent store at `path` with default options (WAL
    /// backend, no per-append fsync, janitor compaction at 50% garbage).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(path, StorageOptions::default())
    }

    /// Like [`Store::open`] but fsyncing every append when `sync` is true.
    pub fn open_with_sync(path: impl Into<PathBuf>, sync: bool) -> io::Result<Self> {
        Self::open_with(
            path,
            StorageOptions {
                sync,
                ..StorageOptions::default()
            },
        )
    }

    /// Open a persistent store with explicit [`StorageOptions`]: backend
    /// choice, durability mode, group commit, shard count, and the
    /// background-compaction trigger.
    pub fn open_with(path: impl Into<PathBuf>, options: StorageOptions) -> io::Result<Self> {
        let path = path.into();
        let (engine, ops): (Arc<dyn StorageEngine>, Vec<LogOp>) = match options.backend {
            StorageBackend::Wal => {
                let (engine, ops) = WalEngine::open(path, &options)?;
                (Arc::new(engine), ops)
            }
            StorageBackend::Mmap => {
                let (engine, ops) = MmapEngine::open(path, &options)?;
                (Arc::new(engine), ops)
            }
        };
        Ok(Self::assemble(Some(engine), ops, &options))
    }

    fn assemble(
        engine: Option<Arc<dyn StorageEngine>>,
        ops: Vec<LogOp>,
        options: &StorageOptions,
    ) -> Store {
        let shards = Arc::new(ShardSet::new(options.shards));
        let mut live = 0u64;
        let mut fence = 0u64;
        for op in ops {
            match op {
                LogOp::Put { bucket, key, value } => {
                    let shard = shards.shard(&bucket);
                    live += frame_size(bucket.len(), key.len(), value.len());
                    let removed = frame_size(bucket.len(), key.len(), 0);
                    if let Some(old) = shard.write().entry(bucket).or_default().insert(key, value) {
                        live -= removed + old.len() as u64;
                    }
                }
                LogOp::Delete { bucket, key } => {
                    let removed = frame_size(bucket.len(), key.len(), 0);
                    if let Some(old) = shards
                        .shard(&bucket)
                        .write()
                        .get_mut(&bucket)
                        .and_then(|b| b.remove(&key))
                    {
                        live -= removed + old.len() as u64;
                    }
                }
                LogOp::EpochFence { epoch } => fence = fence.max(epoch),
            }
        }
        let degraded = Arc::new(AtomicBool::new(false));
        let live_bytes = Arc::new(AtomicU64::new(live));
        let (janitor_stop, janitor) = match &engine {
            Some(engine) if options.compact_ratio > 0.0 => {
                let stop = Arc::new(AtomicBool::new(false));
                let thread = spawn_janitor(
                    Arc::clone(engine),
                    Arc::clone(&shards),
                    Arc::clone(&degraded),
                    Arc::clone(&live_bytes),
                    Arc::clone(&stop),
                    options.compact_ratio,
                );
                (Some(stop), Some(thread))
            }
            _ => (None, None),
        };
        Store {
            shards,
            engine,
            lookups: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            generations: RwLock::new(HashMap::new()),
            degraded,
            live_bytes,
            fence_epoch: AtomicU64::new(fence),
            janitor_stop,
            janitor,
        }
    }

    /// Is the store poisoned into read-only degraded mode?
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn degraded_error() -> io::Error {
        io::Error::other(format!("{DEGRADED_MSG}: WAL write or fsync failed"))
    }

    /// Log `op`, poisoning the store on failure. Reads keep working after
    /// poisoning; writes get [`DEGRADED_MSG`] errors without touching the
    /// (possibly frame-shifted) log again.
    fn wal_append(&self, op: &LogOp) -> io::Result<()> {
        if self.is_degraded() {
            return Err(Self::degraded_error());
        }
        let Some(engine) = &self.engine else {
            return Ok(());
        };
        match engine.append(op) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.degraded.store(true, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    fn live_add(&self, n: u64) {
        self.live_bytes.fetch_add(n, Ordering::Relaxed);
    }

    fn live_sub(&self, n: u64) {
        let _ = self
            .live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Insert or overwrite a value.
    pub fn put(&self, bucket: &str, key: &str, value: impl Into<Vec<u8>>) -> io::Result<()> {
        let value = value.into();
        self.writes.fetch_add(1, Ordering::Relaxed);
        let op = LogOp::Put {
            bucket: bucket.to_owned(),
            key: key.to_owned(),
            value,
        };
        self.wal_append(&op)?;
        let LogOp::Put {
            bucket: owned_bucket,
            key: owned_key,
            value,
        } = op
        else {
            unreachable!()
        };
        let added = frame_size(bucket.len(), key.len(), value.len());
        let generation = self.generation_handle(bucket);
        let old_len = {
            let mut shard = self.shards.shard(bucket).write();
            let old = shard
                .entry(owned_bucket)
                .or_default()
                .insert(owned_key, value);
            generation.fetch_add(1, Ordering::SeqCst);
            old.map(|o| o.len())
        };
        self.live_add(added);
        if let Some(old_len) = old_len {
            self.live_sub(frame_size(bucket.len(), key.len(), old_len));
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, bucket: &str, key: &str) -> Option<Vec<u8>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.shards
            .shard(bucket)
            .read()
            .get(bucket)?
            .get(key)
            .cloned()
    }

    /// Does the key exist?
    pub fn contains(&self, bucket: &str, key: &str) -> bool {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.shards
            .shard(bucket)
            .read()
            .get(bucket)
            .is_some_and(|b| b.contains_key(key))
    }

    /// Delete a key. Returns whether it existed.
    pub fn delete(&self, bucket: &str, key: &str) -> io::Result<bool> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let op = LogOp::Delete {
            bucket: bucket.to_owned(),
            key: key.to_owned(),
        };
        self.wal_append(&op)?;
        let generation = self.generation_handle(bucket);
        let old_len = {
            let mut shard = self.shards.shard(bucket).write();
            let old = shard.get_mut(bucket).and_then(|b| b.remove(key));
            generation.fetch_add(1, Ordering::SeqCst);
            old.map(|o| o.len())
        };
        if let Some(old_len) = old_len {
            self.live_sub(frame_size(bucket.len(), key.len(), old_len));
        }
        Ok(old_len.is_some())
    }

    /// All `(key, value)` pairs in a bucket whose keys start with `prefix`
    /// (ordered by key).
    pub fn scan_prefix(&self, bucket: &str, prefix: &str) -> Vec<(String, Vec<u8>)> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards.shard(bucket).read();
        match shard.get(bucket) {
            None => Vec::new(),
            Some(map) => map
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// All keys in a bucket (ordered).
    pub fn keys(&self, bucket: &str) -> Vec<String> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.shards
            .shard(bucket)
            .read()
            .get(bucket)
            .map(|b| b.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of keys in a bucket.
    pub fn len(&self, bucket: &str) -> usize {
        self.shards
            .shard(bucket)
            .read()
            .get(bucket)
            .map_or(0, |b| b.len())
    }

    /// Is the bucket empty or absent?
    pub fn is_empty(&self, bucket: &str) -> bool {
        self.len(bucket) == 0
    }

    /// Names of all buckets (sorted).
    pub fn bucket_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Remove every key in a bucket.
    pub fn clear_bucket(&self, bucket: &str) -> io::Result<()> {
        let keys = self.keys(bucket);
        for key in keys {
            self.delete(bucket, &key)?;
        }
        Ok(())
    }

    /// Rewrite the persistent image as a minimal snapshot of current state
    /// (drops superseded records). Runs concurrently with appends — only
    /// the final file swap briefly blocks writers. No-op for in-memory
    /// stores; concurrent calls (manual + janitor) coalesce.
    pub fn compact(&self) -> io::Result<()> {
        match &self.engine {
            None => Ok(()),
            Some(engine) => engine.compact(&*self.shards),
        }
    }

    /// Committed WAL length in bytes (0 for in-memory stores). Exported as
    /// the `db.wal_offset` gauge; replication followers compare it against
    /// their applied cursor to compute lag.
    pub fn wal_offset(&self) -> u64 {
        self.engine.as_ref().map_or(0, |e| e.committed_len())
    }

    /// Current WAL incarnation. Starts at 0 and bumps on every compaction
    /// (each compaction rewrites the file, so prior offsets die with it).
    pub fn wal_epoch(&self) -> u64 {
        self.engine.as_ref().map_or(0, |e| e.epoch())
    }

    /// Append a leader-epoch fence record to the log. The fence carries no
    /// data; it seals every record before it under the previous leadership
    /// and ships through replication so followers observe the epoch change
    /// in exact log order. Monotonic: a fence at or below the current
    /// epoch is ignored.
    pub fn append_fence(&self, epoch: u64) -> io::Result<()> {
        if epoch <= self.fence_epoch.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.wal_append(&LogOp::EpochFence { epoch })?;
        self.fence_epoch.fetch_max(epoch, Ordering::SeqCst);
        Ok(())
    }

    /// Highest leader-epoch fence in the log (0 before any election).
    pub fn fence_epoch(&self) -> u64 {
        self.fence_epoch.load(Ordering::SeqCst)
    }

    /// Read a replication chunk: up to `max_bytes` of whole WAL records
    /// starting at `offset` within WAL incarnation `epoch`.
    ///
    /// If the caller's cursor is stale — the epoch no longer matches, or
    /// the offset runs past the committed length — the read restarts from
    /// offset 0 of the current incarnation; the follower detects the jump
    /// by comparing the returned `offset`/`epoch` against what it asked
    /// for. Only fully-framed, CRC-valid records are ever returned, and
    /// the read is excluded from the compaction file swap, so a chunk's
    /// bytes always belong to the epoch it reports. Errors for in-memory
    /// stores and for engines that do not ship a log.
    pub fn wal_read(&self, epoch: u64, offset: u64, max_bytes: usize) -> io::Result<WalChunk> {
        match &self.engine {
            None => Err(io::Error::other(
                "wal_read requires a persistent store (no WAL to ship)",
            )),
            Some(engine) => engine.read_log(epoch, offset, max_bytes),
        }
    }

    /// Force pending state to disk (an fsync for the WAL engine, a full
    /// checkpoint for the mmap engine).
    pub fn sync(&self) -> io::Result<()> {
        let Some(engine) = &self.engine else {
            return Ok(());
        };
        if self.is_degraded() {
            return Err(Self::degraded_error());
        }
        match engine.sync(&*self.shards) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.degraded.store(true, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Current generation of a bucket. Starts at 0 and increases on every
    /// `put`/`delete` touching the bucket (including no-op deletes — the
    /// counter may over-invalidate, never under-invalidate).
    ///
    /// Reader protocol for epoch-validated caches: load the generation
    /// *first*, then read the data, then store both; a cached entry is
    /// valid only while the bucket generation still equals its tag. Writers
    /// bump the counter inside the write-lock scope after mutating, so a
    /// tag can never be newer than the data it guards.
    pub fn generation(&self, bucket: &str) -> u64 {
        self.generation_handle(bucket).load(Ordering::SeqCst)
    }

    /// Shared handle to a bucket's generation counter, for callers that
    /// validate on every request and want a single atomic load with no
    /// map lookup.
    pub fn generation_handle(&self, bucket: &str) -> Arc<AtomicU64> {
        if let Some(handle) = self.generations.read().get(bucket) {
            return Arc::clone(handle);
        }
        let mut generations = self.generations.write();
        Arc::clone(generations.entry(bucket.to_owned()).or_default())
    }

    /// Short name of the storage backend ("wal", "mmap", or "memory").
    pub fn backend(&self) -> &'static str {
        self.engine.as_ref().map_or("memory", |e| e.name())
    }

    /// Estimated on-disk bytes of a minimal snapshot of live state (the
    /// numerator of the garbage-ratio calculation).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Raw engine counters (all zero for in-memory stores).
    pub fn storage_counters(&self) -> StorageCounters {
        self.engine
            .as_ref()
            .map(|e| e.counters())
            .unwrap_or_default()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let engine = self.storage_counters();
        StoreStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            syncs: engine.fsyncs,
            group_commits: engine.group_commits,
            compactions: engine.compactions,
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Some(stop) = self.janitor_stop.take() {
            stop.store(true, Ordering::SeqCst);
        }
        if let Some(thread) = self.janitor.take() {
            let _ = thread.join();
        }
    }
}

/// The background compaction loop: wake every [`JANITOR_TICK`], compare
/// the engine's committed length against the store's live-byte estimate,
/// and compact when the garbage ratio crosses the configured threshold.
/// Compaction errors are swallowed (the old file stays intact; the next
/// tick retries) and a degraded store is left alone entirely.
fn spawn_janitor(
    engine: Arc<dyn StorageEngine>,
    shards: Arc<ShardSet>,
    degraded: Arc<AtomicBool>,
    live_bytes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    ratio: f64,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("clarens-db-janitor".into())
        .spawn(move || {
            let slice = Duration::from_millis(25);
            let slices = (JANITOR_TICK.as_millis() / slice.as_millis()).max(1) as u32;
            loop {
                for _ in 0..slices {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(slice);
                }
                if degraded.load(Ordering::SeqCst) {
                    continue;
                }
                if engine.wants_compaction(live_bytes.load(Ordering::Relaxed), ratio) {
                    let _ = engine.compact(&*shards);
                }
            }
        })
        .expect("spawn janitor thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "clarens-db-store-{}-{name}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn basic_crud_in_memory() {
        let store = Store::in_memory();
        assert_eq!(store.get("b", "k"), None);
        store.put("b", "k", b"v1".to_vec()).unwrap();
        assert_eq!(store.get("b", "k").unwrap(), b"v1");
        store.put("b", "k", b"v2".to_vec()).unwrap();
        assert_eq!(store.get("b", "k").unwrap(), b"v2");
        assert!(store.contains("b", "k"));
        assert!(store.delete("b", "k").unwrap());
        assert!(!store.delete("b", "k").unwrap());
        assert!(!store.contains("b", "k"));
    }

    #[test]
    fn fence_epoch_persists_and_survives_compaction() {
        let path = temp_path("fence");
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.fence_epoch(), 0);
            store.put("b", "k", b"v".to_vec()).unwrap();
            store.append_fence(3).unwrap();
            // Stale/duplicate fences are no-ops.
            store.append_fence(3).unwrap();
            store.append_fence(1).unwrap();
            assert_eq!(store.fence_epoch(), 3);
            store.put("b", "k2", b"v2".to_vec()).unwrap();
            store.sync().unwrap();
        }
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.fence_epoch(), 3);
            // Compaction rewrites the log but keeps the newest fence.
            store.compact().unwrap();
            assert_eq!(store.fence_epoch(), 3);
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.fence_epoch(), 3);
        assert_eq!(store.get("b", "k2").unwrap(), b"v2");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buckets_are_isolated() {
        let store = Store::in_memory();
        store.put("sessions", "id", b"alice".to_vec()).unwrap();
        store.put("acl", "id", b"deny".to_vec()).unwrap();
        assert_eq!(store.get("sessions", "id").unwrap(), b"alice");
        assert_eq!(store.get("acl", "id").unwrap(), b"deny");
        assert_eq!(store.len("sessions"), 1);
        assert_eq!(
            store.bucket_names(),
            vec!["acl".to_string(), "sessions".to_string()]
        );
    }

    #[test]
    fn prefix_scan_ordered() {
        let store = Store::in_memory();
        for key in ["file.read", "file.ls", "file.stat", "system.auth", "file"] {
            store.put("methods", key, b"1".to_vec()).unwrap();
        }
        let hits = store.scan_prefix("methods", "file.");
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["file.ls", "file.read", "file.stat"]);
        assert!(store.scan_prefix("methods", "zzz").is_empty());
        assert!(store.scan_prefix("nobucket", "x").is_empty());
        assert_eq!(store.scan_prefix("methods", "").len(), 5);
    }

    #[test]
    fn persistence_across_reopen() {
        let path = temp_path("reopen");
        {
            let store = Store::open(&path).unwrap();
            store.put("sessions", "s1", b"alice".to_vec()).unwrap();
            store.put("sessions", "s2", b"bob".to_vec()).unwrap();
            store.delete("sessions", "s1").unwrap();
            store.sync().unwrap();
        }
        {
            // This is the paper's restart-survival property.
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("sessions", "s1"), None);
            assert_eq!(store.get("sessions", "s2").unwrap(), b"bob");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix_and_truncates() {
        let path = temp_path("torn");
        {
            let store = Store::open(&path).unwrap();
            store.put("b", "k1", b"v1".to_vec()).unwrap();
            store.put("b", "k2", b"v2".to_vec()).unwrap();
            store.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "k1").unwrap(), b"v1");
            assert_eq!(store.get("b", "k2"), None); // lost in the tear
                                                    // The repair must leave a clean log.
            store.put("b", "k3", b"v3".to_vec()).unwrap();
            store.sync().unwrap();
        }
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "k1").unwrap(), b"v1");
            assert_eq!(store.get("b", "k3").unwrap(), b"v3");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_repair_honors_sync_flag() {
        let path = temp_path("torn-sync-flag");
        let tear = |path: &PathBuf| {
            let len = std::fs::metadata(path).unwrap().len();
            let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
            f.set_len(len - 2).unwrap();
        };
        {
            let store = Store::open(&path).unwrap();
            store.put("b", "k1", b"v1".to_vec()).unwrap();
            store.put("b", "k2", b"v2".to_vec()).unwrap();
            store.sync().unwrap();
        }
        tear(&path);
        {
            // sync=false: the torn tail is truncated in place with no
            // fsync on the startup path (the old behavior compacted —
            // and fsynced — unconditionally).
            let store = Store::open_with_sync(&path, false).unwrap();
            assert_eq!(store.stats().syncs, 0, "repair must honor sync=false");
            assert_eq!(store.get("b", "k1").unwrap(), b"v1");
            store.put("b", "k2", b"v2".to_vec()).unwrap();
            store.sync().unwrap();
        }
        tear(&path);
        {
            // sync=true: the truncation is made durable, and the fsync is
            // accounted for.
            let store = Store::open_with_sync(&path, true).unwrap();
            assert_eq!(store.stats().syncs, 1, "repair fsync must be counted");
            assert_eq!(store.get("b", "k1").unwrap(), b"v1");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_log() {
        let path = temp_path("compact");
        {
            let store = Store::open(&path).unwrap();
            for i in 0..100 {
                store
                    .put("b", "hot-key", format!("value-{i}").into_bytes())
                    .unwrap();
            }
            store.sync().unwrap();
            let before = std::fs::metadata(&path).unwrap().len();
            store.compact().unwrap();
            let after = std::fs::metadata(&path).unwrap().len();
            assert!(after < before / 10, "before={before} after={after}");
            assert_eq!(store.get("b", "hot-key").unwrap(), b"value-99");
            assert_eq!(store.stats().compactions, 1);
        }
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "hot-key").unwrap(), b"value-99");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn janitor_compacts_in_background() {
        let path = temp_path("janitor");
        {
            let store = Store::open_with(
                &path,
                StorageOptions {
                    compact_ratio: 0.5,
                    compact_min_bytes: 4 * 1024,
                    ..StorageOptions::default()
                },
            )
            .unwrap();
            // Churn one hot key far past the garbage threshold, then wait
            // for the janitor to notice.
            let value = vec![7u8; 512];
            for _ in 0..200 {
                store.put("b", "hot", value.clone()).unwrap();
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while store.stats().compactions == 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
            }
            assert!(
                store.stats().compactions >= 1,
                "janitor never compacted (wal={}, live={})",
                store.wal_offset(),
                store.live_bytes()
            );
            assert!(store.wal_epoch() >= 1);
            assert_eq!(store.get("b", "hot").unwrap(), value);
            // Writes keep landing after the swap.
            store.put("b", "post", b"x".to_vec()).unwrap();
        }
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "post").unwrap(), b"x");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clear_bucket() {
        let store = Store::in_memory();
        store.put("b", "k1", b"1".to_vec()).unwrap();
        store.put("b", "k2", b"2".to_vec()).unwrap();
        store.put("other", "k", b"3".to_vec()).unwrap();
        store.clear_bucket("b").unwrap();
        assert!(store.is_empty("b"));
        assert_eq!(store.len("other"), 1);
    }

    #[test]
    fn stats_counters() {
        let store = Store::in_memory();
        store.put("b", "k", b"v".to_vec()).unwrap();
        let _ = store.get("b", "k");
        let _ = store.get("b", "missing");
        let _ = store.scan_prefix("b", "");
        store.delete("b", "k").unwrap();
        let stats = store.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.scans, 1);
        assert_eq!(stats.writes, 2);
    }

    #[test]
    fn live_bytes_tracks_overwrites_and_deletes() {
        let store = Store::in_memory();
        assert_eq!(store.live_bytes(), 0);
        store.put("b", "k", vec![0u8; 100]).unwrap();
        let one = store.live_bytes();
        assert!(one > 100);
        // Overwriting replaces, not accumulates.
        store.put("b", "k", vec![0u8; 100]).unwrap();
        assert_eq!(store.live_bytes(), one);
        // "k2" is one byte of key longer than "k".
        store.put("b", "k2", vec![0u8; 100]).unwrap();
        assert_eq!(store.live_bytes(), 2 * one + 1);
        store.delete("b", "k").unwrap();
        store.delete("b", "k2").unwrap();
        assert_eq!(store.live_bytes(), 0);
    }

    #[test]
    fn generations_bump_on_writes_only() {
        let store = Store::in_memory();
        assert_eq!(store.generation("b"), 0);
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert_eq!(store.generation("b"), 1);
        // Reads never move the counter.
        let _ = store.get("b", "k");
        let _ = store.scan_prefix("b", "");
        let _ = store.keys("b");
        assert_eq!(store.generation("b"), 1);
        store.delete("b", "k").unwrap();
        assert_eq!(store.generation("b"), 2);
        // A no-op delete still bumps (over-invalidation is allowed).
        store.delete("b", "ghost").unwrap();
        assert_eq!(store.generation("b"), 3);
    }

    #[test]
    fn generations_are_per_bucket() {
        let store = Store::in_memory();
        store.put("a", "k", b"v".to_vec()).unwrap();
        store.put("a", "k2", b"v".to_vec()).unwrap();
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert_eq!(store.generation("a"), 2);
        assert_eq!(store.generation("b"), 1);
        assert_eq!(store.generation("untouched"), 0);
    }

    #[test]
    fn generation_handle_tracks_bucket() {
        let store = Store::in_memory();
        let handle = store.generation_handle("b");
        assert_eq!(handle.load(Ordering::SeqCst), 0);
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert_eq!(handle.load(Ordering::SeqCst), 1);
        // The handle is shared, not a snapshot.
        assert!(Arc::ptr_eq(&handle, &store.generation_handle("b")));
    }

    #[test]
    fn clear_bucket_moves_generation() {
        let store = Store::in_memory();
        store.put("b", "k1", b"1".to_vec()).unwrap();
        store.put("b", "k2", b"2".to_vec()).unwrap();
        let before = store.generation("b");
        store.clear_bucket("b").unwrap();
        assert!(store.generation("b") > before);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let store = Arc::new(Store::in_memory());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let key = format!("t{t}-k{i}");
                    store.put("b", &key, key.as_bytes().to_vec()).unwrap();
                    assert_eq!(store.get("b", &key).unwrap(), key.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len("b"), 8 * 200);
    }

    #[test]
    fn concurrent_cross_bucket_writes_stripe() {
        // Eight writers on eight distinct buckets: with lock-striped
        // shards they interleave freely; the assertion is pure
        // correctness (each bucket converges to its own writer's state).
        let store = Arc::new(Store::in_memory());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let bucket = format!("bucket-{t}");
                for i in 0..200 {
                    store.put(&bucket, &format!("k{i}"), vec![t as u8]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8 {
            let bucket = format!("bucket-{t}");
            assert_eq!(store.len(&bucket), 200);
            assert_eq!(store.get(&bucket, "k0").unwrap(), vec![t as u8]);
        }
        assert_eq!(store.bucket_names().len(), 8);
    }

    #[test]
    fn fsync_failure_degrades_to_read_only() {
        let path = temp_path("degraded");
        let store = Store::open_with_sync(&path, true).unwrap();
        store.put("sessions", "s1", b"alice".to_vec()).unwrap();
        assert!(!store.is_degraded());

        // One fsync failure poisons the writer...
        {
            let _g =
                clarens_faults::with_thread(clarens_faults::sites::DB_WAL_FSYNC, "err|times=1");
            let err = store.put("sessions", "s2", b"bob".to_vec()).unwrap_err();
            assert!(clarens_faults::is_injected(&err), "{err}");
        }
        assert!(store.is_degraded());

        // ...writes now fail fast with the documented degraded error,
        // even though the transient fault itself has cleared...
        let err = store.put("sessions", "s3", b"carol".to_vec()).unwrap_err();
        assert!(is_degraded_error(&err), "{err}");
        let err = store.delete("sessions", "s1").unwrap_err();
        assert!(is_degraded_error(&err), "{err}");
        assert!(store.sync().is_err());

        // ...and reads keep serving the pre-fault state.
        assert_eq!(store.get("sessions", "s1").unwrap(), b"alice");
        assert_eq!(store.get("sessions", "s2"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_failure_degrades_without_mutating_memory() {
        let path = temp_path("degraded-append");
        let store = Store::open(&path).unwrap();
        let _g = clarens_faults::with_thread(clarens_faults::sites::DB_WAL_APPEND, "err|times=1");
        assert!(store.put("b", "k", b"v".to_vec()).is_err());
        assert!(store.is_degraded());
        // WAL-first ordering: the failed write never reached memory.
        assert_eq!(store.get("b", "k"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_never_degrades() {
        let store = Store::in_memory();
        let _g = clarens_faults::with_thread(clarens_faults::sites::DB_WAL_FSYNC, "err");
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert!(!store.is_degraded());
    }

    #[test]
    fn wal_cursor_streams_and_resumes() {
        use crate::log::decode_stream;
        let path = temp_path("cursor");
        let store = Store::open(&path).unwrap();
        assert_eq!(store.wal_offset(), 0);
        assert_eq!(store.wal_epoch(), 0);
        store.put("sessions", "s1", b"alice".to_vec()).unwrap();
        store.put("sessions", "s2", b"bob".to_vec()).unwrap();

        // A fresh cursor drains the whole log in CRC-framed records.
        let chunk = store.wal_read(0, 0, 1 << 20).unwrap();
        assert_eq!(chunk.epoch, 0);
        assert_eq!(chunk.offset, 0);
        assert_eq!(chunk.len, store.wal_offset());
        assert_eq!(chunk.next_offset(), chunk.len);
        let ops = decode_stream(&chunk.data).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops[0],
            LogOp::Put {
                bucket: "sessions".into(),
                key: "s1".into(),
                value: b"alice".to_vec()
            }
        );

        // Caught up: the next read is empty until new writes land.
        let cursor = chunk.next_offset();
        let empty = store.wal_read(0, cursor, 1 << 20).unwrap();
        assert!(empty.data.is_empty());
        assert_eq!(empty.offset, cursor);
        store.delete("sessions", "s1").unwrap();
        let tail = store.wal_read(0, cursor, 1 << 20).unwrap();
        let ops = decode_stream(&tail.data).unwrap();
        assert_eq!(
            ops,
            vec![LogOp::Delete {
                bucket: "sessions".into(),
                key: "s1".into()
            }]
        );

        // A byte budget smaller than one record yields an empty chunk (no
        // torn frames), and a larger one yields whole records only.
        let partial = store.wal_read(0, 0, 3).unwrap();
        assert!(partial.data.is_empty());
        let one = store.wal_read(0, 0, chunk.data.len() - 1).unwrap();
        assert_eq!(decode_stream(&one.data).unwrap().len(), 1);
        assert!(one.next_offset() < chunk.len);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_bumps_epoch_and_forces_resync() {
        let path = temp_path("cursor-epoch");
        let store = Store::open(&path).unwrap();
        for i in 0..50 {
            store.put("b", "hot", format!("v{i}").into_bytes()).unwrap();
        }
        let pre = store.wal_read(0, 0, 1 << 20).unwrap();
        let cursor = pre.next_offset();
        store.compact().unwrap();
        assert_eq!(store.wal_epoch(), 1);
        assert!(store.wal_offset() < cursor);

        // The stale cursor (old epoch, now-out-of-range offset) restarts
        // from 0 of the new incarnation, which replays the full snapshot.
        let resync = store.wal_read(0, cursor, 1 << 20).unwrap();
        assert_eq!(resync.epoch, 1);
        assert_eq!(resync.offset, 0);
        let ops = crate::log::decode_stream(&resync.data).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0],
            LogOp::Put {
                bucket: "b".into(),
                key: "hot".into(),
                value: b"v49".to_vec()
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_read_refused_for_in_memory_store() {
        let store = Store::in_memory();
        assert_eq!(store.wal_offset(), 0);
        assert!(store.wal_read(0, 0, 1024).is_err());
    }

    #[test]
    fn empty_values_and_keys() {
        let store = Store::in_memory();
        store.put("b", "", b"".to_vec()).unwrap();
        assert_eq!(store.get("b", "").unwrap(), b"");
        assert!(store.contains("b", ""));
    }
}
