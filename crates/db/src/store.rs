//! The namespaced key-value store.
//!
//! [`Store`] is the "database" the paper refers to throughout: "The list of
//! group members is cached in a database, as is all VO information" (§2.1),
//! and each Figure-4 request "incurs a database lookup for all registered
//! methods in the server" (§4). It offers:
//!
//! * named buckets, each an ordered map of `String → Vec<u8>`,
//! * optional durability through the write-ahead log ([`crate::log`]),
//! * crash recovery with torn-tail truncation and log compaction,
//! * prefix scans (hierarchical ACL/VO keys are path-like),
//! * lookup counters, so the benchmark harness can report DB activity per
//!   request like the paper describes,
//! * per-bucket generation counters, so read-through caches layered above
//!   the store can validate an entry with a single atomic load instead of a
//!   lookup plus deserialization.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, Read as _, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::log::{frame_prefix, recover, LogOp, Wal};

/// Inner map type: bucket name → ordered key/value map.
type Buckets = BTreeMap<String, BTreeMap<String, Vec<u8>>>;

/// Store statistics (monotonic counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of point lookups served.
    pub lookups: u64,
    /// Number of scans served.
    pub scans: u64,
    /// Number of writes (put + delete).
    pub writes: u64,
    /// Number of WAL fsyncs issued (per-append syncs, explicit syncs,
    /// and compaction rewrites).
    pub syncs: u64,
}

/// A concurrent, optionally-persistent KV store.
pub struct Store {
    buckets: RwLock<Buckets>,
    /// `None` for purely in-memory stores.
    wal: Option<Mutex<Wal>>,
    path: Option<PathBuf>,
    lookups: AtomicU64,
    scans: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
    /// Per-bucket generation counters. Bumped inside the buckets write-lock
    /// scope after every mutation, so a reader that loads a generation
    /// *before* reading data can never cache stale data under a current
    /// tag (the bump invalidates it; spurious invalidation is the only
    /// possible race, never staleness).
    generations: RwLock<HashMap<String, Arc<AtomicU64>>>,
    /// Set once a WAL write or fsync fails. A failed append may have left
    /// a partial record in the log, and after a failed fsync the kernel
    /// may have dropped dirty pages — either way further appends could
    /// frame-shift or silently lose durability, so the store degrades to
    /// explicit read-only instead (paper's "sessions survive restarts"
    /// promise requires the log to stay trustworthy).
    degraded: AtomicBool,
    /// Incarnation of the WAL *file*. Compaction rewrites the log, so every
    /// byte offset handed out before it is meaningless afterwards; bumping
    /// this tells replication followers their cursor died and they must
    /// resync from offset 0 (the compacted log is a full-state snapshot, so
    /// replaying it from the top converges).
    wal_epoch: AtomicU64,
}

/// One cursor-addressed slice of the write-ahead log, served to
/// replication followers. `data` is always a whole number of CRC-framed
/// records starting at `offset` within WAL incarnation `epoch`; `len` is
/// the leader's committed WAL length at read time, so a follower can
/// compute its replication lag as `len - (offset + data.len())`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalChunk {
    /// WAL incarnation the chunk was read from.
    pub epoch: u64,
    /// Byte offset of the first record in `data`.
    pub offset: u64,
    /// Framed records (`[len][payload][crc]`, repeated).
    pub data: Vec<u8>,
    /// Committed WAL length when the chunk was cut.
    pub len: u64,
}

impl WalChunk {
    /// Cursor for the next fetch.
    pub fn next_offset(&self) -> u64 {
        self.offset + self.data.len() as u64
    }
}

/// Message prefix of errors served by a degraded (read-only) store.
pub const DEGRADED_MSG: &str = "store degraded (read-only)";

/// Was this error produced by a degraded store refusing a write?
pub fn is_degraded_error(err: &io::Error) -> bool {
    err.to_string().starts_with(DEGRADED_MSG)
}

impl Store {
    /// A purely in-memory store (no durability).
    pub fn in_memory() -> Self {
        Store {
            buckets: RwLock::new(BTreeMap::new()),
            wal: None,
            path: None,
            lookups: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            generations: RwLock::new(HashMap::new()),
            degraded: AtomicBool::new(false),
            wal_epoch: AtomicU64::new(0),
        }
    }

    /// Open a persistent store backed by a WAL file at `path`, replaying
    /// any existing log. A torn tail (crash) is repaired by compacting.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_sync(path, false)
    }

    /// Like [`Store::open`] but fsyncing every append when `sync` is true.
    pub fn open_with_sync(path: impl Into<PathBuf>, sync: bool) -> io::Result<Self> {
        let path = path.into();
        let recovery = recover(&path)?;
        let mut buckets: Buckets = BTreeMap::new();
        for op in recovery.ops {
            match op {
                LogOp::Put { bucket, key, value } => {
                    buckets.entry(bucket).or_default().insert(key, value);
                }
                LogOp::Delete { bucket, key } => {
                    if let Some(b) = buckets.get_mut(&bucket) {
                        b.remove(&key);
                    }
                }
            }
        }
        let store = Store {
            buckets: RwLock::new(buckets),
            wal: Some(Mutex::new(Wal::open(&path, sync)?)),
            path: Some(path),
            lookups: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            generations: RwLock::new(HashMap::new()),
            degraded: AtomicBool::new(false),
            wal_epoch: AtomicU64::new(0),
        };
        if recovery.torn_tail {
            store.compact()?;
        }
        Ok(store)
    }

    /// Is the store poisoned into read-only degraded mode?
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn degraded_error() -> io::Error {
        io::Error::other(format!("{DEGRADED_MSG}: WAL write or fsync failed"))
    }

    /// Log `op`, poisoning the store on failure. Reads keep working after
    /// poisoning; writes get [`DEGRADED_MSG`] errors without touching the
    /// (possibly frame-shifted) log again.
    fn wal_append(&self, op: LogOp) -> io::Result<()> {
        if self.is_degraded() {
            return Err(Self::degraded_error());
        }
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let mut wal = wal.lock();
        match wal.append(&op) {
            Ok(()) => {
                if wal.sync_on_append {
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Err(e) => {
                self.degraded.store(true, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Insert or overwrite a value.
    pub fn put(&self, bucket: &str, key: &str, value: impl Into<Vec<u8>>) -> io::Result<()> {
        let value = value.into();
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.wal_append(LogOp::Put {
            bucket: bucket.to_owned(),
            key: key.to_owned(),
            value: value.clone(),
        })?;
        let generation = self.generation_handle(bucket);
        let mut buckets = self.buckets.write();
        buckets
            .entry(bucket.to_owned())
            .or_default()
            .insert(key.to_owned(), value);
        generation.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, bucket: &str, key: &str) -> Option<Vec<u8>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.buckets.read().get(bucket)?.get(key).cloned()
    }

    /// Does the key exist?
    pub fn contains(&self, bucket: &str, key: &str) -> bool {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.buckets
            .read()
            .get(bucket)
            .is_some_and(|b| b.contains_key(key))
    }

    /// Delete a key. Returns whether it existed.
    pub fn delete(&self, bucket: &str, key: &str) -> io::Result<bool> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.wal_append(LogOp::Delete {
            bucket: bucket.to_owned(),
            key: key.to_owned(),
        })?;
        let generation = self.generation_handle(bucket);
        let mut buckets = self.buckets.write();
        let existed = buckets
            .get_mut(bucket)
            .is_some_and(|b| b.remove(key).is_some());
        generation.fetch_add(1, Ordering::SeqCst);
        Ok(existed)
    }

    /// All `(key, value)` pairs in a bucket whose keys start with `prefix`
    /// (ordered by key).
    pub fn scan_prefix(&self, bucket: &str, prefix: &str) -> Vec<(String, Vec<u8>)> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let buckets = self.buckets.read();
        match buckets.get(bucket) {
            None => Vec::new(),
            Some(map) => map
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// All keys in a bucket (ordered).
    pub fn keys(&self, bucket: &str) -> Vec<String> {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.buckets
            .read()
            .get(bucket)
            .map(|b| b.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of keys in a bucket.
    pub fn len(&self, bucket: &str) -> usize {
        self.buckets.read().get(bucket).map_or(0, |b| b.len())
    }

    /// Is the bucket empty or absent?
    pub fn is_empty(&self, bucket: &str) -> bool {
        self.len(bucket) == 0
    }

    /// Names of all buckets.
    pub fn bucket_names(&self) -> Vec<String> {
        self.buckets.read().keys().cloned().collect()
    }

    /// Remove every key in a bucket.
    pub fn clear_bucket(&self, bucket: &str) -> io::Result<()> {
        let keys = self.keys(bucket);
        for key in keys {
            self.delete(bucket, &key)?;
        }
        Ok(())
    }

    /// Rewrite the WAL as a minimal snapshot of current state (drops
    /// superseded records). No-op for in-memory stores.
    pub fn compact(&self) -> io::Result<()> {
        let (Some(path), Some(wal)) = (&self.path, &self.wal) else {
            return Ok(());
        };
        // Hold the write lock across the rewrite so no update is lost.
        let buckets = self.buckets.write();
        let tmp = path.with_extension("compact");
        {
            let mut new_wal = Wal::open(&tmp, false)?;
            for (bucket, map) in buckets.iter() {
                for (key, value) in map {
                    new_wal.append(&LogOp::Put {
                        bucket: bucket.clone(),
                        key: key.clone(),
                        value: value.clone(),
                    })?;
                }
            }
            new_wal.sync()?;
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        let mut wal_guard = wal.lock();
        std::fs::rename(&tmp, path)?;
        // Reopen the handle on the new file.
        *wal_guard = Wal::open(path, wal_guard.sync_on_append)?;
        // Old byte offsets now point into a file that no longer exists:
        // invalidate every replication cursor.
        self.wal_epoch.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Committed WAL length in bytes (0 for in-memory stores). Exported as
    /// the `db.wal_offset` gauge; replication followers compare it against
    /// their applied cursor to compute lag.
    pub fn wal_offset(&self) -> u64 {
        match &self.wal {
            Some(wal) => wal.lock().len(),
            None => 0,
        }
    }

    /// Current WAL incarnation. Starts at 0 and bumps on every compaction
    /// (each compaction rewrites the file, so prior offsets die with it).
    pub fn wal_epoch(&self) -> u64 {
        self.wal_epoch.load(Ordering::SeqCst)
    }

    /// Read a replication chunk: up to `max_bytes` of whole WAL records
    /// starting at `offset` within WAL incarnation `epoch`.
    ///
    /// If the caller's cursor is stale — the epoch no longer matches, or
    /// the offset runs past the committed length — the read restarts from
    /// offset 0 of the current incarnation; the follower detects the jump
    /// by comparing the returned `offset`/`epoch` against what it asked
    /// for. Only fully-framed, CRC-valid records are ever returned, so a
    /// read racing an in-flight append or compaction yields a shorter (or
    /// empty) chunk, never a torn one. Errors for in-memory stores.
    pub fn wal_read(&self, epoch: u64, offset: u64, max_bytes: usize) -> io::Result<WalChunk> {
        let (Some(path), Some(wal)) = (&self.path, &self.wal) else {
            return Err(io::Error::other(
                "wal_read requires a persistent store (no WAL to ship)",
            ));
        };
        let cur_epoch = self.wal_epoch();
        let committed = wal.lock().len();
        let start = if epoch != cur_epoch || offset > committed {
            0
        } else {
            offset
        };
        let budget = (committed - start).min(max_bytes as u64) as usize;
        let mut data = vec![0u8; budget];
        if budget > 0 {
            let mut file = File::open(path)?;
            file.seek(SeekFrom::Start(start))?;
            let mut filled = 0;
            while filled < budget {
                match file.read(&mut data[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            data.truncate(filled);
            let whole = frame_prefix(&data);
            data.truncate(whole);
        }
        if self.wal_epoch() != cur_epoch {
            // Compaction swapped the file mid-read; hand back an empty
            // chunk at the new incarnation so the follower resyncs.
            return Ok(WalChunk {
                epoch: self.wal_epoch(),
                offset: 0,
                data: Vec::new(),
                len: self.wal_offset(),
            });
        }
        Ok(WalChunk {
            epoch: cur_epoch,
            offset: start,
            data,
            len: committed,
        })
    }

    /// Force pending log data to disk.
    pub fn sync(&self) -> io::Result<()> {
        if let Some(wal) = &self.wal {
            if self.is_degraded() {
                return Err(Self::degraded_error());
            }
            if let Err(e) = wal.lock().sync() {
                self.degraded.store(true, Ordering::SeqCst);
                return Err(e);
            }
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Current generation of a bucket. Starts at 0 and increases on every
    /// `put`/`delete` touching the bucket (including no-op deletes — the
    /// counter may over-invalidate, never under-invalidate).
    ///
    /// Reader protocol for epoch-validated caches: load the generation
    /// *first*, then read the data, then store both; a cached entry is
    /// valid only while the bucket generation still equals its tag. Writers
    /// bump the counter inside the write-lock scope after mutating, so a
    /// tag can never be newer than the data it guards.
    pub fn generation(&self, bucket: &str) -> u64 {
        self.generation_handle(bucket).load(Ordering::SeqCst)
    }

    /// Shared handle to a bucket's generation counter, for callers that
    /// validate on every request and want a single atomic load with no
    /// map lookup.
    pub fn generation_handle(&self, bucket: &str) -> Arc<AtomicU64> {
        if let Some(handle) = self.generations.read().get(bucket) {
            return Arc::clone(handle);
        }
        let mut generations = self.generations.write();
        Arc::clone(generations.entry(bucket.to_owned()).or_default())
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "clarens-db-store-{}-{name}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn basic_crud_in_memory() {
        let store = Store::in_memory();
        assert_eq!(store.get("b", "k"), None);
        store.put("b", "k", b"v1".to_vec()).unwrap();
        assert_eq!(store.get("b", "k").unwrap(), b"v1");
        store.put("b", "k", b"v2".to_vec()).unwrap();
        assert_eq!(store.get("b", "k").unwrap(), b"v2");
        assert!(store.contains("b", "k"));
        assert!(store.delete("b", "k").unwrap());
        assert!(!store.delete("b", "k").unwrap());
        assert!(!store.contains("b", "k"));
    }

    #[test]
    fn buckets_are_isolated() {
        let store = Store::in_memory();
        store.put("sessions", "id", b"alice".to_vec()).unwrap();
        store.put("acl", "id", b"deny".to_vec()).unwrap();
        assert_eq!(store.get("sessions", "id").unwrap(), b"alice");
        assert_eq!(store.get("acl", "id").unwrap(), b"deny");
        assert_eq!(store.len("sessions"), 1);
        assert_eq!(
            store.bucket_names(),
            vec!["acl".to_string(), "sessions".to_string()]
        );
    }

    #[test]
    fn prefix_scan_ordered() {
        let store = Store::in_memory();
        for key in ["file.read", "file.ls", "file.stat", "system.auth", "file"] {
            store.put("methods", key, b"1".to_vec()).unwrap();
        }
        let hits = store.scan_prefix("methods", "file.");
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["file.ls", "file.read", "file.stat"]);
        assert!(store.scan_prefix("methods", "zzz").is_empty());
        assert!(store.scan_prefix("nobucket", "x").is_empty());
        assert_eq!(store.scan_prefix("methods", "").len(), 5);
    }

    #[test]
    fn persistence_across_reopen() {
        let path = temp_path("reopen");
        {
            let store = Store::open(&path).unwrap();
            store.put("sessions", "s1", b"alice".to_vec()).unwrap();
            store.put("sessions", "s2", b"bob".to_vec()).unwrap();
            store.delete("sessions", "s1").unwrap();
            store.sync().unwrap();
        }
        {
            // This is the paper's restart-survival property.
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("sessions", "s1"), None);
            assert_eq!(store.get("sessions", "s2").unwrap(), b"bob");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix_and_compacts() {
        let path = temp_path("torn");
        {
            let store = Store::open(&path).unwrap();
            store.put("b", "k1", b"v1".to_vec()).unwrap();
            store.put("b", "k2", b"v2".to_vec()).unwrap();
            store.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "k1").unwrap(), b"v1");
            assert_eq!(store.get("b", "k2"), None); // lost in the tear
                                                    // The compaction must leave a clean log.
            store.put("b", "k3", b"v3".to_vec()).unwrap();
            store.sync().unwrap();
        }
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "k1").unwrap(), b"v1");
            assert_eq!(store.get("b", "k3").unwrap(), b"v3");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_log() {
        let path = temp_path("compact");
        {
            let store = Store::open(&path).unwrap();
            for i in 0..100 {
                store
                    .put("b", "hot-key", format!("value-{i}").into_bytes())
                    .unwrap();
            }
            store.sync().unwrap();
            let before = std::fs::metadata(&path).unwrap().len();
            store.compact().unwrap();
            let after = std::fs::metadata(&path).unwrap().len();
            assert!(after < before / 10, "before={before} after={after}");
            assert_eq!(store.get("b", "hot-key").unwrap(), b"value-99");
        }
        {
            let store = Store::open(&path).unwrap();
            assert_eq!(store.get("b", "hot-key").unwrap(), b"value-99");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clear_bucket() {
        let store = Store::in_memory();
        store.put("b", "k1", b"1".to_vec()).unwrap();
        store.put("b", "k2", b"2".to_vec()).unwrap();
        store.put("other", "k", b"3".to_vec()).unwrap();
        store.clear_bucket("b").unwrap();
        assert!(store.is_empty("b"));
        assert_eq!(store.len("other"), 1);
    }

    #[test]
    fn stats_counters() {
        let store = Store::in_memory();
        store.put("b", "k", b"v".to_vec()).unwrap();
        let _ = store.get("b", "k");
        let _ = store.get("b", "missing");
        let _ = store.scan_prefix("b", "");
        store.delete("b", "k").unwrap();
        let stats = store.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.scans, 1);
        assert_eq!(stats.writes, 2);
    }

    #[test]
    fn generations_bump_on_writes_only() {
        let store = Store::in_memory();
        assert_eq!(store.generation("b"), 0);
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert_eq!(store.generation("b"), 1);
        // Reads never move the counter.
        let _ = store.get("b", "k");
        let _ = store.scan_prefix("b", "");
        let _ = store.keys("b");
        assert_eq!(store.generation("b"), 1);
        store.delete("b", "k").unwrap();
        assert_eq!(store.generation("b"), 2);
        // A no-op delete still bumps (over-invalidation is allowed).
        store.delete("b", "ghost").unwrap();
        assert_eq!(store.generation("b"), 3);
    }

    #[test]
    fn generations_are_per_bucket() {
        let store = Store::in_memory();
        store.put("a", "k", b"v".to_vec()).unwrap();
        store.put("a", "k2", b"v".to_vec()).unwrap();
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert_eq!(store.generation("a"), 2);
        assert_eq!(store.generation("b"), 1);
        assert_eq!(store.generation("untouched"), 0);
    }

    #[test]
    fn generation_handle_tracks_bucket() {
        let store = Store::in_memory();
        let handle = store.generation_handle("b");
        assert_eq!(handle.load(Ordering::SeqCst), 0);
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert_eq!(handle.load(Ordering::SeqCst), 1);
        // The handle is shared, not a snapshot.
        assert!(Arc::ptr_eq(&handle, &store.generation_handle("b")));
    }

    #[test]
    fn clear_bucket_moves_generation() {
        let store = Store::in_memory();
        store.put("b", "k1", b"1".to_vec()).unwrap();
        store.put("b", "k2", b"2".to_vec()).unwrap();
        let before = store.generation("b");
        store.clear_bucket("b").unwrap();
        assert!(store.generation("b") > before);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let store = Arc::new(Store::in_memory());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let key = format!("t{t}-k{i}");
                    store.put("b", &key, key.as_bytes().to_vec()).unwrap();
                    assert_eq!(store.get("b", &key).unwrap(), key.as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len("b"), 8 * 200);
    }

    #[test]
    fn fsync_failure_degrades_to_read_only() {
        let path = temp_path("degraded");
        let store = Store::open_with_sync(&path, true).unwrap();
        store.put("sessions", "s1", b"alice".to_vec()).unwrap();
        assert!(!store.is_degraded());

        // One fsync failure poisons the writer...
        {
            let _g =
                clarens_faults::with_thread(clarens_faults::sites::DB_WAL_FSYNC, "err|times=1");
            let err = store.put("sessions", "s2", b"bob".to_vec()).unwrap_err();
            assert!(clarens_faults::is_injected(&err), "{err}");
        }
        assert!(store.is_degraded());

        // ...writes now fail fast with the documented degraded error,
        // even though the transient fault itself has cleared...
        let err = store.put("sessions", "s3", b"carol".to_vec()).unwrap_err();
        assert!(is_degraded_error(&err), "{err}");
        let err = store.delete("sessions", "s1").unwrap_err();
        assert!(is_degraded_error(&err), "{err}");
        assert!(store.sync().is_err());

        // ...and reads keep serving the pre-fault state.
        assert_eq!(store.get("sessions", "s1").unwrap(), b"alice");
        assert_eq!(store.get("sessions", "s2"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_failure_degrades_without_mutating_memory() {
        let path = temp_path("degraded-append");
        let store = Store::open(&path).unwrap();
        let _g = clarens_faults::with_thread(clarens_faults::sites::DB_WAL_APPEND, "err|times=1");
        assert!(store.put("b", "k", b"v".to_vec()).is_err());
        assert!(store.is_degraded());
        // WAL-first ordering: the failed write never reached memory.
        assert_eq!(store.get("b", "k"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_never_degrades() {
        let store = Store::in_memory();
        let _g = clarens_faults::with_thread(clarens_faults::sites::DB_WAL_FSYNC, "err");
        store.put("b", "k", b"v".to_vec()).unwrap();
        assert!(!store.is_degraded());
    }

    #[test]
    fn wal_cursor_streams_and_resumes() {
        use crate::log::decode_stream;
        let path = temp_path("cursor");
        let store = Store::open(&path).unwrap();
        assert_eq!(store.wal_offset(), 0);
        assert_eq!(store.wal_epoch(), 0);
        store.put("sessions", "s1", b"alice".to_vec()).unwrap();
        store.put("sessions", "s2", b"bob".to_vec()).unwrap();

        // A fresh cursor drains the whole log in CRC-framed records.
        let chunk = store.wal_read(0, 0, 1 << 20).unwrap();
        assert_eq!(chunk.epoch, 0);
        assert_eq!(chunk.offset, 0);
        assert_eq!(chunk.len, store.wal_offset());
        assert_eq!(chunk.next_offset(), chunk.len);
        let ops = decode_stream(&chunk.data).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops[0],
            LogOp::Put {
                bucket: "sessions".into(),
                key: "s1".into(),
                value: b"alice".to_vec()
            }
        );

        // Caught up: the next read is empty until new writes land.
        let cursor = chunk.next_offset();
        let empty = store.wal_read(0, cursor, 1 << 20).unwrap();
        assert!(empty.data.is_empty());
        assert_eq!(empty.offset, cursor);
        store.delete("sessions", "s1").unwrap();
        let tail = store.wal_read(0, cursor, 1 << 20).unwrap();
        let ops = decode_stream(&tail.data).unwrap();
        assert_eq!(
            ops,
            vec![LogOp::Delete {
                bucket: "sessions".into(),
                key: "s1".into()
            }]
        );

        // A byte budget smaller than one record yields an empty chunk (no
        // torn frames), and a larger one yields whole records only.
        let partial = store.wal_read(0, 0, 3).unwrap();
        assert!(partial.data.is_empty());
        let one = store.wal_read(0, 0, chunk.data.len() - 1).unwrap();
        assert_eq!(decode_stream(&one.data).unwrap().len(), 1);
        assert!(one.next_offset() < chunk.len);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_bumps_epoch_and_forces_resync() {
        let path = temp_path("cursor-epoch");
        let store = Store::open(&path).unwrap();
        for i in 0..50 {
            store.put("b", "hot", format!("v{i}").into_bytes()).unwrap();
        }
        let pre = store.wal_read(0, 0, 1 << 20).unwrap();
        let cursor = pre.next_offset();
        store.compact().unwrap();
        assert_eq!(store.wal_epoch(), 1);
        assert!(store.wal_offset() < cursor);

        // The stale cursor (old epoch, now-out-of-range offset) restarts
        // from 0 of the new incarnation, which replays the full snapshot.
        let resync = store.wal_read(0, cursor, 1 << 20).unwrap();
        assert_eq!(resync.epoch, 1);
        assert_eq!(resync.offset, 0);
        let ops = crate::log::decode_stream(&resync.data).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0],
            LogOp::Put {
                bucket: "b".into(),
                key: "hot".into(),
                value: b"v49".to_vec()
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_read_refused_for_in_memory_store() {
        let store = Store::in_memory();
        assert_eq!(store.wal_offset(), 0);
        assert!(store.wal_read(0, 0, 1024).is_err());
    }

    #[test]
    fn empty_values_and_keys() {
        let store = Store::in_memory();
        store.put("b", "", b"".to_vec()).unwrap();
        assert_eq!(store.get("b", "").unwrap(), b"");
        assert!(store.contains("b", ""));
    }
}
