//! Receive-side fault injection for the station UDP ingest path.
//!
//! The `discovery.udp.recv` failpoint fires on the station's ingest
//! thread, so it must be armed globally (not thread-scoped). This test
//! lives in its own integration-test binary — and therefore its own
//! process — so the global arming cannot interfere with the crate's
//! parallel unit tests.

use monalisa_sim::station::wait_until;
use monalisa_sim::{Publication, ServiceDescriptor, ServiceQuery, StationServer, UdpPublisher};
use std::time::Duration;

fn descriptor(service: &str, ts: i64) -> ServiceDescriptor {
    ServiceDescriptor {
        url: "http://h:1/clarens".into(),
        server_dn: "/O=g/CN=h".into(),
        service: service.into(),
        methods: vec![format!("{service}.run")],
        attributes: Default::default(),
        timestamp: ts,
    }
}

#[test]
fn injected_recv_loss_drops_datagram_silently() {
    let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
    let publisher = UdpPublisher::new(vec![station.local_addr()]).unwrap();
    {
        let _guard = clarens_faults::with(clarens_faults::sites::DISCOVERY_UDP_RECV, "err|times=1");
        publisher
            .publish(&Publication::Service(descriptor("lost", 1)))
            .unwrap();
        // The first datagram is consumed by the failpoint before parsing.
        assert!(wait_until(Duration::from_secs(2), || {
            clarens_faults::hits(clarens_faults::sites::DISCOVERY_UDP_RECV) == 1
        }));
        // Budget exhausted: the follow-up datagram lands.
        publisher
            .publish(&Publication::Service(descriptor("kept", 2)))
            .unwrap();
        assert!(wait_until(Duration::from_secs(2), || station
            .service_count()
            == 1));
    }
    assert_eq!(station.query(&ServiceQuery::by_service("kept")).len(), 1);
    let (received, rejected) = station.stats();
    assert_eq!(
        (received, rejected),
        (1, 0),
        "a dropped datagram is neither received nor rejected"
    );
    station.shutdown();
}
