//! The discovery server: a JINI-style client that aggregates station state
//! into a local database.
//!
//! Figure 3's punchline: "the JClarens server becomes a fully fledged JINI
//! client, ... aggregating discovery information from the JINI network. The
//! JClarens server is consequently able to respond to service searches far
//! more rapidly by using the local database." [`DiscoveryAggregator`]
//! subscribes to every station's update stream, mirrors descriptors into a
//! [`clarens_db::Store`], and serves queries two ways so the speed claim is
//! measurable:
//!
//! * [`DiscoveryAggregator::query_local`] — against the local DB (fast path),
//! * [`DiscoveryAggregator::query_remote`] — synchronous fan-out to every
//!   station (the no-cache baseline).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use clarens_db::Store;
use clarens_wire::json;

use crate::schema::{Publication, ServiceDescriptor, ServiceQuery};
use crate::station::StationServer;

/// DB bucket holding mirrored service descriptors.
pub const SERVICES_BUCKET: &str = "discovery.services";
/// DB bucket holding mirrored monitoring samples.
pub const SAMPLES_BUCKET: &str = "discovery.samples";

/// A discovery server aggregating one or more stations.
pub struct DiscoveryAggregator {
    stations: Vec<Arc<StationServer>>,
    store: Arc<Store>,
    stop: Arc<AtomicBool>,
    updates: Arc<AtomicU64>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Descriptor time-to-live; 0 disables expiry.
    ttl_secs: i64,
    /// Clock used for expiry decisions (overridable for tests).
    now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
}

/// Mirror one service descriptor into the local database.
///
/// Two refresh rules keep the mirror duplicate-free across re-publishes:
/// the `put` under the descriptor's own key overwrites in place (so a
/// heartbeat carrying changed load/latency attributes updates the entry
/// rather than growing the bucket), and any entry for the same
/// (server_dn, service) under a *different* url with an older-or-equal
/// timestamp is dropped — a server that restarted on a new port
/// supersedes its previous address instead of being advertised twice
/// until the stale entry ages out. The comparison is strictly older:
/// equal-timestamp descriptors under one DN are kept side by side (a
/// deployment sharing one host certificate across servers looks like
/// this, and there is no evidence which address is the newer one).
fn mirror_service(store: &Store, d: &ServiceDescriptor) {
    for (key, bytes) in store.scan_prefix(SERVICES_BUCKET, "") {
        if key == d.key() {
            continue;
        }
        let superseded = String::from_utf8(bytes)
            .ok()
            .and_then(|text| json::parse(&text).ok())
            .and_then(|value| ServiceDescriptor::from_value(&value).ok())
            .is_some_and(|old| {
                old.server_dn == d.server_dn
                    && old.service == d.service
                    && old.url != d.url
                    && old.timestamp < d.timestamp
            });
        if superseded {
            let _ = store.delete(SERVICES_BUCKET, &key);
        }
    }
    let _ = store.put(
        SERVICES_BUCKET,
        &d.key(),
        json::to_string(&d.to_value()).into_bytes(),
    );
}

/// Remove mirrored entries whose timestamp is older than `now - ttl_secs`.
/// Returns the number of entries dropped. A station that stops heart-
/// beating (crashed, partitioned) stops refreshing its descriptors'
/// timestamps, so its services age out of the local database rather than
/// being advertised forever.
fn evict_expired(store: &Store, now: i64, ttl_secs: i64) -> usize {
    type StampFn = fn(&clarens_wire::Value) -> Option<i64>;
    let mut dropped = 0;
    let readers: [(&str, StampFn); 2] = [
        (SERVICES_BUCKET, |v| {
            ServiceDescriptor::from_value(v).ok().map(|d| d.timestamp)
        }),
        (SAMPLES_BUCKET, |v| {
            crate::schema::MonitorSample::from_value(v)
                .ok()
                .map(|s| s.timestamp)
        }),
    ];
    for (bucket, stamp) in readers {
        for (key, bytes) in store.scan_prefix(bucket, "") {
            let expired = String::from_utf8(bytes)
                .ok()
                .and_then(|text| json::parse(&text).ok())
                .and_then(|value| stamp(&value))
                .is_none_or(|ts| now - ts > ttl_secs);
            if expired && store.delete(bucket, &key).is_ok() {
                dropped += 1;
            }
        }
    }
    dropped
}

impl DiscoveryAggregator {
    /// Subscribe to `stations`, mirroring into `store`.
    pub fn new(stations: Vec<Arc<StationServer>>, store: Arc<Store>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let updates = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for station in &stations {
            let rx = station.subscribe();
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let updates = Arc::clone(&updates);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("aggregator-{}", station.name))
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                                Ok(Publication::Service(d)) => {
                                    mirror_service(&store, &d);
                                    updates.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(Publication::Sample(s)) => {
                                    let _ = store.put(
                                        SAMPLES_BUCKET,
                                        &s.key_path(),
                                        json::to_string(&s.to_value()).into_bytes(),
                                    );
                                    updates.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    })
                    .expect("spawn aggregator thread"),
            );
        }
        DiscoveryAggregator {
            stations,
            store,
            stop,
            updates,
            threads,
            ttl_secs: 0,
            now_fn: Arc::new(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0)
            }),
        }
    }

    /// Enable TTL-based eviction of stale descriptors: entries not
    /// refreshed within `ttl_secs` (typically 3× the publishers'
    /// heartbeat interval) are dropped by a background sweeper, so a
    /// station that goes silent stops being advertised. The clock is a
    /// parameter so tests can drive expiry deterministically.
    pub fn with_ttl(mut self, ttl_secs: i64, now_fn: Arc<dyn Fn() -> i64 + Send + Sync>) -> Self {
        self.ttl_secs = ttl_secs;
        self.now_fn = Arc::clone(&now_fn);
        if ttl_secs > 0 {
            let store = Arc::clone(&self.store);
            let stop = Arc::clone(&self.stop);
            self.threads.push(
                std::thread::Builder::new()
                    .name("aggregator-sweeper".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            evict_expired(&store, now_fn(), ttl_secs);
                            std::thread::sleep(std::time::Duration::from_millis(25));
                        }
                    })
                    .expect("spawn aggregator sweeper thread"),
            );
        }
        self
    }

    /// Run one eviction sweep now (the sweeper thread does this
    /// continuously; exposed for deterministic tests and tooling).
    /// Returns the number of entries dropped.
    pub fn evict_expired(&self) -> usize {
        if self.ttl_secs <= 0 {
            return 0;
        }
        evict_expired(&self.store, (self.now_fn)(), self.ttl_secs)
    }

    /// Fast path: answer from the local database. With a TTL configured,
    /// entries past their TTL are filtered even before the sweeper has
    /// deleted them, so queries never see a known-stale descriptor.
    pub fn query_local(&self, query: &ServiceQuery) -> Vec<ServiceDescriptor> {
        let cutoff = (self.ttl_secs > 0).then(|| (self.now_fn)() - self.ttl_secs);
        self.store
            .scan_prefix(SERVICES_BUCKET, "")
            .into_iter()
            .filter_map(|(_, bytes)| {
                let text = String::from_utf8(bytes).ok()?;
                let value = json::parse(&text).ok()?;
                ServiceDescriptor::from_value(&value).ok()
            })
            .filter(|d| query.matches(d))
            .filter(|d| cutoff.is_none_or(|c| d.timestamp >= c))
            .collect()
    }

    /// Slow path: fan out to every station synchronously over TCP (one
    /// connection per station per query — what a cache-less discovery
    /// service must do per lookup) and merge the answers.
    pub fn query_remote(&self, query: &ServiceQuery) -> Vec<ServiceDescriptor> {
        let mut merged: std::collections::BTreeMap<String, ServiceDescriptor> = Default::default();
        for station in &self.stations {
            let hits =
                crate::station::query_station(station.query_addr(), query).unwrap_or_default();
            for descriptor in hits {
                match merged.get(&descriptor.key()) {
                    // Strictly-newer wins; on a timestamp tie the later
                    // arrival replaces the earlier one, so a re-publish
                    // within the same second still refreshes the
                    // attributes instead of serving the stale copy.
                    Some(existing) if existing.timestamp > descriptor.timestamp => {}
                    _ => {
                        merged.insert(descriptor.key(), descriptor);
                    }
                }
            }
        }
        merged.into_values().collect()
    }

    /// Number of mirrored updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Number of service entries in the local DB.
    pub fn local_service_count(&self) -> usize {
        self.store.len(SERVICES_BUCKET)
    }

    /// Stop the mirror threads (stations keep running).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for DiscoveryAggregator {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::wait_until;
    use std::time::Duration;

    // Host certificates are per-host, so distinct urls get distinct DNs
    // (two entries sharing a DN means the same server, possibly re-bound
    // to a new port — the supersede case tested explicitly below).
    fn descriptor(url: &str, service: &str, ts: i64) -> ServiceDescriptor {
        ServiceDescriptor {
            url: url.into(),
            server_dn: format!("/O=g/CN={url}"),
            service: service.into(),
            methods: vec![format!("{service}.run")],
            attributes: [("site".to_string(), "caltech".to_string())].into(),
            timestamp: ts,
        }
    }

    #[test]
    fn aggregation_mirrors_to_local_db() {
        let station = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![Arc::clone(&station)], Arc::clone(&store));

        station.publish_local(Publication::Service(descriptor("http://a", "file", 1)));
        station.publish_local(Publication::Service(descriptor("http://b", "proof", 2)));

        assert!(wait_until(Duration::from_secs(2), || agg
            .local_service_count()
            == 2));
        let hits = agg.query_local(&ServiceQuery::by_service("file"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].url, "http://a");
        agg.shutdown();
    }

    #[test]
    fn remote_query_merges_across_stations() {
        let s1 = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let s2 = Arc::new(StationServer::spawn("s2", "127.0.0.1:0").unwrap());
        s1.publish_local(Publication::Service(descriptor("http://a", "file", 5)));
        // Same instance known to both stations with different freshness.
        s2.publish_local(Publication::Service(descriptor("http://a", "file", 9)));
        s2.publish_local(Publication::Service(descriptor("http://b", "file", 1)));

        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![Arc::clone(&s1), Arc::clone(&s2)], store);
        let hits = agg.query_remote(&ServiceQuery::by_service("file"));
        assert_eq!(hits.len(), 2);
        let a = hits.iter().find(|d| d.url == "http://a").unwrap();
        assert_eq!(a.timestamp, 9); // freshest wins
        agg.shutdown();
    }

    #[test]
    fn silent_station_evicted_after_three_missed_heartbeats() {
        use std::sync::atomic::AtomicI64;

        const HEARTBEAT_SECS: i64 = 10;
        let ttl = 3 * HEARTBEAT_SECS;
        let clock = Arc::new(AtomicI64::new(100));
        let now_fn = {
            let clock = Arc::clone(&clock);
            Arc::new(move || clock.load(Ordering::SeqCst)) as Arc<dyn Fn() -> i64 + Send + Sync>
        };

        let station = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![Arc::clone(&station)], Arc::clone(&store))
            .with_ttl(ttl, now_fn);

        // Two publishers heartbeat at t=100; one then goes silent while
        // the other keeps refreshing its descriptor.
        station.publish_local(Publication::Service(descriptor(
            "http://silent",
            "file",
            100,
        )));
        station.publish_local(Publication::Service(descriptor("http://live", "file", 100)));
        assert!(wait_until(Duration::from_secs(2), || agg
            .local_service_count()
            == 2));

        for beat in 1..=3 {
            clock.store(100 + beat * HEARTBEAT_SECS, Ordering::SeqCst);
            station.publish_local(Publication::Service(descriptor(
                "http://live",
                "file",
                100 + beat * HEARTBEAT_SECS,
            )));
        }
        // One tick past the third missed heartbeat: the silent server's
        // descriptor (age 31 > ttl 30) ages out; the live one stays.
        clock.store(100 + 3 * HEARTBEAT_SECS + 1, Ordering::SeqCst);
        assert!(
            wait_until(Duration::from_secs(2), || agg.local_service_count() == 1),
            "silent station should be evicted by the sweeper"
        );
        let hits = agg.query_local(&ServiceQuery::by_service("file"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].url, "http://live");
        agg.shutdown();
    }

    #[test]
    fn query_local_hides_stale_entries_before_sweep() {
        use std::sync::atomic::AtomicI64;

        let clock = Arc::new(AtomicI64::new(100));
        let now_fn = {
            let clock = Arc::clone(&clock);
            Arc::new(move || clock.load(Ordering::SeqCst)) as Arc<dyn Fn() -> i64 + Send + Sync>
        };
        let store = Arc::new(Store::in_memory());
        // No stations: seed the mirror directly, then check the read path
        // filters on TTL without relying on sweeper timing.
        let agg = DiscoveryAggregator::new(vec![], Arc::clone(&store)).with_ttl(60, now_fn);
        let d = descriptor("http://a", "file", 100);
        store
            .put(
                SERVICES_BUCKET,
                &d.key(),
                json::to_string(&d.to_value()).into_bytes(),
            )
            .unwrap();
        assert_eq!(agg.query_local(&ServiceQuery::by_service("file")).len(), 1);
        clock.store(161, Ordering::SeqCst);
        assert!(agg
            .query_local(&ServiceQuery::by_service("file"))
            .is_empty());
        assert_eq!(agg.evict_expired(), 1);
        assert_eq!(agg.local_service_count(), 0);
        agg.shutdown();
    }

    #[test]
    fn republish_refreshes_attributes_in_place() {
        let station = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![Arc::clone(&station)], Arc::clone(&store));

        let mut d = descriptor("http://a", "file", 5);
        d.attributes.insert("p95_us".into(), "100".into());
        station.publish_local(Publication::Service(d.clone()));
        assert!(wait_until(Duration::from_secs(2), || agg
            .local_service_count()
            == 1));

        // Same key, same second, fresher load attributes (a heartbeat can
        // land twice within timestamp resolution): the entry must be
        // updated in place, not duplicated and not left stale.
        d.attributes.insert("p95_us".into(), "50".into());
        station.publish_local(Publication::Service(d.clone()));
        assert!(wait_until(Duration::from_secs(2), || {
            agg.query_local(&ServiceQuery::by_service("file"))
                .first()
                .and_then(|hit| hit.attributes.get("p95_us").cloned())
                == Some("50".into())
        }));
        assert_eq!(agg.local_service_count(), 1, "refresh must not duplicate");

        let remote = agg.query_remote(&ServiceQuery::by_service("file"));
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].attributes.get("p95_us").unwrap(), "50");
        agg.shutdown();
    }

    #[test]
    fn remote_merge_takes_later_arrival_on_timestamp_tie() {
        let s1 = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let s2 = Arc::new(StationServer::spawn("s2", "127.0.0.1:0").unwrap());
        // s1 still holds the original publication; s2 received the
        // re-publish with updated attributes in the same second. The merge
        // must prefer the refreshed copy, not skip it on `>=`.
        let mut d = descriptor("http://a", "file", 7);
        d.attributes.insert("p95_us".into(), "900".into());
        s1.publish_local(Publication::Service(d.clone()));
        d.attributes.insert("p95_us".into(), "40".into());
        s2.publish_local(Publication::Service(d));

        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![s1, s2], store);
        let hits = agg.query_remote(&ServiceQuery::by_service("file"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].attributes.get("p95_us").unwrap(), "40");
        agg.shutdown();
    }

    #[test]
    fn restart_on_new_port_supersedes_stale_descriptor() {
        let station = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![Arc::clone(&station)], Arc::clone(&store));

        let mut old = descriptor("http://host:1", "file", 5);
        old.server_dn = "/O=g/CN=host".into();
        station.publish_local(Publication::Service(old));
        assert!(wait_until(Duration::from_secs(2), || agg
            .local_service_count()
            == 1));

        // Same server identity re-publishes from a new port (crash +
        // restart): the old address must drop out instead of lingering as
        // a dead endpoint until TTL expiry.
        let mut new = descriptor("http://host:2", "file", 6);
        new.server_dn = "/O=g/CN=host".into();
        station.publish_local(Publication::Service(new));
        assert!(wait_until(Duration::from_secs(2), || {
            let hits = agg.query_local(&ServiceQuery::by_service("file"));
            hits.len() == 1 && hits[0].url == "http://host:2"
        }));
        assert_eq!(agg.local_service_count(), 1);
        agg.shutdown();
    }

    #[test]
    fn local_and_remote_agree_after_propagation() {
        let station = Arc::new(StationServer::spawn("s1", "127.0.0.1:0").unwrap());
        let store = Arc::new(Store::in_memory());
        let agg = DiscoveryAggregator::new(vec![Arc::clone(&station)], store);
        for i in 0..10 {
            station.publish_local(Publication::Service(descriptor(
                &format!("http://host{i}"),
                "file",
                i,
            )));
        }
        assert!(wait_until(Duration::from_secs(2), || agg
            .local_service_count()
            == 10));
        let query = ServiceQuery::by_service("file").with_attribute("site", "caltech");
        let mut local = agg.query_local(&query);
        let mut remote = agg.query_remote(&query);
        local.sort_by(|a, b| a.url.cmp(&b.url));
        remote.sort_by(|a, b| a.url.cmp(&b.url));
        assert_eq!(local, remote);
        agg.shutdown();
    }
}
