//! Station servers and the UDP publication path.
//!
//! "Clarens servers can publish service information using a UDP-based
//! application to so called station servers that in turn republish it to
//! the MonALISA network" (paper §2.4, Figure 3). A [`StationServer`] binds
//! a real UDP socket, ingests [`Publication`] datagrams, keeps the current
//! state, and pushes updates to subscribers (the JINI-network role is
//! played by crossbeam channels).

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::schema::{MonitorSample, Publication, ServiceDescriptor, ServiceQuery};

/// Shared station state.
struct StationState {
    services: RwLock<HashMap<String, ServiceDescriptor>>,
    samples: RwLock<HashMap<String, MonitorSample>>,
    subscribers: RwLock<Vec<Sender<Publication>>>,
    received: AtomicU64,
    rejected: AtomicU64,
}

/// A running station server.
pub struct StationServer {
    /// Human-readable station name.
    pub name: String,
    addr: SocketAddr,
    query_addr: SocketAddr,
    state: Arc<StationState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    query_thread: Option<std::thread::JoinHandle<()>>,
}

impl StationServer {
    /// Bind a UDP socket on `addr` (use port 0 for an ephemeral port) and
    /// start the ingest thread.
    pub fn spawn(name: impl Into<String>, addr: &str) -> std::io::Result<StationServer> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let local = socket.local_addr()?;
        let state = Arc::new(StationState {
            services: RwLock::new(HashMap::new()),
            samples: RwLock::new(HashMap::new()),
            subscribers: RwLock::new(Vec::new()),
            received: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let thread_state = Arc::clone(&state);
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(format!("station-{local}"))
            .spawn(move || {
                let mut buf = vec![0u8; 64 * 1024];
                while !thread_stop.load(Ordering::SeqCst) {
                    match socket.recv_from(&mut buf) {
                        Ok((len, _peer)) => {
                            // Fault injection: simulate datagram loss on the
                            // receive side (real UDP loss is silent, so a
                            // dropped datagram is neither received nor
                            // rejected — it just never happened).
                            if matches!(
                                clarens_faults::eval(clarens_faults::sites::DISCOVERY_UDP_RECV),
                                Some(clarens_faults::Injected::Err)
                                    | Some(clarens_faults::Injected::ShortWrite(_))
                            ) {
                                continue;
                            }
                            match Publication::from_datagram(&buf[..len]) {
                                Ok(publication) => {
                                    thread_state.received.fetch_add(1, Ordering::Relaxed);
                                    ingest(&thread_state, publication);
                                }
                                Err(_) => {
                                    thread_state.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn station thread");

        // TCP query endpoint: the synchronous lookup path a cache-less
        // discovery client has to take (one connection per query, like a
        // 2005-era JINI lookup). Protocol: 4-byte BE length + JSON query
        // in; 4-byte BE length + JSON descriptor array out.
        let query_listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let query_addr = query_listener.local_addr()?;
        query_listener.set_nonblocking(true)?;
        let query_state = Arc::clone(&state);
        let query_stop = Arc::clone(&stop);
        let query_thread = std::thread::Builder::new()
            .name(format!("station-query-{query_addr}"))
            .spawn(move || {
                while !query_stop.load(Ordering::SeqCst) {
                    match query_listener.accept() {
                        Ok((mut sock, _)) => {
                            sock.set_nonblocking(false).ok();
                            sock.set_read_timeout(Some(Duration::from_secs(2))).ok();
                            let _ = serve_query(&query_state, &mut sock);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn station query thread");

        Ok(StationServer {
            name: name.into(),
            addr: local,
            query_addr,
            state,
            stop,
            thread: Some(thread),
            query_thread: Some(query_thread),
        })
    }

    /// The UDP address publishers should send to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The TCP address remote queries connect to.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// Subscribe to the station's update stream (the "republish to the
    /// MonALISA network" arrow in Figure 3). Existing state is replayed
    /// first so late subscribers converge.
    pub fn subscribe(&self) -> Receiver<Publication> {
        let (tx, rx) = unbounded();
        for descriptor in self.state.services.read().values() {
            let _ = tx.send(Publication::Service(descriptor.clone()));
        }
        for sample in self.state.samples.read().values() {
            let _ = tx.send(Publication::Sample(sample.clone()));
        }
        self.state.subscribers.write().push(tx);
        rx
    }

    /// Direct (synchronous) query against this station's state — what a
    /// discovery server without a local cache has to do per lookup.
    pub fn query(&self, query: &ServiceQuery) -> Vec<ServiceDescriptor> {
        self.state
            .services
            .read()
            .values()
            .filter(|d| query.matches(d))
            .cloned()
            .collect()
    }

    /// Current monitoring value for a metric path, if known.
    pub fn sample(&self, farm: &str, node: &str, key: &str) -> Option<MonitorSample> {
        self.state
            .samples
            .read()
            .get(&format!("{farm}/{node}/{key}"))
            .cloned()
    }

    /// Number of live service entries.
    pub fn service_count(&self) -> usize {
        self.state.services.read().len()
    }

    /// Datagrams accepted / rejected so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.state.received.load(Ordering::Relaxed),
            self.state.rejected.load(Ordering::Relaxed),
        )
    }

    /// Drop entries older than `ttl_secs` relative to `now`.
    pub fn expire(&self, now: i64, ttl_secs: i64) {
        self.state
            .services
            .write()
            .retain(|_, d| now - d.timestamp <= ttl_secs);
        self.state
            .samples
            .write()
            .retain(|_, s| now - s.timestamp <= ttl_secs);
    }

    /// Inject a publication directly (in-process path used by tests and by
    /// co-located servers, bypassing UDP).
    pub fn publish_local(&self, publication: Publication) {
        self.state.received.fetch_add(1, Ordering::Relaxed);
        ingest(&self.state, publication);
    }

    /// Stop the ingest and query threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.query_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StationServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Serve one TCP query request.
fn serve_query(state: &StationState, sock: &mut std::net::TcpStream) -> std::io::Result<()> {
    use std::io::{Read, Write};
    let mut len_buf = [0u8; 4];
    sock.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > 64 * 1024 {
        return Ok(()); // drop oversized queries
    }
    let mut body = vec![0u8; len];
    sock.read_exact(&mut body)?;
    let query = std::str::from_utf8(&body)
        .ok()
        .and_then(|t| clarens_wire::json::parse(t).ok())
        .and_then(|v| ServiceQuery::from_value(&v).ok())
        .unwrap_or_default();
    let hits: Vec<clarens_wire::Value> = state
        .services
        .read()
        .values()
        .filter(|d| query.matches(d))
        .map(|d| d.to_value())
        .collect();
    let payload = clarens_wire::json::to_string(&clarens_wire::Value::Array(hits)).into_bytes();
    sock.write_all(&(payload.len() as u32).to_be_bytes())?;
    sock.write_all(&payload)?;
    sock.flush()
}

/// Client side of the TCP query protocol: one connection per query.
pub fn query_station(
    addr: SocketAddr,
    query: &ServiceQuery,
) -> std::io::Result<Vec<ServiceDescriptor>> {
    use std::io::{Read, Write};
    let mut sock = std::net::TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(Duration::from_secs(2)))?;
    let payload = clarens_wire::json::to_string(&query.to_value()).into_bytes();
    sock.write_all(&(payload.len() as u32).to_be_bytes())?;
    sock.write_all(&payload)?;
    sock.flush()?;
    let mut len_buf = [0u8; 4];
    sock.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    sock.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF8"))?;
    let value = clarens_wire::json::parse(text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let hits = value
        .as_array()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "not an array"))?
        .iter()
        .filter_map(|v| ServiceDescriptor::from_value(v).ok())
        .collect();
    Ok(hits)
}

fn ingest(state: &StationState, publication: Publication) {
    match &publication {
        Publication::Service(descriptor) => {
            let mut services = state.services.write();
            // Keep the newest timestamp per key.
            match services.get(&descriptor.key()) {
                Some(existing) if existing.timestamp > descriptor.timestamp => return,
                _ => {
                    services.insert(descriptor.key(), descriptor.clone());
                }
            }
        }
        Publication::Sample(sample) => {
            let mut samples = state.samples.write();
            match samples.get(&sample.key_path()) {
                Some(existing) if existing.timestamp > sample.timestamp => return,
                _ => {
                    samples.insert(sample.key_path(), sample.clone());
                }
            }
        }
    }
    // Fan out to subscribers, dropping any that have gone away.
    state
        .subscribers
        .write()
        .retain(|tx| tx.send(publication.clone()).is_ok());
}

/// The publisher side: a Clarens server uses this to announce its services
/// over UDP to one or more stations.
pub struct UdpPublisher {
    socket: UdpSocket,
    stations: Vec<SocketAddr>,
}

impl UdpPublisher {
    /// Create a publisher targeting the given station addresses.
    pub fn new(stations: Vec<SocketAddr>) -> std::io::Result<UdpPublisher> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        Ok(UdpPublisher { socket, stations })
    }

    /// Publish to every station.
    pub fn publish(&self, publication: &Publication) -> std::io::Result<()> {
        let datagram = publication.to_datagram();
        for station in &self.stations {
            clarens_faults::check_io(clarens_faults::sites::DISCOVERY_UDP_SEND)?;
            self.socket.send_to(&datagram, station)?;
        }
        Ok(())
    }
}

/// Wait (bounded) until `predicate` is true; returns false on timeout.
/// UDP delivery is asynchronous, so tests and examples need this.
pub fn wait_until(timeout: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    predicate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor(service: &str, ts: i64) -> ServiceDescriptor {
        ServiceDescriptor {
            url: "http://h:1/clarens".into(),
            server_dn: "/O=g/CN=h".into(),
            service: service.into(),
            methods: vec![format!("{service}.run")],
            attributes: Default::default(),
            timestamp: ts,
        }
    }

    #[test]
    fn udp_publish_and_query() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        let publisher = UdpPublisher::new(vec![station.local_addr()]).unwrap();
        publisher
            .publish(&Publication::Service(descriptor("file", 100)))
            .unwrap();
        assert!(wait_until(Duration::from_secs(2), || station
            .service_count()
            == 1));
        let hits = station.query(&ServiceQuery::by_service("file"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].service, "file");
        station.shutdown();
    }

    #[test]
    fn stale_publication_ignored() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        station.publish_local(Publication::Service(descriptor("file", 200)));
        station.publish_local(Publication::Service(descriptor("file", 100))); // older
        let hits = station.query(&ServiceQuery::by_service("file"));
        assert_eq!(hits[0].timestamp, 200);
        station.shutdown();
    }

    #[test]
    fn garbage_datagram_counted_not_fatal() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"garbage!!", station.local_addr()).unwrap();
        let publisher = UdpPublisher::new(vec![station.local_addr()]).unwrap();
        publisher
            .publish(&Publication::Service(descriptor("file", 1)))
            .unwrap();
        assert!(wait_until(Duration::from_secs(2), || station
            .service_count()
            == 1));
        let (received, rejected) = station.stats();
        assert_eq!(received, 1);
        assert_eq!(rejected, 1);
        station.shutdown();
    }

    #[test]
    fn subscription_replays_and_streams() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        station.publish_local(Publication::Service(descriptor("early", 1)));
        let rx = station.subscribe();
        // Replay of pre-existing state.
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            Publication::Service(d) => assert_eq!(d.service, "early"),
            other => panic!("unexpected {other:?}"),
        }
        // Live updates.
        station.publish_local(Publication::Service(descriptor("late", 2)));
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            Publication::Service(d) => assert_eq!(d.service, "late"),
            other => panic!("unexpected {other:?}"),
        }
        station.shutdown();
    }

    #[test]
    fn expiry_drops_stale_entries() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        station.publish_local(Publication::Service(descriptor("old", 100)));
        station.publish_local(Publication::Service(descriptor("new", 990)));
        station.expire(1000, 60);
        assert_eq!(station.service_count(), 1);
        assert_eq!(station.query(&ServiceQuery::by_service("new")).len(), 1);
        station.shutdown();
    }

    #[test]
    fn samples_stored_by_path() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        station.publish_local(Publication::Sample(MonitorSample {
            farm: "f".into(),
            node: "n".into(),
            key: "cpu".into(),
            value: 0.5,
            timestamp: 10,
        }));
        assert_eq!(station.sample("f", "n", "cpu").unwrap().value, 0.5);
        assert!(station.sample("f", "n", "mem").is_none());
        station.shutdown();
    }

    #[test]
    fn tcp_query_protocol() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        station.publish_local(Publication::Service(descriptor("file", 1)));
        station.publish_local(Publication::Service(descriptor("proof", 2)));

        let hits = query_station(station.query_addr(), &ServiceQuery::by_service("file")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].service, "file");
        // Empty query returns everything.
        let all = query_station(station.query_addr(), &ServiceQuery::default()).unwrap();
        assert_eq!(all.len(), 2);
        // No match returns empty.
        let none = query_station(station.query_addr(), &ServiceQuery::by_service("nope")).unwrap();
        assert!(none.is_empty());
        station.shutdown();
    }

    #[test]
    fn query_roundtrip_via_value() {
        let q = ServiceQuery::by_method("file.read").with_attribute("site", "caltech");
        let v = q.to_value();
        assert_eq!(ServiceQuery::from_value(&v).unwrap(), q);
    }

    #[test]
    fn injected_send_error_surfaces_and_clears() {
        let station = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        let publisher = UdpPublisher::new(vec![station.local_addr()]).unwrap();
        {
            let _guard = clarens_faults::with_thread(
                clarens_faults::sites::DISCOVERY_UDP_SEND,
                "err|times=1",
            );
            let err = publisher
                .publish(&Publication::Service(descriptor("file", 1)))
                .unwrap_err();
            assert!(clarens_faults::is_injected(&err));
            // Budget exhausted: the next attempt goes through.
            publisher
                .publish(&Publication::Service(descriptor("file", 2)))
                .unwrap();
        }
        assert!(wait_until(Duration::from_secs(2), || station
            .service_count()
            == 1));
        station.shutdown();
    }

    #[test]
    fn publish_to_multiple_stations() {
        let s1 = StationServer::spawn("s1", "127.0.0.1:0").unwrap();
        let s2 = StationServer::spawn("s2", "127.0.0.1:0").unwrap();
        let publisher = UdpPublisher::new(vec![s1.local_addr(), s2.local_addr()]).unwrap();
        publisher
            .publish(&Publication::Service(descriptor("file", 1)))
            .unwrap();
        assert!(wait_until(Duration::from_secs(2), || {
            s1.service_count() == 1 && s2.service_count() == 1
        }));
        s1.shutdown();
        s2.shutdown();
    }
}
