//! GLUE-style schema objects for the monitoring / discovery network.
//!
//! "Information provided to MonALISA is usually arranged roughly as
//! described by the so-called GLUE schema, as a hierarchy of servers,
//! farms, nodes and key/numerical value pairs" (paper §2.4). These types
//! are that hierarchy, plus the service descriptor Clarens servers publish
//! so that clients can discover them.

use std::collections::BTreeMap;

use clarens_wire::{json, Value, WireError};

/// A published web-service descriptor: where a service lives and what it
/// offers. This is what the Clarens discovery service registers and what
/// clients query for, enabling "service calls that are location
/// independent".
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDescriptor {
    /// The server's base URL, e.g. `http://tier2.caltech.edu:8080/clarens`.
    pub url: String,
    /// Server distinguished name (host certificate subject).
    pub server_dn: String,
    /// Service (module) name, e.g. `file` or `proof`.
    pub service: String,
    /// Methods the service exports, e.g. `["file.read", "file.ls"]`.
    pub methods: Vec<String>,
    /// Free-form attributes (version, site, experiment, ...).
    pub attributes: BTreeMap<String, String>,
    /// Publication timestamp (Unix seconds); stations expire stale entries.
    pub timestamp: i64,
}

impl ServiceDescriptor {
    /// Unique registry key: a service instance is (url, service).
    pub fn key(&self) -> String {
        format!("{}|{}", self.url, self.service)
    }

    /// Encode to the wire value (JSON object on the UDP datagram).
    pub fn to_value(&self) -> Value {
        Value::structure([
            ("kind", Value::from("service")),
            ("url", Value::from(self.url.clone())),
            ("server_dn", Value::from(self.server_dn.clone())),
            ("service", Value::from(self.service.clone())),
            (
                "methods",
                Value::Array(self.methods.iter().cloned().map(Value::from).collect()),
            ),
            (
                "attributes",
                Value::Struct(
                    self.attributes
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
            ("timestamp", Value::Int(self.timestamp)),
        ])
    }

    /// Decode from the wire value.
    pub fn from_value(value: &Value) -> Result<Self, WireError> {
        let get_str = |k: &str| -> Result<String, WireError> {
            value
                .get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| WireError::protocol(format!("descriptor missing {k}")))
        };
        let methods = value
            .get("methods")
            .and_then(Value::as_array)
            .ok_or_else(|| WireError::protocol("descriptor missing methods"))?
            .iter()
            .filter_map(|m| m.as_str().map(str::to_owned))
            .collect();
        let attributes = value
            .get("attributes")
            .and_then(Value::as_struct)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect()
            })
            .unwrap_or_default();
        Ok(ServiceDescriptor {
            url: get_str("url")?,
            server_dn: get_str("server_dn")?,
            service: get_str("service")?,
            methods,
            attributes,
            timestamp: value
                .get("timestamp")
                .and_then(Value::as_int)
                .ok_or_else(|| WireError::protocol("descriptor missing timestamp"))?,
        })
    }

    /// Serialize for a UDP datagram.
    pub fn to_datagram(&self) -> Vec<u8> {
        json::to_string(&self.to_value()).into_bytes()
    }
}

/// A numeric monitoring sample: `farm / node / key = value` — the
/// "key/numerical value pairs" level of the GLUE hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSample {
    /// Computing farm (site).
    pub farm: String,
    /// Node within the farm.
    pub node: String,
    /// Metric name, e.g. `cpu_load` or `free_disk_mb`.
    pub key: String,
    /// Metric value.
    pub value: f64,
    /// Sample timestamp (Unix seconds).
    pub timestamp: i64,
}

impl MonitorSample {
    /// Registry key.
    pub fn key_path(&self) -> String {
        format!("{}/{}/{}", self.farm, self.node, self.key)
    }

    /// Encode for the UDP datagram.
    pub fn to_value(&self) -> Value {
        Value::structure([
            ("kind", Value::from("sample")),
            ("farm", Value::from(self.farm.clone())),
            ("node", Value::from(self.node.clone())),
            ("key", Value::from(self.key.clone())),
            ("value", Value::Double(self.value)),
            ("timestamp", Value::Int(self.timestamp)),
        ])
    }

    /// Decode from the wire value.
    pub fn from_value(value: &Value) -> Result<Self, WireError> {
        let get_str = |k: &str| -> Result<String, WireError> {
            value
                .get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| WireError::protocol(format!("sample missing {k}")))
        };
        Ok(MonitorSample {
            farm: get_str("farm")?,
            node: get_str("node")?,
            key: get_str("key")?,
            value: value
                .get("value")
                .and_then(Value::as_double)
                .ok_or_else(|| WireError::protocol("sample missing value"))?,
            timestamp: value
                .get("timestamp")
                .and_then(Value::as_int)
                .ok_or_else(|| WireError::protocol("sample missing timestamp"))?,
        })
    }

    /// Serialize for a UDP datagram.
    pub fn to_datagram(&self) -> Vec<u8> {
        json::to_string(&self.to_value()).into_bytes()
    }
}

/// Anything a station can receive.
#[derive(Debug, Clone, PartialEq)]
pub enum Publication {
    /// A service descriptor.
    Service(ServiceDescriptor),
    /// A monitoring sample.
    Sample(MonitorSample),
}

impl Publication {
    /// Decode a datagram into a publication (dispatch on `kind`).
    pub fn from_datagram(data: &[u8]) -> Result<Publication, WireError> {
        let text =
            std::str::from_utf8(data).map_err(|_| WireError::parse("datagram is not UTF-8"))?;
        let value = json::parse(text)?;
        match value.get("kind").and_then(Value::as_str) {
            Some("service") => Ok(Publication::Service(ServiceDescriptor::from_value(&value)?)),
            Some("sample") => Ok(Publication::Sample(MonitorSample::from_value(&value)?)),
            other => Err(WireError::protocol(format!(
                "unknown publication kind {other:?}"
            ))),
        }
    }

    /// Serialize to a datagram.
    pub fn to_datagram(&self) -> Vec<u8> {
        match self {
            Publication::Service(s) => s.to_datagram(),
            Publication::Sample(s) => s.to_datagram(),
        }
    }
}

/// A query over the service registry. All present fields must match.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceQuery {
    /// Exact service (module) name.
    pub service: Option<String>,
    /// Method that must be exported (exact match).
    pub method: Option<String>,
    /// Attribute equality constraints.
    pub attributes: BTreeMap<String, String>,
}

impl ServiceQuery {
    /// Query by service name only.
    pub fn by_service(name: impl Into<String>) -> Self {
        ServiceQuery {
            service: Some(name.into()),
            ..Default::default()
        }
    }

    /// Query by exported method.
    pub fn by_method(method: impl Into<String>) -> Self {
        ServiceQuery {
            method: Some(method.into()),
            ..Default::default()
        }
    }

    /// Add an attribute constraint.
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// Encode for the TCP query protocol.
    pub fn to_value(&self) -> Value {
        Value::structure([
            (
                "service",
                self.service.clone().map(Value::from).unwrap_or(Value::Nil),
            ),
            (
                "method",
                self.method.clone().map(Value::from).unwrap_or(Value::Nil),
            ),
            (
                "attributes",
                Value::Struct(
                    self.attributes
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from the TCP query protocol.
    pub fn from_value(value: &Value) -> Result<Self, WireError> {
        let attributes = value
            .get("attributes")
            .and_then(Value::as_struct)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect()
            })
            .unwrap_or_default();
        Ok(ServiceQuery {
            service: value
                .get("service")
                .and_then(|v| v.as_str().map(str::to_owned)),
            method: value
                .get("method")
                .and_then(|v| v.as_str().map(str::to_owned)),
            attributes,
        })
    }

    /// Does a descriptor match?
    pub fn matches(&self, descriptor: &ServiceDescriptor) -> bool {
        if let Some(service) = &self.service {
            if &descriptor.service != service {
                return false;
            }
        }
        if let Some(method) = &self.method {
            if !descriptor.methods.iter().any(|m| m == method) {
                return false;
            }
        }
        self.attributes
            .iter()
            .all(|(k, v)| descriptor.attributes.get(k) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor() -> ServiceDescriptor {
        ServiceDescriptor {
            url: "http://tier2.example.edu:8080/clarens".into(),
            server_dn: "/O=grid/CN=host/tier2.example.edu".into(),
            service: "file".into(),
            methods: vec!["file.read".into(), "file.ls".into()],
            attributes: [("site".to_string(), "caltech".to_string())].into(),
            timestamp: 1_118_836_800,
        }
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = descriptor();
        let datagram = d.to_datagram();
        match Publication::from_datagram(&datagram).unwrap() {
            Publication::Service(back) => assert_eq!(back, d),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sample_roundtrip() {
        let s = MonitorSample {
            farm: "caltech-tier2".into(),
            node: "node042".into(),
            key: "cpu_load".into(),
            value: 0.75,
            timestamp: 1_118_836_800,
        };
        let datagram = s.to_datagram();
        match Publication::from_datagram(&datagram).unwrap() {
            Publication::Sample(back) => assert_eq!(back, s),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.key_path(), "caltech-tier2/node042/cpu_load");
    }

    #[test]
    fn bad_datagrams_rejected() {
        assert!(Publication::from_datagram(b"not json").is_err());
        assert!(Publication::from_datagram(b"{}").is_err());
        assert!(Publication::from_datagram(b"{\"kind\":\"other\"}").is_err());
        assert!(Publication::from_datagram(b"{\"kind\":\"service\"}").is_err());
        assert!(Publication::from_datagram(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn query_matching() {
        let d = descriptor();
        assert!(ServiceQuery::by_service("file").matches(&d));
        assert!(!ServiceQuery::by_service("proof").matches(&d));
        assert!(ServiceQuery::by_method("file.read").matches(&d));
        assert!(!ServiceQuery::by_method("file.write").matches(&d));
        assert!(ServiceQuery::by_service("file")
            .with_attribute("site", "caltech")
            .matches(&d));
        assert!(!ServiceQuery::by_service("file")
            .with_attribute("site", "cern")
            .matches(&d));
        assert!(ServiceQuery::default().matches(&d)); // empty query matches all
    }

    #[test]
    fn key_uniqueness() {
        let d = descriptor();
        let mut d2 = d.clone();
        d2.service = "proof".into();
        assert_ne!(d.key(), d2.key());
    }
}
