//! # monalisa-sim — a MonALISA-style monitoring & discovery network
//!
//! The paper's discovery service (§2.4, Figure 3) rides on MonALISA's
//! "scalable publish-subscribe network": Clarens servers publish service
//! information over UDP to *station servers*; a discovery server acts as a
//! JINI client, aggregates the network's state into a local database, and
//! "responds to service searches far more rapidly by using the local
//! database". This crate simulates that architecture faithfully enough to
//! measure it:
//!
//! * [`schema`] — GLUE-style descriptors (services, farm/node/key samples),
//! * [`station`] — UDP-fed station servers with pub-sub fan-out,
//! * [`aggregator`] — the discovery server with a local-DB fast path and a
//!   fan-out slow path, so the paper's speed claim can be benchmarked.

pub mod aggregator;
pub mod schema;
pub mod station;

pub use aggregator::DiscoveryAggregator;
pub use schema::{MonitorSample, Publication, ServiceDescriptor, ServiceQuery};
pub use station::{StationServer, UdpPublisher};
