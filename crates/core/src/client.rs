//! The Clarens client API: typed access to a Clarens server over any of
//! the three protocols, with certificate login, session management, proxy
//! login, and convenience wrappers for the core services.
//!
//! Plays the role of the paper's Python client library ("a set of useful
//! client implementations for physics analysis", §7).

use std::sync::Arc;
use std::time::{Duration, Instant};

use clarens_httpd::{ClientTls, HttpClient, Method, Request};
use clarens_pki::cert::{Certificate, Credential};
use clarens_wire::{Fault, Protocol, RpcCall, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::services::system::auth_challenge;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Transport(String),
    /// HTTP-level failure (non-200 status).
    Http(u16, String),
    /// The server returned an RPC fault.
    Fault(Fault),
    /// Malformed response payload.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Http(status, m) => write!(f, "HTTP {status}: {m}"),
            ClientError::Fault(fault) => write!(f, "{fault}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<Fault> for ClientError {
    fn from(f: Fault) -> Self {
        ClientError::Fault(f)
    }
}

/// Base pause before the first retry; doubles per attempt, with jitter.
const BACKOFF_BASE: Duration = Duration::from_millis(10);

/// How many `NOT_LEADER` routing hints a single call will chase before
/// surfacing the fault. Hints can go stale mid-election (node A says B,
/// B says C), but a healthy cluster converges in one hop; a cycle longer
/// than this means the cluster has no settled leader yet.
const MAX_LEADER_HOPS: u32 = 3;

/// Transport-retry whitelist: only methods whose re-execution cannot
/// duplicate a side effect are retried after an I/O failure, because a
/// transport error leaves the first attempt's fate unknown (the request
/// may have been applied before the connection died).
fn is_idempotent(method: &str) -> bool {
    if let Some(rest) = method.strip_prefix("file.") {
        // Read-only file operations; excludes put/mkdir/rm.
        return matches!(rest, "read" | "ls" | "stat" | "find" | "size" | "md5");
    }
    if let Some(rest) = method.strip_prefix("system.") {
        // auth mints a session and logout destroys one — both side effects.
        return !matches!(rest, "auth" | "logout");
    }
    // Pure echoes; discovery queries; publish overwrites the same
    // descriptor, so replaying it is harmless. Replication fetches are
    // cursor-addressed reads of an append-only log — replaying one
    // re-serves the same bytes.
    method.starts_with("echo.")
        || matches!(
            method,
            "discovery.find"
                | "discovery.find_remote"
                | "discovery.status"
                | "discovery.publish"
                | "replication.fetch"
                | "replication.status"
        )
}

/// A Clarens client bound to one server.
pub struct ClarensClient {
    http: HttpClient,
    protocol: Protocol,
    endpoint: String,
    session: Option<String>,
    credential: Option<Credential>,
    now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
    /// Transport-error retries per call (idempotent methods only).
    retries: u32,
    /// Overall per-call budget covering every attempt and backoff pause.
    call_deadline: Option<Duration>,
    /// Jitter source; seedable so tests get a deterministic schedule.
    rng: StdRng,
    /// Total retry attempts performed over the client's lifetime.
    retries_performed: u64,
    protocol_fallbacks: u64,
    /// Extra headers attached to every RPC POST (e.g. `x-clarens-hops`
    /// when a proxy node forwards a call on a caller's behalf).
    extra_headers: Vec<(String, String)>,
    /// Trust roots kept from `new_tls`, so a `NOT_LEADER` redirect can
    /// rebuild an equivalent secure client for the hinted leader. `None`
    /// on plaintext clients.
    tls_roots: Option<Vec<Certificate>>,
    /// Calls re-routed to a hinted leader after a `NOT_LEADER` fault.
    leader_redirects: u64,
    /// The last leader hint successfully followed: `(host:port, epoch)`.
    /// Lets a routing layer (e.g. `BalancedClient`) learn where the
    /// leader is without a discovery round trip.
    last_leader: Option<(String, u64)>,
}

fn system_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

impl ClarensClient {
    /// Plaintext client speaking XML-RPC (the paper's default protocol).
    pub fn new(addr: impl Into<String>) -> Self {
        ClarensClient {
            http: HttpClient::new(addr),
            protocol: Protocol::XmlRpc,
            endpoint: "/clarens".into(),
            session: None,
            credential: None,
            now_fn: Arc::new(system_now),
            retries: 2,
            call_deadline: None,
            rng: StdRng::seed_from_u64(rand::rng().next_u64()),
            retries_performed: 0,
            protocol_fallbacks: 0,
            extra_headers: Vec::new(),
            tls_roots: None,
            leader_redirects: 0,
            last_leader: None,
        }
    }

    /// Secure-channel client: the TLS identity doubles as the login, so no
    /// explicit `login()` is required.
    pub fn new_tls(
        addr: impl Into<String>,
        credential: Credential,
        roots: Vec<Certificate>,
    ) -> Self {
        let cred_clone = credential.clone();
        let roots_clone = roots.clone();
        ClarensClient {
            http: HttpClient::new_tls(
                addr,
                ClientTls {
                    credential,
                    roots,
                    now_fn: Box::new(system_now),
                },
            ),
            credential: Some(cred_clone),
            tls_roots: Some(roots_clone),
            ..ClarensClient::new(String::new())
        }
    }

    /// Select the wire protocol (XML-RPC, SOAP, JSON-RPC, or clarens-binary).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Attach a credential for `login()` over plaintext connections.
    pub fn with_credential(mut self, credential: Credential) -> Self {
        self.credential = Some(credential);
        self
    }

    /// Override the clock (deterministic tests).
    pub fn with_now_fn(mut self, now_fn: Arc<dyn Fn() -> i64 + Send + Sync>) -> Self {
        self.now_fn = now_fn;
        self
    }

    /// Number of transport-error retries per call (idempotent methods
    /// only; default 2, matching the `client_retries` config knob).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Overall per-call deadline covering all attempts and backoff
    /// pauses. Also bounds how long a single read may stall, so a hung
    /// server cannot block the caller indefinitely.
    pub fn with_call_deadline(mut self, deadline: Duration) -> Self {
        self.call_deadline = Some(deadline);
        self
    }

    /// Seed the backoff-jitter RNG for a deterministic retry schedule.
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Attach an extra header to every RPC POST this client sends. The
    /// proxy service uses this to carry the `x-clarens-hops` forwarding
    /// depth across node boundaries.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Total retry attempts this client has performed.
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    /// How many times the client downgraded binary -> XML-RPC after a 415.
    pub fn protocol_fallbacks(&self) -> u64 {
        self.protocol_fallbacks
    }

    /// How many calls were re-routed to a hinted leader after `NOT_LEADER`.
    pub fn leader_redirects(&self) -> u64 {
        self.leader_redirects
    }

    /// The last leader hint successfully followed (`host:port`, epoch).
    pub fn last_leader(&self) -> Option<(&str, u64)> {
        self.last_leader
            .as_ref()
            .map(|(addr, epoch)| (addr.as_str(), *epoch))
    }

    /// The protocol currently spoken (may differ from the constructor's
    /// choice after a 415 downgrade).
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The current session id, if logged in.
    pub fn session_id(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// Adopt an existing session id (e.g. persisted from a previous run —
    /// the restart-survival workflow).
    pub fn set_session(&mut self, id: impl Into<String>) {
        self.session = Some(id.into());
    }

    /// Invoke `method` with `params`.
    ///
    /// Transport failures on idempotent methods are retried up to the
    /// configured count with jittered exponential backoff; the per-call
    /// deadline (if set) caps the total time across all attempts.
    ///
    /// A client speaking the binary protocol against a server that has it
    /// disabled gets `415 Unsupported Media Type` back; the client then
    /// downgrades itself to XML-RPC and replays the call, so callers never
    /// see the negotiation (DESIGN.md §13).
    /// A `NOT_LEADER` fault (a replicated write sent to a follower or a
    /// fenced leader) is chased transparently: the fault carries a
    /// `leader=HOST:PORT` hint, and the call is replayed against that
    /// node with the same session, up to [`MAX_LEADER_HOPS`] hops. A
    /// hint-less fault (mid-election, no leader known yet) is retried in
    /// place with backoff. The pre-dispatch fence fires *before* the
    /// handler runs, so an ordinary `NOT_LEADER` means nothing was
    /// executed and the replay is safe even for mutations — but a fault
    /// carrying `executed=maybe` (the leader lost its lease *after*
    /// applying the write, while waiting for the replicated ack) means
    /// the operation's fate is unknown; such faults are only replayed for
    /// idempotent methods and otherwise surface to the caller, which
    /// alone can decide whether re-issuing the mutation is safe.
    pub fn call(&mut self, method: &str, params: Vec<Value>) -> Result<Value, ClientError> {
        let call = RpcCall {
            method: method.to_owned(),
            params,
            id: Some(Value::Int(1)),
        };
        let idempotent = is_idempotent(method);
        let started = Instant::now();
        let mut result = match self.call_rpc(&call, idempotent) {
            Err(ClientError::Http(415, _)) if self.protocol == Protocol::Binary => {
                self.protocol = Protocol::XmlRpc;
                self.protocol_fallbacks += 1;
                self.call_rpc(&call, idempotent)
            }
            other => other,
        };
        let mut hops = 0u32;
        let mut blind_retries = 0u32;
        loop {
            let hint = match &result {
                // A post-execution rejection of a non-idempotent call must
                // not be replayed: the write may already have taken effect
                // (and may yet survive via replication).
                Err(ClientError::Fault(fault))
                    if idempotent || !fault.executed_maybe() =>
                {
                    fault.leader_hint()
                }
                _ => None,
            };
            let Some((leader, _epoch)) = hint else { break };
            let remaining = self
                .call_deadline
                .map(|budget| budget.saturating_sub(started.elapsed()));
            if remaining.is_some_and(|r| r.is_zero()) {
                break;
            }
            if !leader.is_empty() && hops < MAX_LEADER_HOPS {
                hops += 1;
                self.leader_redirects += 1;
                let mut redirect = self.redirect_client(&leader, remaining);
                result = redirect.call_rpc(&call, idempotent);
                if result.is_ok() {
                    self.last_leader = Some((leader, _epoch));
                }
            } else if leader.is_empty() && blind_retries < self.retries {
                // Nobody claims the lease yet (election in flight): pause
                // and replay against the same node, on the retry budget.
                blind_retries += 1;
                self.retries_performed += 1;
                let pause = self.backoff(blind_retries);
                std::thread::sleep(match remaining {
                    Some(r) => pause.min(r),
                    None => pause,
                });
                result = self.call_rpc(&call, idempotent);
            } else {
                break;
            }
        }
        result
    }

    /// Build a client equivalent to this one (protocol, session, headers,
    /// transport flavour) but bound to `leader`, for one redirect hop.
    fn redirect_client(&self, leader: &str, remaining: Option<Duration>) -> ClarensClient {
        let mut client = match (&self.credential, &self.tls_roots) {
            (Some(credential), Some(roots)) => {
                ClarensClient::new_tls(leader.to_owned(), credential.clone(), roots.clone())
            }
            _ => ClarensClient::new(leader.to_owned()),
        };
        client.protocol = self.protocol;
        client.session = self.session.clone();
        client.credential = self.credential.clone();
        client.now_fn = Arc::clone(&self.now_fn);
        client.retries = self.retries;
        client.call_deadline = remaining.or(self.call_deadline);
        client.extra_headers = self.extra_headers.clone();
        client
    }

    /// One encode → transport → decode exchange in the current protocol.
    fn call_rpc(&mut self, call: &RpcCall, idempotent: bool) -> Result<Value, ClientError> {
        let body = clarens_wire::encode_call(self.protocol, call);
        let mut request = Request::new(Method::Post, self.endpoint.clone());
        request
            .headers
            .set("content-type", self.protocol.content_type());
        if let Some(session) = &self.session {
            request.headers.set("x-clarens-session", session.clone());
        }
        for (name, value) in &self.extra_headers {
            request.headers.set(name, value.clone());
        }
        request.body = body;

        let response = self.transport_with_retries(&request, idempotent)?;
        if response.status != 200 {
            return Err(ClientError::Http(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        clarens_wire::decode_response(self.protocol, &response.body)
            .map_err(|e| ClientError::Protocol(e.to_string()))?
            .into_result()
            .map_err(|e| match e {
                clarens_wire::WireError::Fault(f) => ClientError::Fault(f),
                other => ClientError::Protocol(other.to_string()),
            })
    }

    /// Issue one HTTP exchange, retrying transport failures when the
    /// operation is safe to replay, under the per-call deadline.
    fn transport_with_retries(
        &mut self,
        request: &Request,
        retryable: bool,
    ) -> Result<clarens_httpd::ClientResponse, ClientError> {
        let deadline = self.call_deadline.map(|budget| Instant::now() + budget);
        let mut attempt = 0u32;
        loop {
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(ClientError::Transport("call deadline exceeded".into()));
                }
                // Bound each socket read by the remaining budget so a
                // stalled server surfaces as a timeout, not a hang.
                self.http.set_read_timeout(remaining);
            }
            match self.http.request(request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    if !retryable || attempt >= self.retries {
                        return Err(ClientError::Transport(e.to_string()));
                    }
                    attempt += 1;
                    self.retries_performed += 1;
                    self.http.close();
                    let pause = self.backoff(attempt);
                    match deadline {
                        Some(d) => {
                            let remaining = d.saturating_duration_since(Instant::now());
                            if remaining.is_zero() {
                                return Err(ClientError::Transport(e.to_string()));
                            }
                            std::thread::sleep(pause.min(remaining));
                        }
                        None => std::thread::sleep(pause),
                    }
                }
            }
        }
    }

    /// Exponential backoff with full jitter: attempt `n` waits a random
    /// duration in `[base·2ⁿ⁻¹ / 2, base·2ⁿ⁻¹]`, decorrelating clients
    /// that fail simultaneously (a retry-storm guard).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let ceiling = BACKOFF_BASE
            .saturating_mul(1 << (attempt - 1).min(10))
            .as_millis() as u64;
        let jitter = self.rng.next_u64() % (ceiling / 2 + 1);
        Duration::from_millis(ceiling - jitter)
    }

    /// Authenticate with the attached credential via `system.auth`,
    /// storing the returned session.
    pub fn login(&mut self) -> Result<String, ClientError> {
        let credential = self
            .credential
            .clone()
            .ok_or_else(|| ClientError::Protocol("no credential attached".into()))?;
        let now = (self.now_fn)();
        let signature = credential.key.sign(auth_challenge(now).as_bytes());
        let mut chain_texts = vec![Value::from(credential.certificate.to_text())];
        for link in &credential.chain {
            chain_texts.push(Value::from(link.to_text()));
        }
        let result = self.call(
            "system.auth",
            vec![
                Value::Array(chain_texts),
                Value::Int(now),
                Value::Bytes(signature),
            ],
        )?;
        let session = result
            .get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("auth response missing session".into()))?
            .to_owned();
        self.session = Some(session.clone());
        Ok(session)
    }

    /// Log in using a previously stored proxy (paper §2.6): only the DN and
    /// password are needed.
    pub fn login_proxy(&mut self, dn: &str, password: &str) -> Result<String, ClientError> {
        let result = self.call("proxy.login", vec![Value::from(dn), Value::from(password)])?;
        let session = result
            .get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("login response missing session".into()))?
            .to_owned();
        self.session = Some(session.clone());
        Ok(session)
    }

    /// Destroy the current session.
    pub fn logout(&mut self) -> Result<bool, ClientError> {
        let result = self.call("system.logout", vec![])?;
        self.session = None;
        Ok(result.as_bool().unwrap_or(false))
    }

    /// `system.list_methods` as a string vector.
    pub fn list_methods(&mut self) -> Result<Vec<String>, ClientError> {
        let value = self.call("system.list_methods", vec![])?;
        value
            .as_array()
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("list_methods did not return an array".into()))
    }

    /// `file.read` as raw bytes.
    pub fn file_read(
        &mut self,
        name: &str,
        offset: i64,
        nbytes: i64,
    ) -> Result<Vec<u8>, ClientError> {
        let value = self.call(
            "file.read",
            vec![Value::from(name), Value::Int(offset), Value::Int(nbytes)],
        )?;
        value
            .coerce_bytes()
            .ok_or_else(|| ClientError::Protocol("file.read did not return bytes".into()))
    }

    /// Download a whole file by looping `file.read` (the chunked-pull
    /// pattern of the original clients).
    pub fn file_download(&mut self, name: &str, chunk: i64) -> Result<Vec<u8>, ClientError> {
        let mut out = Vec::new();
        let mut offset = 0i64;
        loop {
            let piece = self.file_read(name, offset, chunk)?;
            let n = piece.len();
            out.extend_from_slice(&piece);
            if (n as i64) < chunk {
                return Ok(out);
            }
            offset += n as i64;
        }
    }

    /// HTTP GET download (the streaming path), returning the body.
    pub fn http_get_file(&mut self, virtual_path: &str) -> Result<Vec<u8>, ClientError> {
        let mut target = format!("/file{}", clarens_wire::percent::encode_path(virtual_path));
        if let Some(session) = &self.session {
            target.push_str(&format!("?session={session}"));
        }
        let mut request = Request::new(Method::Get, target);
        request.headers.set("host", "clarens");
        // GET of an immutable file is always safe to replay.
        let response = self.transport_with_retries(&request, true)?;
        if response.status != 200 {
            return Err(ClientError::Http(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        Ok(response.body)
    }

    /// Fetch a portal page (HTML) for inspection.
    pub fn get_page(&mut self, path: &str) -> Result<(u16, String), ClientError> {
        let mut target = path.to_owned();
        if let Some(session) = &self.session {
            let sep = if target.contains('?') { '&' } else { '?' };
            target.push_str(&format!("{sep}session={session}"));
        }
        let mut request = Request::new(Method::Get, target);
        request.headers.set("host", "clarens");
        let response = self.transport_with_retries(&request, true)?;
        Ok((
            response.status,
            String::from_utf8_lossy(&response.body).into_owned(),
        ))
    }

    /// Drop the underlying connection (next call reconnects).
    pub fn close_connection(&mut self) {
        self.http.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitelist_admits_reads_and_rejects_mutations() {
        for safe in [
            "echo.echo",
            "echo.payload",
            "system.ping",
            "system.list_methods",
            "system.stats",
            "file.read",
            "file.ls",
            "file.stat",
            "discovery.find",
            "discovery.publish",
        ] {
            assert!(is_idempotent(safe), "{safe} should be retryable");
        }
        for unsafe_method in [
            "file.put",
            "file.rm",
            "file.mkdir",
            "system.auth",
            "system.logout",
            "proxy.store",
            "proxy.login",
            "im.send",
            "shell.run",
        ] {
            assert!(
                !is_idempotent(unsafe_method),
                "{unsafe_method} must not be retried"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed_and_exponentially_bounded() {
        let mut a = ClarensClient::new("127.0.0.1:1").with_retry_seed(7);
        let mut b = ClarensClient::new("127.0.0.1:1").with_retry_seed(7);
        for attempt in 1..=6 {
            let pa = a.backoff(attempt);
            let pb = b.backoff(attempt);
            assert_eq!(pa, pb, "same seed must give the same schedule");
            let ceiling = BACKOFF_BASE * (1 << (attempt - 1));
            assert!(pa <= ceiling, "attempt {attempt}: {pa:?} > {ceiling:?}");
            assert!(
                pa >= ceiling / 2,
                "attempt {attempt}: {pa:?} below half-ceiling floor"
            );
        }
        // Different seeds should decorrelate (not a hard guarantee per
        // draw, but across six draws a collision on all is ~impossible).
        let mut c = ClarensClient::new("127.0.0.1:1").with_retry_seed(8);
        let diverged = (1..=6).any(|n| a.backoff(n) != c.backoff(n));
        assert!(diverged, "different seeds produced identical schedules");
    }

    #[test]
    fn retries_recover_from_transient_connect_failures() {
        // No listener on this port: every attempt fails, and the retry
        // counter should reflect the configured budget for an idempotent
        // method, and stay at zero for a mutating one.
        let mut client = ClarensClient::new("127.0.0.1:9")
            .with_retries(2)
            .with_retry_seed(1)
            .with_call_deadline(Duration::from_secs(5));
        let err = client.call("echo.echo", vec![Value::from("x")]);
        assert!(matches!(err, Err(ClientError::Transport(_))));
        assert_eq!(client.retries_performed(), 2);

        let err = client.call("file.put", vec![]);
        assert!(matches!(err, Err(ClientError::Transport(_))));
        assert_eq!(client.retries_performed(), 2, "mutation must not retry");
    }
}
