//! The Clarens client API: typed access to a Clarens server over any of
//! the three protocols, with certificate login, session management, proxy
//! login, and convenience wrappers for the core services.
//!
//! Plays the role of the paper's Python client library ("a set of useful
//! client implementations for physics analysis", §7).

use std::sync::Arc;

use clarens_httpd::{ClientTls, HttpClient, Method, Request};
use clarens_pki::cert::{Certificate, Credential};
use clarens_wire::{Fault, Protocol, RpcCall, Value};

use crate::services::system::auth_challenge;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Transport(String),
    /// HTTP-level failure (non-200 status).
    Http(u16, String),
    /// The server returned an RPC fault.
    Fault(Fault),
    /// Malformed response payload.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Http(status, m) => write!(f, "HTTP {status}: {m}"),
            ClientError::Fault(fault) => write!(f, "{fault}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<Fault> for ClientError {
    fn from(f: Fault) -> Self {
        ClientError::Fault(f)
    }
}

/// A Clarens client bound to one server.
pub struct ClarensClient {
    http: HttpClient,
    protocol: Protocol,
    endpoint: String,
    session: Option<String>,
    credential: Option<Credential>,
    now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
}

fn system_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

impl ClarensClient {
    /// Plaintext client speaking XML-RPC (the paper's default protocol).
    pub fn new(addr: impl Into<String>) -> Self {
        ClarensClient {
            http: HttpClient::new(addr),
            protocol: Protocol::XmlRpc,
            endpoint: "/clarens".into(),
            session: None,
            credential: None,
            now_fn: Arc::new(system_now),
        }
    }

    /// Secure-channel client: the TLS identity doubles as the login, so no
    /// explicit `login()` is required.
    pub fn new_tls(
        addr: impl Into<String>,
        credential: Credential,
        roots: Vec<Certificate>,
    ) -> Self {
        let cred_clone = credential.clone();
        ClarensClient {
            http: HttpClient::new_tls(
                addr,
                ClientTls {
                    credential,
                    roots,
                    now_fn: Box::new(system_now),
                },
            ),
            protocol: Protocol::XmlRpc,
            endpoint: "/clarens".into(),
            session: None,
            credential: Some(cred_clone),
            now_fn: Arc::new(system_now),
        }
    }

    /// Select the wire protocol (XML-RPC, SOAP, or JSON-RPC).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Attach a credential for `login()` over plaintext connections.
    pub fn with_credential(mut self, credential: Credential) -> Self {
        self.credential = Some(credential);
        self
    }

    /// Override the clock (deterministic tests).
    pub fn with_now_fn(mut self, now_fn: Arc<dyn Fn() -> i64 + Send + Sync>) -> Self {
        self.now_fn = now_fn;
        self
    }

    /// The current session id, if logged in.
    pub fn session_id(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// Adopt an existing session id (e.g. persisted from a previous run —
    /// the restart-survival workflow).
    pub fn set_session(&mut self, id: impl Into<String>) {
        self.session = Some(id.into());
    }

    /// Invoke `method` with `params`.
    pub fn call(&mut self, method: &str, params: Vec<Value>) -> Result<Value, ClientError> {
        let call = RpcCall {
            method: method.to_owned(),
            params,
            id: Some(Value::Int(1)),
        };
        let body = clarens_wire::encode_call(self.protocol, &call);
        let mut request = Request::new(Method::Post, self.endpoint.clone());
        request
            .headers
            .set("content-type", self.protocol.content_type());
        if let Some(session) = &self.session {
            request.headers.set("x-clarens-session", session.clone());
        }
        request.body = body;

        let response = self
            .http
            .request(&request)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        if response.status != 200 {
            return Err(ClientError::Http(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        clarens_wire::decode_response(self.protocol, &response.body)
            .map_err(|e| ClientError::Protocol(e.to_string()))?
            .into_result()
            .map_err(|e| match e {
                clarens_wire::WireError::Fault(f) => ClientError::Fault(f),
                other => ClientError::Protocol(other.to_string()),
            })
    }

    /// Authenticate with the attached credential via `system.auth`,
    /// storing the returned session.
    pub fn login(&mut self) -> Result<String, ClientError> {
        let credential = self
            .credential
            .clone()
            .ok_or_else(|| ClientError::Protocol("no credential attached".into()))?;
        let now = (self.now_fn)();
        let signature = credential.key.sign(auth_challenge(now).as_bytes());
        let mut chain_texts = vec![Value::from(credential.certificate.to_text())];
        for link in &credential.chain {
            chain_texts.push(Value::from(link.to_text()));
        }
        let result = self.call(
            "system.auth",
            vec![
                Value::Array(chain_texts),
                Value::Int(now),
                Value::Bytes(signature),
            ],
        )?;
        let session = result
            .get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("auth response missing session".into()))?
            .to_owned();
        self.session = Some(session.clone());
        Ok(session)
    }

    /// Log in using a previously stored proxy (paper §2.6): only the DN and
    /// password are needed.
    pub fn login_proxy(&mut self, dn: &str, password: &str) -> Result<String, ClientError> {
        let result = self.call("proxy.login", vec![Value::from(dn), Value::from(password)])?;
        let session = result
            .get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("login response missing session".into()))?
            .to_owned();
        self.session = Some(session.clone());
        Ok(session)
    }

    /// Destroy the current session.
    pub fn logout(&mut self) -> Result<bool, ClientError> {
        let result = self.call("system.logout", vec![])?;
        self.session = None;
        Ok(result.as_bool().unwrap_or(false))
    }

    /// `system.list_methods` as a string vector.
    pub fn list_methods(&mut self) -> Result<Vec<String>, ClientError> {
        let value = self.call("system.list_methods", vec![])?;
        value
            .as_array()
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_owned))
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("list_methods did not return an array".into()))
    }

    /// `file.read` as raw bytes.
    pub fn file_read(
        &mut self,
        name: &str,
        offset: i64,
        nbytes: i64,
    ) -> Result<Vec<u8>, ClientError> {
        let value = self.call(
            "file.read",
            vec![Value::from(name), Value::Int(offset), Value::Int(nbytes)],
        )?;
        value
            .coerce_bytes()
            .ok_or_else(|| ClientError::Protocol("file.read did not return bytes".into()))
    }

    /// Download a whole file by looping `file.read` (the chunked-pull
    /// pattern of the original clients).
    pub fn file_download(&mut self, name: &str, chunk: i64) -> Result<Vec<u8>, ClientError> {
        let mut out = Vec::new();
        let mut offset = 0i64;
        loop {
            let piece = self.file_read(name, offset, chunk)?;
            let n = piece.len();
            out.extend_from_slice(&piece);
            if (n as i64) < chunk {
                return Ok(out);
            }
            offset += n as i64;
        }
    }

    /// HTTP GET download (the streaming path), returning the body.
    pub fn http_get_file(&mut self, virtual_path: &str) -> Result<Vec<u8>, ClientError> {
        let mut target = format!("/file{}", clarens_wire::percent::encode_path(virtual_path));
        if let Some(session) = &self.session {
            target.push_str(&format!("?session={session}"));
        }
        let mut request = Request::new(Method::Get, target);
        request.headers.set("host", "clarens");
        let response = self
            .http
            .request(&request)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        if response.status != 200 {
            return Err(ClientError::Http(
                response.status,
                String::from_utf8_lossy(&response.body).into_owned(),
            ));
        }
        Ok(response.body)
    }

    /// Fetch a portal page (HTML) for inspection.
    pub fn get_page(&mut self, path: &str) -> Result<(u16, String), ClientError> {
        let mut target = path.to_owned();
        if let Some(session) = &self.session {
            let sep = if target.contains('?') { '&' } else { '?' };
            target.push_str(&format!("{sep}session={session}"));
        }
        let response = self
            .http
            .get(&target)
            .map_err(|e| ClientError::Transport(e.to_string()))?;
        Ok((
            response.status,
            String::from_utf8_lossy(&response.body).into_owned(),
        ))
    }

    /// Drop the underlying connection (next call reconnects).
    pub fn close_connection(&mut self) {
        self.http.close();
    }
}
