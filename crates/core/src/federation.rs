//! Shared leader-failover state (DESIGN.md §14).
//!
//! One [`FederationState`] lives inside each [`crate::ClarensCore`]. It is
//! the single source of truth for the node's current replication role, the
//! leader epoch it believes in, the address of the node it believes holds
//! the lease, and — on an election-managed leader — the lease expiry used
//! for split-brain self-fencing. The dispatcher reads it on every
//! replicated write (fence check + replicated-ack barrier), the election
//! manager in `clarens-federation` writes it, and `system.health` /
//! `GET /healthz` report it.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::config::FederationRole;

/// Sentinel meaning "no managed lease": a statically configured leader
/// (elections disabled) is always writable.
const LEASE_STATIC: u64 = u64::MAX;

/// Mutable, atomically-readable failover state.
pub struct FederationState {
    /// Current role, stored as `FederationRole as u8`.
    role: AtomicU8,
    /// Leader epoch this node currently believes in. 0 until the first
    /// election anywhere in the cluster.
    epoch: AtomicU64,
    /// `host:port` of the believed leader (empty when unknown, e.g. a
    /// standalone node or a follower mid-election).
    leader: Mutex<String>,
    /// Lease expiry for an election-managed leader, as milliseconds since
    /// `origin`. [`LEASE_STATIC`] when this node's leadership is not
    /// lease-managed (standalone, static leader, or any follower).
    lease_until_ms: AtomicU64,
    /// Millisecond timebase for `lease_until_ms`.
    origin: Instant,
    /// Highest replication cursor any follower has confirmed by fetching:
    /// a fetch at offset X proves the follower applied every record below
    /// X. The replicated-ack write barrier waits on this.
    follower_cursor: AtomicU64,
    /// When the last follower fetch arrived (ms since `origin`); the ack
    /// barrier only engages while followers are actually polling.
    follower_seen_ms: AtomicU64,
    /// On a follower: the offset in the *leader's* log this node has
    /// fully applied (maintained by the replicator). This — not the local
    /// `wal_offset`, which counts this node's own re-written log — is the
    /// cursor elections rank candidates by.
    applied: AtomicU64,
}

impl FederationState {
    /// Build from the configured role and leader address.
    pub fn new(role: FederationRole, leader: Option<&str>) -> FederationState {
        FederationState {
            role: AtomicU8::new(role as u8),
            epoch: AtomicU64::new(0),
            leader: Mutex::new(leader.unwrap_or_default().to_owned()),
            lease_until_ms: AtomicU64::new(LEASE_STATIC),
            origin: Instant::now(),
            follower_cursor: AtomicU64::new(0),
            follower_seen_ms: AtomicU64::new(0),
            applied: AtomicU64::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// The node's current role.
    pub fn role(&self) -> FederationRole {
        match self.role.load(Ordering::SeqCst) {
            x if x == FederationRole::Leader as u8 => FederationRole::Leader,
            x if x == FederationRole::Follower as u8 => FederationRole::Follower,
            _ => FederationRole::Standalone,
        }
    }

    /// Change role (promotion / demotion).
    pub fn set_role(&self, role: FederationRole) {
        self.role.store(role as u8, Ordering::SeqCst);
    }

    /// The leader epoch this node believes in.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Adopt a (higher) leader epoch; monotonic.
    pub fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
    }

    /// `host:port` of the believed leader ("" if unknown).
    pub fn leader(&self) -> String {
        self.leader.lock().clone()
    }

    /// Record the believed leader address.
    pub fn set_leader(&self, addr: &str) {
        *self.leader.lock() = addr.to_owned();
    }

    /// Is this node participating in a replicated cluster at all?
    pub fn is_federated(&self) -> bool {
        self.role() != FederationRole::Standalone
    }

    /// Renew this node's leader lease for `lease_ms` from now. Called by
    /// the election manager after each successful lease publication.
    pub fn renew_lease(&self, lease_ms: u64) {
        self.lease_until_ms
            .store(self.now_ms() + lease_ms, Ordering::SeqCst);
    }

    /// Put the lease under election management immediately expired (a
    /// freshly promoted leader calls `renew_lease` right after claiming).
    pub fn manage_lease(&self) {
        self.lease_until_ms.store(self.now_ms(), Ordering::SeqCst);
    }

    /// Drop lease management (back to static/always-writable semantics).
    pub fn unmanage_lease(&self) {
        self.lease_until_ms.store(LEASE_STATIC, Ordering::SeqCst);
    }

    /// Is this node's leadership lease-managed (elections enabled)?
    pub fn lease_managed(&self) -> bool {
        self.lease_until_ms.load(Ordering::SeqCst) != LEASE_STATIC
    }

    /// May this node acknowledge replicated writes right now? True for a
    /// static leader always; for an election-managed leader only while
    /// its lease is unexpired — a partitioned leader that cannot renew
    /// stops acking before a rival can be elected (split-brain fence).
    pub fn is_writable(&self) -> bool {
        if self.role() != FederationRole::Leader {
            return false;
        }
        let until = self.lease_until_ms.load(Ordering::SeqCst);
        until == LEASE_STATIC || self.now_ms() < until
    }

    /// Record a follower replication fetch at `cursor` (the offset it has
    /// fully applied). Feeds the replicated-ack barrier.
    pub fn observe_follower_fetch(&self, cursor: u64) {
        self.follower_cursor.fetch_max(cursor, Ordering::SeqCst);
        // 0 means "never seen" — clamp so a fetch in the process's first
        // millisecond still registers.
        self.follower_seen_ms
            .store(self.now_ms().max(1), Ordering::SeqCst);
    }

    /// Highest offset any follower has confirmed applied.
    pub fn follower_cursor(&self) -> u64 {
        self.follower_cursor.load(Ordering::SeqCst)
    }

    /// Reset the follower high-water mark (on promotion: the new leader's
    /// log is a different byte stream, so old cursors are meaningless).
    pub fn reset_follower_cursor(&self) {
        self.follower_cursor.store(0, Ordering::SeqCst);
        self.follower_seen_ms.store(0, Ordering::SeqCst);
    }

    /// Record the leader-log offset this follower has fully applied.
    pub fn set_applied(&self, cursor: u64) {
        self.applied.store(cursor, Ordering::SeqCst);
    }

    /// The leader-log offset this follower has fully applied (0 on a
    /// node that has never replicated).
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Has any follower fetched within `window`? The ack barrier degrades
    /// to leader-only durability when nobody is replicating (bootstrap,
    /// single-node rump) rather than stalling every write.
    pub fn follower_active_within(&self, window: Duration) -> bool {
        let seen = self.follower_seen_ms.load(Ordering::SeqCst);
        seen != 0 && self.now_ms().saturating_sub(seen) <= window.as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_leader_always_writable() {
        let state = FederationState::new(FederationRole::Leader, None);
        assert!(state.is_writable());
        assert!(!state.lease_managed());
        assert_eq!(state.epoch(), 0);
    }

    #[test]
    fn follower_never_writable() {
        let state = FederationState::new(FederationRole::Follower, Some("127.0.0.1:1"));
        assert!(!state.is_writable());
        assert_eq!(state.leader(), "127.0.0.1:1");
        state.set_role(FederationRole::Leader);
        assert!(state.is_writable());
    }

    #[test]
    fn managed_lease_expires_and_renews() {
        let state = FederationState::new(FederationRole::Leader, None);
        state.manage_lease();
        // Lease starts expired: not writable until the first renewal.
        assert!(!state.is_writable());
        state.renew_lease(10_000);
        assert!(state.is_writable());
        state.manage_lease();
        assert!(!state.is_writable());
        state.unmanage_lease();
        assert!(state.is_writable());
    }

    #[test]
    fn epoch_is_monotonic() {
        let state = FederationState::new(FederationRole::Follower, None);
        state.observe_epoch(5);
        state.observe_epoch(3);
        assert_eq!(state.epoch(), 5);
    }

    #[test]
    fn follower_cursor_tracks_max_and_recency() {
        let state = FederationState::new(FederationRole::Leader, None);
        assert!(!state.follower_active_within(Duration::from_secs(60)));
        state.observe_follower_fetch(100);
        state.observe_follower_fetch(40);
        assert_eq!(state.follower_cursor(), 100);
        assert!(state.follower_active_within(Duration::from_secs(60)));
        state.reset_follower_cursor();
        assert_eq!(state.follower_cursor(), 0);
        assert!(!state.follower_active_within(Duration::from_secs(60)));
    }
}
