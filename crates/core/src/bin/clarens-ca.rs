//! `clarens-ca` — PKI management CLI: create a certificate authority,
//! issue user/server credentials, and delegate proxy credentials, all as
//! PEM-style files a deployment can carry around.
//!
//! ```text
//! clarens-ca init  --dn /O=myorg/CN=MyCA --out ./ca [--days 3650]
//! clarens-ca issue --ca ./ca --dn "/O=myorg/OU=People/CN=Pat" --out pat.cred [--days 365]
//! clarens-ca proxy --cred pat.cred --out pat-proxy.cred [--hours 12]
//! clarens-ca show  --file pat.cred
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

use clarens_pki::cert::{CertificateAuthority, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::{pem, rsa};

fn now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  clarens-ca init  --dn DN --out DIR [--days N]\n  \
         clarens-ca issue --ca DIR --dn DN --out FILE [--days N]\n  \
         clarens-ca proxy --cred FILE --out FILE [--hours N]\n  \
         clarens-ca show  --file FILE"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        };
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag --{name} needs a value");
            usage();
        };
        flags.insert(name.to_owned(), value.clone());
        i += 2;
    }
    flags
}

fn require<'a>(flags: &'a HashMap<String, String>, name: &str) -> &'a str {
    match flags.get(name) {
        Some(v) => v,
        None => {
            eprintln!("missing required flag --{name}");
            usage();
        }
    }
}

fn parse_dn(text: &str) -> DistinguishedName {
    DistinguishedName::parse(text).unwrap_or_else(|e| {
        eprintln!("invalid DN: {e}");
        exit(2);
    })
}

fn write(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        exit(1);
    });
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        exit(1);
    })
}

fn load_ca(dir: &Path) -> CertificateAuthority {
    let credential = pem::decode_credential(&read(&dir.join("ca.cred"))).unwrap_or_else(|e| {
        eprintln!("cannot parse CA credential: {e}");
        exit(1);
    });
    let cert = credential.certificate;
    let kp = rsa::KeyPair {
        public: credential.key.public.clone(),
        private: credential.key,
    };
    // Rebuild the CA around the stored self-signed certificate.
    let mut ca = CertificateAuthority::with_keypair(
        kp,
        cert.subject.clone(),
        cert.not_before,
        (cert.not_after - cert.not_before) / 86_400,
    );
    ca.certificate = cert;
    // Restore the serial counter so serials stay unique across invocations.
    let serial = std::fs::read_to_string(dir.join("ca.serial"))
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(1);
    ca.set_next_serial(serial);
    ca
}

fn save_serial(dir: &Path, ca: &CertificateAuthority) {
    write(&dir.join("ca.serial"), &format!("{}\n", ca.next_serial()));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage()
    };
    let flags = parse_flags(rest);
    match command.as_str() {
        "init" => {
            let dn = parse_dn(require(&flags, "dn"));
            let out = PathBuf::from(require(&flags, "out"));
            let days: i64 = flags
                .get("days")
                .map(|d| d.parse().unwrap_or(3650))
                .unwrap_or(3650);
            let mut rng = rand::rng();
            eprintln!("generating CA key pair...");
            let ca = CertificateAuthority::new(&mut rng, dn, now() - 300, days);
            let credential = Credential {
                certificate: ca.certificate.clone(),
                key: ca.key.clone(),
                chain: vec![],
            };
            write(&out.join("ca.cred"), &pem::encode_credential(&credential));
            write(
                &out.join("ca.cert"),
                &pem::encode_certificate(&ca.certificate),
            );
            println!("CA created: {}", ca.certificate.subject);
            println!(
                "  credential (keep secret): {}",
                out.join("ca.cred").display()
            );
            println!(
                "  trust root (distribute):  {}",
                out.join("ca.cert").display()
            );
        }
        "issue" => {
            let ca_dir = PathBuf::from(require(&flags, "ca"));
            let dn = parse_dn(require(&flags, "dn"));
            let out = PathBuf::from(require(&flags, "out"));
            let days: i64 = flags
                .get("days")
                .map(|d| d.parse().unwrap_or(365))
                .unwrap_or(365);
            let ca = load_ca(&ca_dir);
            let mut rng = rand::rng();
            eprintln!("generating subject key pair...");
            let kp = rsa::generate(&mut rng, rsa::DEFAULT_KEY_BITS);
            let cert = ca.issue(dn, &kp.public, now() - 300, days);
            save_serial(&ca_dir, &ca);
            let credential = Credential {
                certificate: cert,
                key: kp.private,
                chain: vec![],
            };
            write(&out, &pem::encode_credential(&credential));
            println!(
                "issued {} (serial {})",
                credential.certificate.subject, credential.certificate.serial
            );
            println!("  credential: {}", out.display());
        }
        "proxy" => {
            let cred_path = PathBuf::from(require(&flags, "cred"));
            let out = PathBuf::from(require(&flags, "out"));
            let hours: i64 = flags
                .get("hours")
                .map(|h| h.parse().unwrap_or(12))
                .unwrap_or(12);
            let credential = pem::decode_credential(&read(&cred_path)).unwrap_or_else(|e| {
                eprintln!("cannot parse credential: {e}");
                exit(1);
            });
            let mut rng = rand::rng();
            eprintln!("generating proxy key pair...");
            let proxy = credential.delegate_proxy(&mut rng, now() - 60, hours * 3600);
            write(&out, &pem::encode_credential(&proxy));
            println!(
                "proxy for {} valid {}h: {}",
                proxy.identity(),
                hours,
                out.display()
            );
        }
        "show" => {
            let path = PathBuf::from(require(&flags, "file"));
            let text = read(&path);
            match pem::decode_credential(&text) {
                Ok(credential) => {
                    let cert = &credential.certificate;
                    println!("credential: {}", cert.subject);
                    println!("  issuer:   {}", cert.issuer);
                    println!("  serial:   {}", cert.serial);
                    println!("  kind:     {:?}", cert.kind);
                    println!("  validity: {} .. {}", cert.not_before, cert.not_after);
                    println!("  chain:    {} link(s)", credential.chain.len());
                    println!("  identity: {}", credential.identity());
                }
                Err(_) => match pem::decode_certificates(&text) {
                    Ok(certs) => {
                        for cert in certs {
                            println!(
                                "certificate: {} (issuer {}, serial {}, kind {:?})",
                                cert.subject, cert.issuer, cert.serial, cert.kind
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("not a credential or certificate bundle: {e}");
                        exit(1);
                    }
                },
            }
        }
        _ => usage(),
    }
}
