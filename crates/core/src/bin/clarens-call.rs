//! `clarens-call` — command-line Clarens client: authenticate with a
//! credential file (or reuse a session id) and invoke any method, with
//! parameters given as JSON.
//!
//! ```text
//! clarens-call --server 127.0.0.1:8080 --cred pat.cred system.list_methods
//! clarens-call --server 127.0.0.1:8080 --cred pat.cred echo.sum 40 2
//! clarens-call --server 127.0.0.1:8080 --session <id> file.read '"/data/f"' 0 1024
//! clarens-call --server 127.0.0.1:8080 --cred pat.cred --roots ca.cert --tls system.whoami
//! ```
//!
//! Each parameter is parsed as JSON (so strings need quotes); bare words
//! that fail JSON parsing are treated as strings for convenience. The
//! result is printed as pretty JSON. On login, the session id is printed
//! to stderr so follow-up calls can reuse it with `--session`.

use std::collections::HashMap;
use std::process::exit;

use clarens::ClarensClient;
use clarens_pki::pem;
use clarens_wire::{json, Protocol, Value};

fn usage() -> ! {
    eprintln!(
        "usage: clarens-call --server ADDR (--cred FILE | --session ID) \
         [--roots FILE --tls] [--protocol xmlrpc|soap|jsonrpc] METHOD [JSON-ARGS...]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let mut tls = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].strip_prefix("--") {
            Some("tls") => {
                tls = true;
                i += 1;
            }
            Some(name) => {
                let Some(value) = args.get(i + 1) else {
                    usage()
                };
                flags.insert(name.to_owned(), value.clone());
                i += 2;
            }
            None => {
                positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    let Some(server) = flags.get("server") else {
        usage()
    };
    let Some((method, raw_params)) = positional.split_first() else {
        usage()
    };

    let protocol = match flags.get("protocol").map(String::as_str) {
        None | Some("xmlrpc") => Protocol::XmlRpc,
        Some("soap") => Protocol::Soap,
        Some("jsonrpc") => Protocol::JsonRpc,
        Some(other) => {
            eprintln!("unknown protocol {other:?}");
            usage();
        }
    };

    let params: Vec<Value> = raw_params
        .iter()
        .map(|raw| json::parse(raw).unwrap_or_else(|_| Value::Str(raw.clone())))
        .collect();

    let credential = flags.get("cred").map(|path| {
        pem::decode_credential(&std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        }))
        .unwrap_or_else(|e| {
            eprintln!("bad credential: {e}");
            exit(1);
        })
    });

    let mut client = if tls {
        let Some(roots_path) = flags.get("roots") else {
            eprintln!("--tls requires --roots");
            usage();
        };
        let roots =
            pem::decode_certificates(&std::fs::read_to_string(roots_path).unwrap_or_else(|e| {
                eprintln!("cannot read {roots_path}: {e}");
                exit(1);
            }))
            .unwrap_or_else(|e| {
                eprintln!("bad roots: {e}");
                exit(1);
            });
        let Some(credential) = credential.clone() else {
            eprintln!("--tls requires --cred");
            usage();
        };
        ClarensClient::new_tls(server.clone(), credential, roots).with_protocol(protocol)
    } else {
        let mut c = ClarensClient::new(server.clone()).with_protocol(protocol);
        if let Some(credential) = credential.clone() {
            c = c.with_credential(credential);
        }
        c
    };

    if let Some(session) = flags.get("session") {
        client.set_session(session.clone());
    } else if !tls && credential.is_some() {
        match client.login() {
            Ok(session) => eprintln!("session: {session}"),
            Err(e) => {
                eprintln!("login failed: {e}");
                exit(1);
            }
        }
    }

    match client.call(method, params) {
        Ok(result) => println!("{}", json::to_string_pretty(&result)),
        Err(e) => {
            eprintln!("call failed: {e}");
            exit(1);
        }
    }
}
