//! `clarens-server` — run a Clarens server from configuration files.
//!
//! ```text
//! clarens-server --cred server.cred --roots ca.cert \
//!                [--config clarens.conf] [--listen 0.0.0.0:8080] [--tls] \
//!                [--permissive-acls]
//! ```
//!
//! The config file uses the `key: value` format of
//! [`clarens::ClarensConfig::parse`] (admin DNs, file/shell roots, session
//! TTL, DB path...). Without `--permissive-acls` the server starts locked
//! down: only `system.auth`/`system.ping`/`system.version`/`proxy.login`
//! answer until an admin installs ACLs via the `acl` service.

use std::collections::HashMap;
use std::process::exit;

use clarens::{register_builtin_services, ClarensConfig, ClarensCore, ClarensServer};
use clarens_httpd::TlsConfig;
use clarens_pki::pem;
use clarens_telemetry::{error, info, warn};

fn usage() -> ! {
    eprintln!(
        "usage: clarens-server --cred FILE --roots FILE [--config FILE] \
         [--listen ADDR] [--tls] [--permissive-acls]"
    );
    exit(2);
}

fn main() {
    // Daemon default: lifecycle and error records visible unless
    // CLARENS_LOG says otherwise.
    clarens_telemetry::log::init_from_env_or(clarens_telemetry::log::Level::Info);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut switches: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            usage()
        };
        match name {
            "tls" | "permissive-acls" => {
                switches.push(name.to_owned());
                i += 1;
            }
            _ => {
                let Some(value) = args.get(i + 1) else {
                    usage()
                };
                flags.insert(name.to_owned(), value.clone());
                i += 2;
            }
        }
    }
    let Some(cred_path) = flags.get("cred") else {
        usage()
    };
    let Some(roots_path) = flags.get("roots") else {
        usage()
    };
    let listen = flags
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080");

    let credential =
        pem::decode_credential(&std::fs::read_to_string(cred_path).unwrap_or_else(|e| {
            error!("cannot read {cred_path}: {e}");
            exit(1);
        }))
        .unwrap_or_else(|e| {
            error!("bad server credential: {e}");
            exit(1);
        });
    let roots =
        pem::decode_certificates(&std::fs::read_to_string(roots_path).unwrap_or_else(|e| {
            error!("cannot read {roots_path}: {e}");
            exit(1);
        }))
        .unwrap_or_else(|e| {
            error!("bad trust roots: {e}");
            exit(1);
        });

    let config = match flags.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                error!("cannot read {path}: {e}");
                exit(1);
            });
            ClarensConfig::parse(&text).unwrap_or_else(|e| {
                error!("bad config: {e}");
                exit(1);
            })
        }
        None => ClarensConfig::default(),
    };

    let core = ClarensCore::new(config, roots.clone(), credential.clone()).unwrap_or_else(|e| {
        error!("cannot open store: {e}");
        exit(1);
    });
    register_builtin_services(&core, None);
    if switches.iter().any(|s| s == "permissive-acls") {
        clarens::install_permissive_acls(&core);
        warn!("permissive ACLs installed (every authenticated DN may call everything)");
    }

    let tls = switches.iter().any(|s| s == "tls").then(|| TlsConfig {
        credential: credential.clone(),
        roots,
    });
    let secure = tls.is_some();
    let server = ClarensServer::start(core, listen, tls).unwrap_or_else(|e| {
        error!("cannot bind {listen}: {e}");
        exit(1);
    });
    info!(
        "{} listening on {}{} ({} methods registered)",
        credential.certificate.subject,
        server.local_addr(),
        if secure { " (secure channel)" } else { "" },
        server.core.store.len(clarens::registry::METHODS_BUCKET),
    );
    println!("press Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}
