//! Server configuration.
//!
//! Mirrors what PClarens read from its Apache-side configuration file: the
//! static list of `admins` DNs (paper §2.1: the admins group "is populated
//! statically from values provided in the server configuration file on each
//! server restart"), the virtual server roots for the file service (§2.3:
//! "a virtual server root directory can be defined ... via the server
//! configuration file"), shell-service sandbox settings (§2.5), and session
//! parameters.

use std::path::PathBuf;

/// Role a server plays in a multi-node federation (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FederationRole {
    /// Not federated: no replication in either direction (default).
    Standalone,
    /// Serves its WAL to followers via `replication.fetch`.
    Leader,
    /// Ships the leader's WAL into its own store continuously.
    Follower,
}

impl std::str::FromStr for FederationRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "standalone" => Ok(FederationRole::Standalone),
            "leader" => Ok(FederationRole::Leader),
            "follower" => Ok(FederationRole::Follower),
            other => Err(format!(
                "bad federation_role {other:?} (standalone|leader|follower)"
            )),
        }
    }
}

/// Configuration for a Clarens server instance.
#[derive(Clone)]
pub struct ClarensConfig {
    /// Canonical base URL used in discovery publications.
    pub server_url: String,
    /// DNs statically populating the `admins` group on startup.
    pub admin_dns: Vec<String>,
    /// Virtual root for the file service and HTTP GET downloads.
    pub file_root: Option<PathBuf>,
    /// Root directory under which per-user shell sandboxes are created.
    pub shell_root: Option<PathBuf>,
    /// Contents of the `.clarens_user_map` file mapping DNs/groups to
    /// local system users (paper §2.5).
    pub shell_user_map: String,
    /// Session lifetime in seconds (sessions persist in the DB and survive
    /// restarts; they still expire).
    pub session_ttl: i64,
    /// Maximum clock skew tolerated in `system.auth` challenge timestamps.
    pub auth_skew: i64,
    /// Number of HTTP worker threads.
    pub workers: usize,
    /// Path for the persistent store; `None` = in-memory.
    pub db_path: Option<PathBuf>,
    /// Storage engine backing the persistent store (DESIGN.md §12):
    /// `wal` (default) is the group-commit write-ahead log, the only
    /// backend that can serve replication followers; `mmap` is the
    /// checkpointing snapshot engine for follower/read-mostly nodes.
    pub storage_backend: clarens_db::StorageBackend,
    /// Make every store write durable (fsync) before acknowledging it.
    /// Off by default: the store then persists at sync/checkpoint
    /// granularity and on clean shutdown, like the paper's server.
    pub db_sync: bool,
    /// With `db_sync`, batch concurrent durable writes behind one fsync
    /// (group commit). Disable to fall back to one fsync per write for
    /// A/B measurement.
    pub group_commit: bool,
    /// Background-compact the store once the fraction of dead bytes in
    /// the log exceeds this ratio (0 disables the compaction janitor).
    pub compact_ratio: f64,
    /// Enable the epoch-invalidated authorization caches (sessions, VO
    /// groups, compiled ACLs, decisions). On by default; disable only to
    /// measure the uncached request path.
    pub auth_cache: bool,
    /// Enable request span timing (phase/method latency histograms, slow
    /// traces). Counters stay live even when this is off; the knob only
    /// gates the per-request clock reads.
    pub telemetry: bool,
    /// Requests slower than this many microseconds are captured in the
    /// slow-trace ring served by `system.trace_tail`.
    pub slow_trace_us: u64,
    /// Encode RPC responses with the allocation-lean streaming serializers
    /// (straight into a recycled per-worker buffer). On by default; disable
    /// to fall back to the DOM reference encoders for A/B measurement.
    pub streaming_encode: bool,
    /// Accept the negotiated `clarens-binary` protocol
    /// (`application/x-clarens-cbor` length-prefixed CBOR frames). On by
    /// default; when disabled the server answers 415 and clients fall back
    /// to XML-RPC (DESIGN.md §13).
    pub binary_protocol: bool,
    /// Recycle per-worker HTTP buffers across keep-alive requests. On by
    /// default; disable to measure the allocate-per-request baseline.
    pub buffer_pool: bool,
    /// Cap on simultaneously live HTTP connections; connections beyond it
    /// are shed with `503` + `Connection: close` instead of queueing
    /// without bound.
    pub max_connections: usize,
    /// Park idle keep-alive connections in the readiness poller instead of
    /// pinning a worker thread per connection. On by default; disable to
    /// select the classic thread-per-connection path for A/B measurement.
    pub park_idle: bool,
    /// Hand plaintext file-body writes to `sendfile(2)` where the platform
    /// supports it (Linux), skipping the userspace copy. Disable to force
    /// the portable fixed-buffer loop for A/B measurement; TLS connections
    /// always use the buffered path.
    pub zero_copy: bool,
    /// Per-request deadline in milliseconds: the budget covers reading the
    /// request, dispatching the handler, and starting the response. On
    /// expiry the caller gets a `DEADLINE` (504-style) RPC fault instead
    /// of an indefinite wait. `0` disables deadlines.
    pub request_deadline_ms: u64,
    /// Retry attempts the bundled client makes for idempotent calls that
    /// fail with transport errors (jittered exponential backoff between
    /// attempts). `0` disables retries.
    pub client_retries: u32,
    /// Discovery descriptors older than this many seconds are evicted as
    /// stale (the publisher re-announces every heartbeat, so the default
    /// tolerates ~3 missed heartbeats). `0` disables eviction.
    pub discovery_ttl_s: u64,
    /// This server's federation role (DESIGN.md §11). Standalone by
    /// default; `leader` serves its WAL to followers, `follower` ships the
    /// leader's WAL into its own store.
    pub federation_role: FederationRole,
    /// Address (`host:port`) of the leader a follower replicates from.
    /// Required when `federation_role` is `follower`, ignored otherwise.
    pub federation_leader: Option<String>,
    /// How often a follower polls the leader for new WAL records, in
    /// milliseconds. Bounds replication lag on a quiet log.
    pub replication_poll_ms: u64,
    /// Maximum `proxy.call` forwarding depth. Each hop increments the
    /// `x-clarens-hops` header; a request arriving at the limit is refused
    /// instead of looping between misconfigured nodes.
    pub proxy_max_hops: u32,
    /// Leader-lease duration in milliseconds (DESIGN.md §14). A leader
    /// re-publishes its lease on every election tick and self-fences
    /// writes once it has failed to renew for this long; followers start
    /// an election once the last observed renewal is older than this.
    /// `0` disables elections (statically configured leadership, the
    /// pre-failover behaviour).
    pub leader_lease_ms: u64,
    /// Upper bound of the random delay a candidate waits before claiming
    /// leadership, so near-simultaneous candidates don't stampede. The
    /// actual delay is seeded per node.
    pub election_jitter_ms: u64,
}

impl Default for ClarensConfig {
    fn default() -> Self {
        ClarensConfig {
            server_url: "http://localhost:8080/clarens".into(),
            admin_dns: Vec::new(),
            file_root: None,
            shell_root: None,
            shell_user_map: String::new(),
            session_ttl: 24 * 3600,
            auth_skew: 300,
            workers: 16,
            db_path: None,
            storage_backend: clarens_db::StorageBackend::Wal,
            db_sync: false,
            group_commit: true,
            compact_ratio: 0.5,
            auth_cache: true,
            telemetry: true,
            slow_trace_us: 10_000,
            streaming_encode: true,
            binary_protocol: true,
            buffer_pool: true,
            max_connections: 4096,
            park_idle: true,
            zero_copy: true,
            request_deadline_ms: 5_000,
            client_retries: 2,
            discovery_ttl_s: 90,
            federation_role: FederationRole::Standalone,
            federation_leader: None,
            replication_poll_ms: 50,
            proxy_max_hops: 2,
            leader_lease_ms: 0,
            election_jitter_ms: 100,
        }
    }
}

impl ClarensConfig {
    /// Parse the simple `key: value` config-file format (one setting per
    /// line, `#` comments; repeatable keys accumulate). This stands in for
    /// the Apache/mod_python configuration the paper's server used.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = ClarensConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected 'key: value'", lineno + 1))?;
            let value = value.trim();
            match key.trim() {
                "server_url" => config.server_url = value.to_owned(),
                "admin" => config.admin_dns.push(value.to_owned()),
                "file_root" => config.file_root = Some(PathBuf::from(value)),
                "shell_root" => config.shell_root = Some(PathBuf::from(value)),
                "shell_user_map" => {
                    config.shell_user_map.push_str(value);
                    config.shell_user_map.push('\n');
                }
                "session_ttl" => {
                    config.session_ttl = value
                        .parse()
                        .map_err(|_| format!("line {}: bad session_ttl", lineno + 1))?
                }
                "auth_skew" => {
                    config.auth_skew = value
                        .parse()
                        .map_err(|_| format!("line {}: bad auth_skew", lineno + 1))?
                }
                "workers" => {
                    config.workers = value
                        .parse()
                        .map_err(|_| format!("line {}: bad workers", lineno + 1))?
                }
                "db_path" => config.db_path = Some(PathBuf::from(value)),
                "storage_backend" => {
                    config.storage_backend = value
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?
                }
                "db_sync" => {
                    config.db_sync = value
                        .parse()
                        .map_err(|_| format!("line {}: bad db_sync", lineno + 1))?
                }
                "group_commit" => {
                    config.group_commit = value
                        .parse()
                        .map_err(|_| format!("line {}: bad group_commit", lineno + 1))?
                }
                "compact_ratio" => {
                    let ratio: f64 = value
                        .parse()
                        .map_err(|_| format!("line {}: bad compact_ratio", lineno + 1))?;
                    if !(0.0..=1.0).contains(&ratio) {
                        return Err(format!(
                            "line {}: compact_ratio must be within 0..=1",
                            lineno + 1
                        ));
                    }
                    config.compact_ratio = ratio;
                }
                "auth_cache" => {
                    config.auth_cache = value
                        .parse()
                        .map_err(|_| format!("line {}: bad auth_cache", lineno + 1))?
                }
                "telemetry" => {
                    config.telemetry = value
                        .parse()
                        .map_err(|_| format!("line {}: bad telemetry", lineno + 1))?
                }
                "slow_trace_us" => {
                    config.slow_trace_us = value
                        .parse()
                        .map_err(|_| format!("line {}: bad slow_trace_us", lineno + 1))?
                }
                "streaming_encode" => {
                    config.streaming_encode = value
                        .parse()
                        .map_err(|_| format!("line {}: bad streaming_encode", lineno + 1))?
                }
                "binary_protocol" => {
                    config.binary_protocol = value
                        .parse()
                        .map_err(|_| format!("line {}: bad binary_protocol", lineno + 1))?
                }
                "buffer_pool" => {
                    config.buffer_pool = value
                        .parse()
                        .map_err(|_| format!("line {}: bad buffer_pool", lineno + 1))?
                }
                "max_connections" => {
                    config.max_connections = value
                        .parse()
                        .map_err(|_| format!("line {}: bad max_connections", lineno + 1))?
                }
                "park_idle" => {
                    config.park_idle = value
                        .parse()
                        .map_err(|_| format!("line {}: bad park_idle", lineno + 1))?
                }
                "zero_copy" => {
                    config.zero_copy = value
                        .parse()
                        .map_err(|_| format!("line {}: bad zero_copy", lineno + 1))?
                }
                "request_deadline_ms" => {
                    config.request_deadline_ms = value
                        .parse()
                        .map_err(|_| format!("line {}: bad request_deadline_ms", lineno + 1))?
                }
                "client_retries" => {
                    config.client_retries = value
                        .parse()
                        .map_err(|_| format!("line {}: bad client_retries", lineno + 1))?
                }
                "discovery_ttl_s" => {
                    config.discovery_ttl_s = value
                        .parse()
                        .map_err(|_| format!("line {}: bad discovery_ttl_s", lineno + 1))?
                }
                "federation_role" => {
                    config.federation_role = value
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?
                }
                "federation_leader" => config.federation_leader = Some(value.to_owned()),
                "replication_poll_ms" => {
                    config.replication_poll_ms = value
                        .parse()
                        .map_err(|_| format!("line {}: bad replication_poll_ms", lineno + 1))?
                }
                "proxy_max_hops" => {
                    config.proxy_max_hops = value
                        .parse()
                        .map_err(|_| format!("line {}: bad proxy_max_hops", lineno + 1))?
                }
                "leader_lease_ms" => {
                    config.leader_lease_ms = value
                        .parse()
                        .map_err(|_| format!("line {}: bad leader_lease_ms", lineno + 1))?
                }
                "election_jitter_ms" => {
                    config.election_jitter_ms = value
                        .parse()
                        .map_err(|_| format!("line {}: bad election_jitter_ms", lineno + 1))?
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_config() {
        let text = r#"
# Clarens server configuration
server_url: http://tier2.example.edu:8080/clarens
admin: /O=doesciencegrid.org/OU=People/CN=Conrad Steenberg
admin: /O=doesciencegrid.org/OU=People/CN=Frank van Lingen
file_root: /data/clarens
shell_root: /var/clarens/shell
shell_user_map: joe: dn=/DC=org/DC=doegrids/OU=People/CN=Joe User
session_ttl: 7200
auth_skew: 60
workers: 32
db_path: /var/clarens/clarens.db
"#;
        let config = ClarensConfig::parse(text).unwrap();
        assert_eq!(config.server_url, "http://tier2.example.edu:8080/clarens");
        assert_eq!(config.admin_dns.len(), 2);
        assert_eq!(
            config.file_root.as_deref(),
            Some(std::path::Path::new("/data/clarens"))
        );
        assert_eq!(config.session_ttl, 7200);
        assert_eq!(config.auth_skew, 60);
        assert_eq!(config.workers, 32);
        assert!(config.shell_user_map.contains("Joe User"));
    }

    #[test]
    fn defaults() {
        let config = ClarensConfig::parse("").unwrap();
        assert_eq!(config.session_ttl, 24 * 3600);
        assert!(config.admin_dns.is_empty());
        assert!(config.file_root.is_none());
        assert!(config.auth_cache);
    }

    #[test]
    fn auth_cache_knob() {
        let config = ClarensConfig::parse("auth_cache: false").unwrap();
        assert!(!config.auth_cache);
        let config = ClarensConfig::parse("auth_cache: true").unwrap();
        assert!(config.auth_cache);
    }

    #[test]
    fn telemetry_knobs() {
        let config = ClarensConfig::parse("").unwrap();
        assert!(config.telemetry);
        assert_eq!(config.slow_trace_us, 10_000);
        let config = ClarensConfig::parse("telemetry: false\nslow_trace_us: 2500").unwrap();
        assert!(!config.telemetry);
        assert_eq!(config.slow_trace_us, 2500);
        assert!(ClarensConfig::parse("slow_trace_us: slow").is_err());
    }

    #[test]
    fn binary_protocol_knob() {
        let config = ClarensConfig::default();
        assert!(config.binary_protocol);
        let config = ClarensConfig::parse("binary_protocol: false").unwrap();
        assert!(!config.binary_protocol);
        assert!(ClarensConfig::parse("binary_protocol: maybe").is_err());
    }

    #[test]
    fn streaming_encode_knob() {
        let config = ClarensConfig::parse("").unwrap();
        assert!(config.streaming_encode);
        let config = ClarensConfig::parse("streaming_encode: false").unwrap();
        assert!(!config.streaming_encode);
        assert!(config.buffer_pool);
        assert!(ClarensConfig::parse("streaming_encode: sometimes").is_err());
        let config = ClarensConfig::parse("buffer_pool: false").unwrap();
        assert!(!config.buffer_pool);
    }

    #[test]
    fn concurrency_knobs() {
        let config = ClarensConfig::parse("").unwrap();
        assert_eq!(config.max_connections, 4096);
        assert!(config.park_idle);
        assert!(config.zero_copy);
        let config =
            ClarensConfig::parse("max_connections: 128\npark_idle: false\nzero_copy: false")
                .unwrap();
        assert_eq!(config.max_connections, 128);
        assert!(!config.park_idle);
        assert!(!config.zero_copy);
        assert!(ClarensConfig::parse("max_connections: lots").is_err());
        assert!(ClarensConfig::parse("park_idle: maybe").is_err());
        assert!(ClarensConfig::parse("zero_copy: maybe").is_err());
    }

    #[test]
    fn resilience_knobs() {
        let config = ClarensConfig::parse("").unwrap();
        assert_eq!(config.request_deadline_ms, 5_000);
        assert_eq!(config.client_retries, 2);
        assert_eq!(config.discovery_ttl_s, 90);
        let config = ClarensConfig::parse(
            "request_deadline_ms: 250\nclient_retries: 5\ndiscovery_ttl_s: 30",
        )
        .unwrap();
        assert_eq!(config.request_deadline_ms, 250);
        assert_eq!(config.client_retries, 5);
        assert_eq!(config.discovery_ttl_s, 30);
        assert!(ClarensConfig::parse("request_deadline_ms: forever").is_err());
        assert!(ClarensConfig::parse("client_retries: no").is_err());
        assert!(ClarensConfig::parse("discovery_ttl_s: never").is_err());
    }

    #[test]
    fn federation_knobs() {
        let config = ClarensConfig::parse("").unwrap();
        assert_eq!(config.federation_role, FederationRole::Standalone);
        assert!(config.federation_leader.is_none());
        assert_eq!(config.replication_poll_ms, 50);
        assert_eq!(config.proxy_max_hops, 2);
        let config = ClarensConfig::parse(
            "federation_role: follower\nfederation_leader: leader.example.edu:8080\n\
             replication_poll_ms: 25\nproxy_max_hops: 4",
        )
        .unwrap();
        assert_eq!(config.federation_role, FederationRole::Follower);
        assert_eq!(
            config.federation_leader.as_deref(),
            Some("leader.example.edu:8080")
        );
        assert_eq!(config.replication_poll_ms, 25);
        assert_eq!(config.proxy_max_hops, 4);
        assert_eq!(
            ClarensConfig::parse("federation_role: leader")
                .unwrap()
                .federation_role,
            FederationRole::Leader
        );
        assert!(ClarensConfig::parse("federation_role: primary").is_err());
        assert!(ClarensConfig::parse("replication_poll_ms: often").is_err());
        assert!(ClarensConfig::parse("proxy_max_hops: none").is_err());
    }

    #[test]
    fn election_knobs() {
        let config = ClarensConfig::parse("").unwrap();
        assert_eq!(config.leader_lease_ms, 0); // elections off by default
        assert_eq!(config.election_jitter_ms, 100);
        let config = ClarensConfig::parse("leader_lease_ms: 750\nelection_jitter_ms: 40").unwrap();
        assert_eq!(config.leader_lease_ms, 750);
        assert_eq!(config.election_jitter_ms, 40);
        assert!(ClarensConfig::parse("leader_lease_ms: forever").is_err());
        assert!(ClarensConfig::parse("election_jitter_ms: some").is_err());
    }

    #[test]
    fn storage_knobs() {
        let config = ClarensConfig::parse("").unwrap();
        assert_eq!(config.storage_backend, clarens_db::StorageBackend::Wal);
        assert!(!config.db_sync);
        assert!(config.group_commit);
        assert_eq!(config.compact_ratio, 0.5);
        let config = ClarensConfig::parse(
            "storage_backend: mmap\ndb_sync: true\ngroup_commit: false\ncompact_ratio: 0.8",
        )
        .unwrap();
        assert_eq!(config.storage_backend, clarens_db::StorageBackend::Mmap);
        assert!(config.db_sync);
        assert!(!config.group_commit);
        assert_eq!(config.compact_ratio, 0.8);
        assert_eq!(
            ClarensConfig::parse("compact_ratio: 0")
                .unwrap()
                .compact_ratio,
            0.0
        );
        assert!(ClarensConfig::parse("storage_backend: rocksdb").is_err());
        assert!(ClarensConfig::parse("db_sync: maybe").is_err());
        assert!(ClarensConfig::parse("group_commit: maybe").is_err());
        assert!(ClarensConfig::parse("compact_ratio: 1.5").is_err());
        assert!(ClarensConfig::parse("compact_ratio: heavy").is_err());
    }

    #[test]
    fn errors() {
        assert!(ClarensConfig::parse("not a setting").is_err());
        assert!(ClarensConfig::parse("unknown_key: x").is_err());
        assert!(ClarensConfig::parse("session_ttl: soon").is_err());
        assert!(ClarensConfig::parse("auth_cache: maybe").is_err());
    }
}
