//! Virtual-path handling shared by the file service, the HTTP GET file
//! handler, and the shell sandbox.
//!
//! All client-supplied paths are *virtual*: rooted at a configured
//! directory ("a virtual server root directory can be defined ... which
//! may be any directory on the server system", paper §2.3). Normalization
//! rejects every escape vector (`..`, empty roots, NUL) before the path
//! ever touches the real filesystem.

use std::path::{Path, PathBuf};

/// Normalize a virtual path into clean segments. Returns `None` if the
/// path attempts to escape (contains `..`) or carries NUL bytes.
pub fn normalize(virtual_path: &str) -> Option<Vec<String>> {
    if virtual_path.contains('\0') {
        return None;
    }
    let mut segments = Vec::new();
    for part in virtual_path.split('/') {
        match part {
            "" | "." => continue,
            ".." => return None, // no upward traversal, ever
            seg => segments.push(seg.to_owned()),
        }
    }
    Some(segments)
}

/// The canonical string form of a virtual path (always begins with `/`,
/// no duplicate separators). Used as the ACL lookup key.
pub fn canonical(virtual_path: &str) -> Option<String> {
    let segments = normalize(virtual_path)?;
    if segments.is_empty() {
        Some("/".to_owned())
    } else {
        Some(format!("/{}", segments.join("/")))
    }
}

/// Resolve a virtual path under `root`. The result is guaranteed to be
/// inside `root`.
pub fn resolve(root: &Path, virtual_path: &str) -> Option<PathBuf> {
    let segments = normalize(virtual_path)?;
    let mut path = root.to_path_buf();
    for seg in segments {
        path.push(seg);
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(normalize("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(normalize("a//b/./c/").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(normalize("/").unwrap(), Vec::<String>::new());
        assert_eq!(normalize("").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn escapes_rejected() {
        assert!(normalize("../etc/passwd").is_none());
        assert!(normalize("/a/../../b").is_none());
        assert!(normalize("/a/..").is_none());
        assert!(normalize("a/b\0c").is_none());
    }

    #[test]
    fn canonical_forms() {
        assert_eq!(canonical("/a//b/").unwrap(), "/a/b");
        assert_eq!(canonical("a/b").unwrap(), "/a/b");
        assert_eq!(canonical("/").unwrap(), "/");
        assert_eq!(canonical("").unwrap(), "/");
        assert!(canonical("/a/../b").is_none());
    }

    #[test]
    fn resolution_stays_inside_root() {
        let root = Path::new("/srv/clarens");
        assert_eq!(
            resolve(root, "/data/f.root").unwrap(),
            PathBuf::from("/srv/clarens/data/f.root")
        );
        assert_eq!(resolve(root, "/").unwrap(), PathBuf::from("/srv/clarens"));
        assert!(resolve(root, "/../../etc").is_none());
    }
}
