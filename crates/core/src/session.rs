//! Persistent server-side sessions.
//!
//! "Since the HTTP protocol does not require persistent connections, it is
//! important that session information is stored persistently on the server
//! side. This has the positive side-effect of allowing clients to survive
//! server failures or restarts transparently without having to
//! re-authenticate themselves" (paper §2). Sessions live in the
//! [`clarens_db::Store`] (bucket `sessions`), keyed by a random 256-bit id,
//! and carry the authenticated identity plus expiry.
//!
//! The store stays the source of truth — a freshly constructed manager
//! starts with an empty cache and reloads sessions from the DB, which is
//! exactly the restart-survival property above. On top of that sits a
//! write-through cache of [`ResolvedSession`] records (the session plus
//! its DN parsed once), tagged with the `sessions` bucket generation:
//! any write to the bucket (create, logout, proxy attach, sweep, expiry
//! delete) makes every cached entry stale, so a revoked session can never
//! be served from cache — at worst a concurrent write causes a spurious
//! reload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::RngExt;

use clarens_db::Store;
use clarens_pki::dn::DistinguishedName;
use clarens_pki::sha256;
use clarens_wire::{json, Value};

use crate::cache::{CacheStats, Sharded};

/// DB bucket for sessions.
pub const SESSIONS_BUCKET: &str = "sessions";

/// An authenticated session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The session id (hex, 64 chars).
    pub id: String,
    /// Authenticated identity (end-entity DN).
    pub dn: String,
    /// Creation time (Unix seconds).
    pub created: i64,
    /// Expiry time (Unix seconds).
    pub expires: i64,
    /// Serialized proxy credential attached to the session, if any
    /// (paper §2.6: a stored proxy can be "attached" to an existing
    /// session).
    pub proxy: Option<String>,
}

impl Session {
    fn to_value(&self) -> Value {
        Value::structure([
            ("dn", Value::from(self.dn.clone())),
            ("created", Value::Int(self.created)),
            ("expires", Value::Int(self.expires)),
            (
                "proxy",
                self.proxy.clone().map(Value::from).unwrap_or(Value::Nil),
            ),
        ])
    }

    fn from_value(id: &str, value: &Value) -> Option<Session> {
        Some(Session {
            id: id.to_owned(),
            dn: value.get("dn")?.as_str()?.to_owned(),
            created: value.get("created")?.as_int()?,
            expires: value.get("expires")?.as_int()?,
            proxy: value
                .get("proxy")
                .and_then(|p| p.as_str())
                .map(str::to_owned),
        })
    }
}

/// A session together with its identity parsed once — what the request
/// path actually needs per call. Both fields are shared pointers so a
/// cache hit hands them out without copying any strings; `Clone` is two
/// reference-count bumps.
#[derive(Debug, Clone)]
pub struct ResolvedSession {
    /// The validated session record.
    pub session: Arc<Session>,
    /// The session DN, parsed; `None` if the stored DN is malformed.
    pub identity: Option<Arc<DistinguishedName>>,
}

/// The session manager.
pub struct SessionManager {
    store: Arc<Store>,
    ttl: i64,
    caching: bool,
    /// Generation handle of [`SESSIONS_BUCKET`].
    generation: Arc<AtomicU64>,
    /// Write-through cache of resolved sessions, tagged with the bucket
    /// generation so any session write invalidates every entry.
    cache: Sharded<String, ResolvedSession>,
}

impl SessionManager {
    /// Create a manager over the shared store.
    pub fn new(store: Arc<Store>, ttl: i64) -> Self {
        SessionManager::with_caching(store, ttl, true)
    }

    /// Like [`SessionManager::new`], but with the resolved-session cache
    /// explicitly enabled or disabled (benchmarks compare the two).
    pub fn with_caching(store: Arc<Store>, ttl: i64, caching: bool) -> Self {
        let generation = store.generation_handle(SESSIONS_BUCKET);
        SessionManager {
            store,
            ttl,
            caching,
            generation,
            cache: Sharded::new(),
        }
    }

    /// Hit/miss counters of the resolved-session cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Create a new session for `dn`, returning it.
    pub fn create(&self, dn: &DistinguishedName, now: i64) -> Session {
        let mut rng = rand::rng();
        let raw: [u8; 32] = rng.random();
        let id = sha256::to_hex(&sha256::sha256(&raw));
        let session = Session {
            id: id.clone(),
            dn: dn.to_string(),
            created: now,
            expires: now + self.ttl,
            proxy: None,
        };
        self.persist(&session);
        if self.caching {
            // Write through with the post-persist generation: the entry is
            // immediately servable and any later bucket write supersedes it.
            let entry = ResolvedSession {
                identity: Some(Arc::new(dn.clone())),
                session: Arc::new(session.clone()),
            };
            self.cache
                .insert(id, self.generation.load(Ordering::SeqCst), entry);
        }
        session
    }

    fn persist(&self, session: &Session) {
        let result =
            clarens_faults::check_io(clarens_faults::sites::SESSION_PERSIST).and_then(|()| {
                self.store.put(
                    SESSIONS_BUCKET,
                    &session.id,
                    json::to_string(&session.to_value()).into_bytes(),
                )
            });
        if let Err(e) = result {
            // The session stays valid in memory (the write-through cache
            // below serves it); it just won't survive a restart. Degrade
            // loudly instead of silently: the paper sells restart-surviving
            // sessions, so a lost persist is worth an operator's attention.
            clarens_telemetry::warn!("session {} not persisted: {e}", session.id);
        }
    }

    /// Load a session from the store, enforcing expiry.
    fn load(&self, id: &str, now: i64) -> Option<Session> {
        let bytes = self.store.get(SESSIONS_BUCKET, id)?;
        let text = String::from_utf8(bytes).ok()?;
        let value = json::parse(&text).ok()?;
        let session = Session::from_value(id, &value)?;
        if session.expires <= now {
            let _ = self.store.delete(SESSIONS_BUCKET, id);
            return None;
        }
        Some(session)
    }

    /// Validate a session id and resolve its identity, through the cache.
    /// This is the first of the two per-request access-control checks in
    /// the paper's Figure-4 workload ("whether the client credentials are
    /// associated with a current session").
    pub fn resolve(&self, id: &str, now: i64) -> Option<ResolvedSession> {
        if self.caching {
            // Load the generation before consulting the cache: a write
            // racing with us can only make the entry look stale.
            let generation = self.generation.load(Ordering::SeqCst);
            if let Some(entry) = self.cache.get(id, generation) {
                if entry.session.expires <= now {
                    self.cache.remove(id);
                    let _ = self.store.delete(SESSIONS_BUCKET, id);
                    return None;
                }
                return Some(entry);
            }
            let session = self.load(id, now)?;
            let entry = ResolvedSession {
                identity: DistinguishedName::parse(&session.dn).ok().map(Arc::new),
                session: Arc::new(session),
            };
            self.cache.insert(id.to_owned(), generation, entry.clone());
            return Some(entry);
        }
        let session = self.load(id, now)?;
        Some(ResolvedSession {
            identity: DistinguishedName::parse(&session.dn).ok().map(Arc::new),
            session: Arc::new(session),
        })
    }

    /// Validate a session id: returns the session if it exists and has not
    /// expired.
    pub fn validate(&self, id: &str, now: i64) -> Option<Session> {
        Some(self.resolve(id, now)?.session.as_ref().clone())
    }

    /// Attach (or replace) a proxy credential on an existing session,
    /// extending its lifetime (proxy renewal semantics of §2.6).
    pub fn attach_proxy(&self, id: &str, proxy_text: &str, now: i64) -> Option<Session> {
        let mut session = self.validate(id, now)?;
        session.proxy = Some(proxy_text.to_owned());
        session.expires = now + self.ttl;
        self.persist(&session);
        if self.caching {
            let entry = ResolvedSession {
                identity: DistinguishedName::parse(&session.dn).ok().map(Arc::new),
                session: Arc::new(session.clone()),
            };
            self.cache
                .insert(id.to_owned(), self.generation.load(Ordering::SeqCst), entry);
        }
        Some(session)
    }

    /// Destroy a session. Returns whether it existed.
    pub fn logout(&self, id: &str) -> bool {
        // The delete bumps the bucket generation, so even an entry a racing
        // `resolve` re-inserts afterwards is already stale; the explicit
        // remove just frees the slot promptly.
        let existed = self.store.delete(SESSIONS_BUCKET, id).unwrap_or(false);
        self.cache.remove(id);
        existed
    }

    /// Remove expired sessions; returns how many were dropped.
    pub fn sweep(&self, now: i64) -> usize {
        let mut dropped = 0;
        for (id, bytes) in self.store.scan_prefix(SESSIONS_BUCKET, "") {
            let expired = String::from_utf8(bytes)
                .ok()
                .and_then(|t| json::parse(&t).ok())
                .and_then(|v| v.get("expires").and_then(Value::as_int))
                .map(|e| e <= now)
                .unwrap_or(true);
            if expired {
                let _ = self.store.delete(SESSIONS_BUCKET, &id);
                self.cache.remove(&id);
                dropped += 1;
            }
        }
        dropped
    }

    /// Number of live sessions (including not-yet-swept expired ones).
    pub fn count(&self) -> usize {
        self.store.len(SESSIONS_BUCKET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn() -> DistinguishedName {
        DistinguishedName::parse("/O=org/OU=People/CN=alice").unwrap()
    }

    fn manager() -> SessionManager {
        SessionManager::new(Arc::new(Store::in_memory()), 3600)
    }

    #[test]
    fn create_and_validate() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        assert_eq!(session.id.len(), 64);
        assert_eq!(session.expires, 4600);
        let validated = mgr.validate(&session.id, 2000).unwrap();
        assert_eq!(validated.dn, "/O=org/OU=People/CN=alice");
        assert!(mgr.validate("bogus", 2000).is_none());
    }

    #[test]
    fn expiry_enforced() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        assert!(mgr.validate(&session.id, 4600).is_none());
        // Expired validation also removes the record.
        assert_eq!(mgr.count(), 0);
    }

    #[test]
    fn ids_unique() {
        let mgr = manager();
        let a = mgr.create(&dn(), 0);
        let b = mgr.create(&dn(), 0);
        assert_ne!(a.id, b.id);
        assert_eq!(mgr.count(), 2);
    }

    #[test]
    fn logout() {
        let mgr = manager();
        let session = mgr.create(&dn(), 0);
        assert!(mgr.logout(&session.id));
        assert!(!mgr.logout(&session.id));
        assert!(mgr.validate(&session.id, 1).is_none());
    }

    #[test]
    fn proxy_attachment_extends_session() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        let updated = mgr
            .attach_proxy(&session.id, "PROXY-CREDENTIAL", 2000)
            .unwrap();
        assert_eq!(updated.proxy.as_deref(), Some("PROXY-CREDENTIAL"));
        assert_eq!(updated.expires, 5600); // renewed from t=2000
        let validated = mgr.validate(&session.id, 5000).unwrap();
        assert_eq!(validated.proxy.as_deref(), Some("PROXY-CREDENTIAL"));
    }

    #[test]
    fn sweep_removes_only_expired() {
        let mgr = manager();
        let old = mgr.create(&dn(), 0);
        let fresh = mgr.create(&dn(), 5000);
        assert_eq!(mgr.sweep(4000), 1);
        assert!(mgr.validate(&old.id, 4000).is_none());
        assert!(mgr.validate(&fresh.id, 4000).is_some());
    }

    #[test]
    fn repeat_validation_is_served_from_cache() {
        let store = Arc::new(Store::in_memory());
        let mgr = SessionManager::new(Arc::clone(&store), 3600);
        let session = mgr.create(&dn(), 1000);
        let lookups_before = store.stats().lookups;
        // Write-through on create plus cache hits on validate: the store
        // is never consulted.
        let entry = mgr.resolve(&session.id, 2000).unwrap();
        assert_eq!(entry.identity.as_ref().unwrap().to_string(), session.dn);
        assert!(mgr.validate(&session.id, 2500).is_some());
        assert_eq!(store.stats().lookups, lookups_before);
        assert_eq!(mgr.cache_stats().hits, 2);
    }

    #[test]
    fn logout_invalidates_cached_session() {
        let mgr = manager();
        let session = mgr.create(&dn(), 0);
        assert!(mgr.validate(&session.id, 1).is_some());
        assert!(mgr.logout(&session.id));
        assert!(mgr.validate(&session.id, 1).is_none());
    }

    #[test]
    fn expiry_enforced_on_cached_entries() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        assert!(mgr.validate(&session.id, 2000).is_some());
        // The cached entry must not outlive its expiry, and the expired
        // record is removed from the store as before.
        assert!(mgr.validate(&session.id, 4600).is_none());
        assert_eq!(mgr.count(), 0);
        assert!(mgr.validate(&session.id, 2000).is_none());
    }

    #[test]
    fn proxy_attachment_visible_through_cache() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        assert!(mgr.validate(&session.id, 1500).is_some());
        mgr.attach_proxy(&session.id, "PROXY", 2000).unwrap();
        let entry = mgr.resolve(&session.id, 2500).unwrap();
        assert_eq!(entry.session.proxy.as_deref(), Some("PROXY"));
        assert_eq!(entry.session.expires, 5600);
    }

    #[test]
    fn uncached_manager_counts_nothing() {
        let mgr = SessionManager::with_caching(Arc::new(Store::in_memory()), 3600, false);
        let session = mgr.create(&dn(), 0);
        assert!(mgr.resolve(&session.id, 1).is_some());
        assert!(mgr.validate(&session.id, 1).is_some());
        assert_eq!(mgr.cache_stats(), CacheStats::default());
    }

    #[test]
    fn sessions_survive_restart() {
        // The paper's restart-survival property, end to end through the DB.
        let path = std::env::temp_dir().join(format!(
            "clarens-session-restart-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let store = Arc::new(Store::open(&path).unwrap());
            let mgr = SessionManager::new(store, 3600);
            id = mgr.create(&dn(), 1000).id;
        }
        {
            // "Restart": a fresh manager over a reopened store.
            let store = Arc::new(Store::open(&path).unwrap());
            let mgr = SessionManager::new(store, 3600);
            let session = mgr.validate(&id, 2000).unwrap();
            assert_eq!(session.dn, "/O=org/OU=People/CN=alice");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
