//! Persistent server-side sessions.
//!
//! "Since the HTTP protocol does not require persistent connections, it is
//! important that session information is stored persistently on the server
//! side. This has the positive side-effect of allowing clients to survive
//! server failures or restarts transparently without having to
//! re-authenticate themselves" (paper §2). Sessions live in the
//! [`clarens_db::Store`] (bucket `sessions`), keyed by a random 256-bit id,
//! and carry the authenticated identity plus expiry.

use std::sync::Arc;

use rand::RngExt;

use clarens_db::Store;
use clarens_pki::dn::DistinguishedName;
use clarens_pki::sha256;
use clarens_wire::{json, Value};

/// DB bucket for sessions.
pub const SESSIONS_BUCKET: &str = "sessions";

/// An authenticated session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The session id (hex, 64 chars).
    pub id: String,
    /// Authenticated identity (end-entity DN).
    pub dn: String,
    /// Creation time (Unix seconds).
    pub created: i64,
    /// Expiry time (Unix seconds).
    pub expires: i64,
    /// Serialized proxy credential attached to the session, if any
    /// (paper §2.6: a stored proxy can be "attached" to an existing
    /// session).
    pub proxy: Option<String>,
}

impl Session {
    fn to_value(&self) -> Value {
        Value::structure([
            ("dn", Value::from(self.dn.clone())),
            ("created", Value::Int(self.created)),
            ("expires", Value::Int(self.expires)),
            (
                "proxy",
                self.proxy.clone().map(Value::from).unwrap_or(Value::Nil),
            ),
        ])
    }

    fn from_value(id: &str, value: &Value) -> Option<Session> {
        Some(Session {
            id: id.to_owned(),
            dn: value.get("dn")?.as_str()?.to_owned(),
            created: value.get("created")?.as_int()?,
            expires: value.get("expires")?.as_int()?,
            proxy: value
                .get("proxy")
                .and_then(|p| p.as_str())
                .map(str::to_owned),
        })
    }
}

/// The session manager.
pub struct SessionManager {
    store: Arc<Store>,
    ttl: i64,
}

impl SessionManager {
    /// Create a manager over the shared store.
    pub fn new(store: Arc<Store>, ttl: i64) -> Self {
        SessionManager { store, ttl }
    }

    /// Create a new session for `dn`, returning it.
    pub fn create(&self, dn: &DistinguishedName, now: i64) -> Session {
        let mut rng = rand::rng();
        let raw: [u8; 32] = rng.random();
        let id = sha256::to_hex(&sha256::sha256(&raw));
        let session = Session {
            id: id.clone(),
            dn: dn.to_string(),
            created: now,
            expires: now + self.ttl,
            proxy: None,
        };
        self.persist(&session);
        session
    }

    fn persist(&self, session: &Session) {
        let _ = self.store.put(
            SESSIONS_BUCKET,
            &session.id,
            json::to_string(&session.to_value()).into_bytes(),
        );
    }

    /// Validate a session id: returns the session if it exists and has not
    /// expired. This is the first of the two per-request access-control
    /// checks in the paper's Figure-4 workload ("whether the client
    /// credentials are associated with a current session").
    pub fn validate(&self, id: &str, now: i64) -> Option<Session> {
        let bytes = self.store.get(SESSIONS_BUCKET, id)?;
        let text = String::from_utf8(bytes).ok()?;
        let value = json::parse(&text).ok()?;
        let session = Session::from_value(id, &value)?;
        if session.expires <= now {
            let _ = self.store.delete(SESSIONS_BUCKET, id);
            return None;
        }
        Some(session)
    }

    /// Attach (or replace) a proxy credential on an existing session,
    /// extending its lifetime (proxy renewal semantics of §2.6).
    pub fn attach_proxy(&self, id: &str, proxy_text: &str, now: i64) -> Option<Session> {
        let mut session = self.validate(id, now)?;
        session.proxy = Some(proxy_text.to_owned());
        session.expires = now + self.ttl;
        self.persist(&session);
        Some(session)
    }

    /// Destroy a session. Returns whether it existed.
    pub fn logout(&self, id: &str) -> bool {
        self.store.delete(SESSIONS_BUCKET, id).unwrap_or(false)
    }

    /// Remove expired sessions; returns how many were dropped.
    pub fn sweep(&self, now: i64) -> usize {
        let mut dropped = 0;
        for (id, bytes) in self.store.scan_prefix(SESSIONS_BUCKET, "") {
            let expired = String::from_utf8(bytes)
                .ok()
                .and_then(|t| json::parse(&t).ok())
                .and_then(|v| v.get("expires").and_then(Value::as_int))
                .map(|e| e <= now)
                .unwrap_or(true);
            if expired {
                let _ = self.store.delete(SESSIONS_BUCKET, &id);
                dropped += 1;
            }
        }
        dropped
    }

    /// Number of live sessions (including not-yet-swept expired ones).
    pub fn count(&self) -> usize {
        self.store.len(SESSIONS_BUCKET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn() -> DistinguishedName {
        DistinguishedName::parse("/O=org/OU=People/CN=alice").unwrap()
    }

    fn manager() -> SessionManager {
        SessionManager::new(Arc::new(Store::in_memory()), 3600)
    }

    #[test]
    fn create_and_validate() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        assert_eq!(session.id.len(), 64);
        assert_eq!(session.expires, 4600);
        let validated = mgr.validate(&session.id, 2000).unwrap();
        assert_eq!(validated.dn, "/O=org/OU=People/CN=alice");
        assert!(mgr.validate("bogus", 2000).is_none());
    }

    #[test]
    fn expiry_enforced() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        assert!(mgr.validate(&session.id, 4600).is_none());
        // Expired validation also removes the record.
        assert_eq!(mgr.count(), 0);
    }

    #[test]
    fn ids_unique() {
        let mgr = manager();
        let a = mgr.create(&dn(), 0);
        let b = mgr.create(&dn(), 0);
        assert_ne!(a.id, b.id);
        assert_eq!(mgr.count(), 2);
    }

    #[test]
    fn logout() {
        let mgr = manager();
        let session = mgr.create(&dn(), 0);
        assert!(mgr.logout(&session.id));
        assert!(!mgr.logout(&session.id));
        assert!(mgr.validate(&session.id, 1).is_none());
    }

    #[test]
    fn proxy_attachment_extends_session() {
        let mgr = manager();
        let session = mgr.create(&dn(), 1000);
        let updated = mgr
            .attach_proxy(&session.id, "PROXY-CREDENTIAL", 2000)
            .unwrap();
        assert_eq!(updated.proxy.as_deref(), Some("PROXY-CREDENTIAL"));
        assert_eq!(updated.expires, 5600); // renewed from t=2000
        let validated = mgr.validate(&session.id, 5000).unwrap();
        assert_eq!(validated.proxy.as_deref(), Some("PROXY-CREDENTIAL"));
    }

    #[test]
    fn sweep_removes_only_expired() {
        let mgr = manager();
        let old = mgr.create(&dn(), 0);
        let fresh = mgr.create(&dn(), 5000);
        assert_eq!(mgr.sweep(4000), 1);
        assert!(mgr.validate(&old.id, 4000).is_none());
        assert!(mgr.validate(&fresh.id, 4000).is_some());
    }

    #[test]
    fn sessions_survive_restart() {
        // The paper's restart-survival property, end to end through the DB.
        let path = std::env::temp_dir().join(format!(
            "clarens-session-restart-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let store = Arc::new(Store::open(&path).unwrap());
            let mgr = SessionManager::new(store, 3600);
            id = mgr.create(&dn(), 1000).id;
        }
        {
            // "Restart": a fresh manager over a reopened store.
            let store = Arc::new(Store::open(&path).unwrap());
            let mgr = SessionManager::new(store, 3600);
            let session = mgr.validate(&id, 2000).unwrap();
            assert_eq!(session.dn, "/O=org/OU=People/CN=alice");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
