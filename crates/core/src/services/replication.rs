//! The replication service: WAL shipping over the ordinary RPC plane.
//!
//! A federation leader exports its write-ahead log as a cursor-addressed
//! byte stream. Followers poll `replication.fetch(epoch, offset, max)` and
//! apply the decoded operations to their own store, so VO membership,
//! ACLs, sessions, and stored proxies converge across the grid — any node
//! can then authenticate any user (paper §2.1's "session state" made
//! location independent).
//!
//! Protocol invariants (enforced by `Store::wal_read`):
//! - only whole, CRC-valid frames are ever shipped;
//! - the epoch bumps when compaction rewrites the log, and a stale cursor
//!   restarts from offset 0 (the compacted log doubles as a full-state
//!   snapshot, so replay converges);
//! - `len` in every response is the leader's committed high-water mark,
//!   letting the follower compute its lag without a second round trip.
//!
//! The WAL carries session secrets and sealed proxies, so both methods are
//! gated on site admin — the follower authenticates with the federation's
//! shared admin credential.

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service};

/// Largest chunk a single fetch may return (1 MiB) — bounds response
/// allocation regardless of what the follower asks for.
pub const MAX_FETCH_BYTES: i64 = 1 << 20;

/// The `replication` service (registered on federation leaders).
pub struct ReplicationService;

fn require_site_admin(ctx: &CallContext<'_>) -> Result<(), Fault> {
    let dn = ctx.require_identity()?;
    if !ctx.core.vo.is_site_admin(dn) {
        return Err(Fault::access_denied(
            "replication streams the raw WAL (session secrets); site admin required",
        ));
    }
    Ok(())
}

impl Service for ReplicationService {
    fn module(&self) -> &str {
        "replication"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "replication.fetch",
                "replication.fetch(epoch, offset, max_bytes)",
                "Read framed WAL bytes from the given cursor (site admin)",
            ),
            MethodInfo::new(
                "replication.status",
                "replication.status()",
                "Leader WAL epoch and committed length (site admin)",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "replication.fetch" => {
                params::expect_len(params_in, 3, method)?;
                require_site_admin(ctx)?;
                // Epoch fence: only the current leader may serve the log.
                // A deposed leader answering fetches would feed followers
                // a byte stream that diverges from the new leader's —
                // refuse with a hint so the replicator re-points itself.
                if ctx.core.federation.is_federated()
                    && ctx.core.federation.role() != crate::config::FederationRole::Leader
                {
                    return Err(Fault::not_leader(
                        &ctx.core.federation.leader(),
                        ctx.core.federation.epoch(),
                    ));
                }
                let epoch = params::int(params_in, 0, "epoch")?;
                let offset = params::int(params_in, 1, "offset")?;
                let max_bytes = params::int(params_in, 2, "max_bytes")?;
                if epoch < 0 || offset < 0 || max_bytes < 0 {
                    return Err(Fault::bad_params("cursor fields must be non-negative"));
                }
                let chunk = ctx
                    .core
                    .store
                    .wal_read(
                        epoch as u64,
                        offset as u64,
                        max_bytes.min(MAX_FETCH_BYTES) as usize,
                    )
                    .map_err(|e| Fault::service(format!("wal read: {e}")))?;
                ctx.core.telemetry.federation.replication_chunks.inc();
                if chunk.epoch != epoch as u64 || chunk.offset != offset as u64 {
                    // The served cursor differs from the requested one:
                    // the log was rewritten (or the offset overran the
                    // committed length) and the follower is being
                    // restarted from the current snapshot.
                    ctx.core.telemetry.federation.replication_resyncs.inc();
                } else {
                    // A fetch at a cursor the log *honored* proves the
                    // follower applied every record below it — feed the
                    // replicated-ack barrier. Recorded only after
                    // `wal_read` validated the cursor, and clamped to the
                    // committed length: a client-supplied offset beyond
                    // it must never raise the barrier past bytes a
                    // follower actually holds (that would let the leader
                    // ack writes nobody replicated).
                    ctx.core
                        .federation
                        .observe_follower_fetch((offset as u64).min(ctx.core.store.wal_offset()));
                }
                Ok(Value::structure([
                    ("epoch", Value::Int(chunk.epoch as i64)),
                    ("offset", Value::Int(chunk.offset as i64)),
                    ("data", Value::Bytes(chunk.data)),
                    ("len", Value::Int(chunk.len as i64)),
                    // The leader (fence) epoch, distinct from the WAL
                    // compaction epoch above: followers reject chunks from
                    // a leader whose epoch is older than one they've seen.
                    (
                        "leader_epoch",
                        Value::Int(ctx.core.federation.epoch() as i64),
                    ),
                ]))
            }
            "replication.status" => {
                params::expect_len(params_in, 0, method)?;
                require_site_admin(ctx)?;
                Ok(Value::structure([
                    ("epoch", Value::Int(ctx.core.store.wal_epoch() as i64)),
                    ("len", Value::Int(ctx.core.store.wal_offset() as i64)),
                    (
                        "leader_epoch",
                        Value::Int(ctx.core.federation.epoch() as i64),
                    ),
                    (
                        "role",
                        Value::from(match ctx.core.federation.role() {
                            crate::config::FederationRole::Leader => "Leader",
                            crate::config::FederationRole::Follower => "Follower",
                            crate::config::FederationRole::Standalone => "Standalone",
                        }),
                    ),
                ]))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
