//! The proxy service (paper §2.6): store and retrieve proxy certificates.
//!
//! "The proxy service provides a secure way to store and retrieve
//! so-called 'proxy' certificates on a Clarens server. ... This service
//! also allows the user to use a previously stored proxy as a way of
//! logging into the server by only knowing the certificate distinguished
//! name and password that was used to store it. Additionally, a stored
//! proxy can also be 'attached' to an existing session."
//!
//! Stored payloads (certificate + unencrypted private key, serialized by
//! the client) are sealed with a password-derived ChaCha20 key and an
//! HMAC-SHA256 tag, so the server operator cannot read them and tampering
//! is detected.
//!
//! The service also hosts `proxy.call`, the federation routing hop: a
//! request for a module this node does not export is forwarded to the
//! discovery-resolved node that does, with a hop-limit header bounding
//! pathological bouncing between misconfigured nodes.

use std::sync::Arc;
use std::time::Instant;

use monalisa_sim::{DiscoveryAggregator, ServiceQuery};
use rand::RngExt;

use clarens_pki::cert::{verify_chain, Certificate};
use clarens_pki::chacha20;
use clarens_pki::dn::DistinguishedName;
use clarens_pki::hmac::{derive_key, hmac_sha256, verify_mac};
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::client::{ClarensClient, ClientError};
use crate::registry::{params, CallContext, MethodInfo, Service};

/// DB bucket for stored proxies (key: owner DN string).
pub const PROXIES_BUCKET: &str = "proxies";

/// The `proxy` service.
#[derive(Default)]
pub struct ProxyService {
    /// Discovery view used by `proxy.call` to locate the node owning a
    /// module this node does not export. `None` on servers without a
    /// discovery plane: local dispatch still works, forwarding faults.
    aggregator: Option<Arc<DiscoveryAggregator>>,
}

impl ProxyService {
    /// A proxy service without a router (standalone servers).
    pub fn new() -> Self {
        ProxyService::default()
    }

    /// A proxy service that can forward `proxy.call` requests through the
    /// given discovery view.
    pub fn with_router(aggregator: Arc<DiscoveryAggregator>) -> Self {
        ProxyService {
            aggregator: Some(aggregator),
        }
    }
}

/// Extract `host:port` from a descriptor URL like
/// `http://tier2.example.edu:8080/clarens`.
fn host_port(url: &str) -> Option<&str> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))?;
    let hp = &rest[..rest.find('/').unwrap_or(rest.len())];
    (!hp.is_empty()).then_some(hp)
}

/// Seal `payload` under `password`, bound to `dn`.
/// Layout: `nonce(12) || ciphertext || mac(32)`.
pub fn seal(password: &str, dn: &str, payload: &[u8]) -> Vec<u8> {
    let key_bytes = derive_key(
        password.as_bytes(),
        "clarens-proxy-store",
        dn.as_bytes(),
        32,
    );
    let mac_key = derive_key(password.as_bytes(), "clarens-proxy-mac", dn.as_bytes(), 32);
    let mut key = [0u8; 32];
    key.copy_from_slice(&key_bytes);
    let mut rng = rand::rng();
    let nonce: [u8; 12] = rng.random();
    let mut ciphertext = payload.to_vec();
    chacha20::xor_stream(&key, &nonce, 0, &mut ciphertext);
    let mut out = nonce.to_vec();
    out.extend_from_slice(&ciphertext);
    let mac = hmac_sha256(&mac_key, &out);
    out.extend_from_slice(&mac);
    out
}

/// Open a sealed payload; `None` on wrong password or tampering.
pub fn open(password: &str, dn: &str, sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 12 + 32 {
        return None;
    }
    let mac_key = derive_key(password.as_bytes(), "clarens-proxy-mac", dn.as_bytes(), 32);
    let (body, tag) = sealed.split_at(sealed.len() - 32);
    if !verify_mac(&hmac_sha256(&mac_key, body), tag) {
        return None;
    }
    let key_bytes = derive_key(
        password.as_bytes(),
        "clarens-proxy-store",
        dn.as_bytes(),
        32,
    );
    let mut key = [0u8; 32];
    key.copy_from_slice(&key_bytes);
    let nonce: [u8; 12] = body[..12].try_into().ok()?;
    let mut plaintext = body[12..].to_vec();
    chacha20::xor_stream(&key, &nonce, 0, &mut plaintext);
    Some(plaintext)
}

/// The stored-proxy payload: one or more certificate texts (leaf first,
/// the delegation chain) separated by blank lines, then a serialized key.
/// The service treats it opaquely except for `proxy.login`, which parses
/// the certificate part to validate the chain.
fn parse_chain_from_payload(payload: &str) -> Result<Vec<Certificate>, Fault> {
    let mut chain = Vec::new();
    for block in payload.split("\n\n") {
        let block = block.trim();
        if block.is_empty() || !block.starts_with("version:") {
            continue;
        }
        chain.push(
            Certificate::from_text(block)
                .map_err(|e| Fault::service(format!("stored proxy corrupt: {e}")))?,
        );
    }
    if chain.is_empty() {
        return Err(Fault::service("stored proxy contains no certificates"));
    }
    Ok(chain)
}

impl Service for ProxyService {
    fn module(&self) -> &str {
        "proxy"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "proxy.store",
                "proxy.store(password, payload)",
                "Store a proxy credential sealed under a password",
            ),
            MethodInfo::new(
                "proxy.retrieve",
                "proxy.retrieve(password)",
                "Retrieve the caller's stored proxy credential",
            ),
            MethodInfo::new(
                "proxy.login",
                "proxy.login(dn, password)",
                "Create a session from a stored proxy, knowing only DN and password",
            ),
            MethodInfo::new(
                "proxy.attach",
                "proxy.attach(password)",
                "Attach the stored proxy to the current session (renewal/delegation)",
            ),
            MethodInfo::new(
                "proxy.remove",
                "proxy.remove()",
                "Delete the caller's stored proxy",
            ),
            MethodInfo::new(
                "proxy.call",
                "proxy.call(method, params)",
                "Invoke a method on whichever federation node exports it",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "proxy.store" => {
                params::expect_len(params_in, 2, method)?;
                let password = params::string(params_in, 0, "password")?;
                let payload = params::string(params_in, 1, "payload")?;
                let dn = ctx.require_identity()?.to_string();
                // Sanity-check the payload parses before sealing.
                parse_chain_from_payload(&payload)?;
                let sealed = seal(&password, &dn, payload.as_bytes());
                ctx.core
                    .store
                    .put(PROXIES_BUCKET, &dn, sealed)
                    .map_err(|e| crate::store_fault("proxy store", &e))?;
                Ok(Value::Bool(true))
            }
            "proxy.retrieve" => {
                params::expect_len(params_in, 1, method)?;
                let password = params::string(params_in, 0, "password")?;
                let dn = ctx.require_identity()?.to_string();
                let payload = self.open_stored(ctx, &dn, &password)?;
                Ok(Value::from(payload))
            }
            "proxy.login" => {
                params::expect_len(params_in, 2, method)?;
                let dn_text = params::string(params_in, 0, "dn")?;
                let password = params::string(params_in, 1, "password")?;
                let dn = DistinguishedName::parse(&dn_text)
                    .map_err(|e| Fault::bad_params(e.to_string()))?;
                let payload = self.open_stored(ctx, &dn_text, &password)?;
                // Validate the stored chain before minting a session.
                let chain = parse_chain_from_payload(&payload)?;
                let identity = verify_chain(&chain, &ctx.core.roots, ctx.now)
                    .map_err(|e| Fault::not_authenticated(format!("stored proxy invalid: {e}")))?;
                if identity != dn && chain[0].subject != dn {
                    return Err(Fault::not_authenticated(
                        "stored proxy does not belong to that DN",
                    ));
                }
                let session = ctx.core.sessions.create(&identity, ctx.now);
                Ok(Value::structure([
                    ("session", Value::from(session.id)),
                    ("dn", Value::from(identity.to_string())),
                    ("expires", Value::Int(session.expires)),
                ]))
            }
            "proxy.attach" => {
                params::expect_len(params_in, 1, method)?;
                let password = params::string(params_in, 0, "password")?;
                let session = ctx
                    .session
                    .as_ref()
                    .ok_or_else(|| Fault::not_authenticated("no session to attach to"))?;
                let dn = ctx.require_identity()?.to_string();
                let payload = self.open_stored(ctx, &dn, &password)?;
                ctx.core
                    .sessions
                    .attach_proxy(&session.id, &payload, ctx.now)
                    .ok_or_else(|| Fault::service("session vanished"))?;
                Ok(Value::Bool(true))
            }
            "proxy.remove" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?.to_string();
                let existed = ctx
                    .core
                    .store
                    .delete(PROXIES_BUCKET, &dn)
                    .map_err(|e| crate::store_fault("proxy delete", &e))?;
                Ok(Value::Bool(existed))
            }
            "proxy.call" => self.route_call(ctx, params_in),
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}

impl ProxyService {
    /// `proxy.call(method, params)`: dispatch locally when this node
    /// exports the target module, otherwise forward one hop to the
    /// lowest-latency node discovery says does.
    ///
    /// The dispatch layer only ACL-checked `proxy.call` itself, so the
    /// target method is re-checked here before any dispatch — routing must
    /// not become an ACL bypass. The caller's session id rides along on
    /// the forwarded request; once session records replicate across the
    /// federation, the remote node resolves it like its own.
    fn route_call(&self, ctx: &CallContext<'_>, params_in: &[Value]) -> Result<Value, Fault> {
        params::expect_range(params_in, 1, 2, "proxy.call")?;
        let target = params::string(params_in, 0, "method")?;
        let args: Vec<Value> = match params_in.get(1) {
            None => Vec::new(),
            Some(Value::Array(items)) => items.clone(),
            Some(other) => {
                return Err(Fault::bad_params(format!(
                    "parameter 1 (params) must be an array, got {}",
                    other.type_name()
                )))
            }
        };
        let dn = ctx.require_identity()?;
        if target.starts_with("proxy.call") || target.is_empty() {
            return Err(Fault::bad_params("proxy.call cannot route itself"));
        }
        if !ctx.core.acl.check_method(&target, dn, &ctx.core.vo) {
            return Err(Fault::access_denied(format!(
                "access denied to {target} for {dn}"
            )));
        }

        // Local fast path: this node owns the module. The registry guard
        // drops at the end of the statement, so the nested dispatch cannot
        // deadlock against it.
        let local = ctx.core.registry.read().resolve(&target);
        if let Some(service) = local {
            return service.call(ctx, &target, &args);
        }

        let federation = &ctx.core.telemetry.federation;
        if ctx.hops >= ctx.core.config.proxy_max_hops {
            federation.hop_limit_rejects.inc();
            return Err(Fault::service(format!(
                "hop limit reached ({}) routing {target}: no node on the path exports it",
                ctx.core.config.proxy_max_hops
            )));
        }
        let aggregator = self
            .aggregator
            .as_ref()
            .ok_or_else(|| Fault::service(format!("{target} is not served here (no router)")))?;

        // Resolve the owner via discovery; never bounce back to ourselves.
        // Among candidates, prefer the lowest published p95 latency — the
        // same load attribute balanced clients steer by.
        let mut hits = aggregator.query_local(&ServiceQuery::by_method(&target));
        hits.retain(|d| d.url != ctx.core.config.server_url);
        let best = hits
            .into_iter()
            .min_by_key(|d| {
                d.attributes
                    .get("p95_us")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(u64::MAX)
            })
            .ok_or_else(|| Fault::service(format!("no federation node exports {target}")))?;
        let addr = host_port(&best.url)
            .ok_or_else(|| Fault::service(format!("unroutable descriptor url {}", best.url)))?;

        let mut client =
            ClarensClient::new(addr).with_header("x-clarens-hops", (ctx.hops + 1).to_string());
        if let Some(budget) = ctx.remaining_budget() {
            client = client.with_call_deadline(budget);
        }
        if let Some(session) = &ctx.session {
            client.set_session(session.id.clone());
        }
        let started = Instant::now();
        match client.call(&target, args) {
            Ok(value) => {
                federation.forwarded.inc();
                federation
                    .forward_us
                    .record(started.elapsed().as_micros() as u64);
                Ok(value)
            }
            // A remote fault is a completed exchange — the answer is the
            // fault, passed through verbatim so the caller sees exactly
            // what a direct call would have.
            Err(ClientError::Fault(fault)) => {
                federation.forwarded.inc();
                federation
                    .forward_us
                    .record(started.elapsed().as_micros() as u64);
                Err(fault)
            }
            Err(other) => {
                federation.forward_failures.inc();
                Err(Fault::service(format!(
                    "forward of {target} to {} failed: {other}",
                    best.url
                )))
            }
        }
    }

    fn open_stored(
        &self,
        ctx: &CallContext<'_>,
        dn: &str,
        password: &str,
    ) -> Result<String, Fault> {
        let sealed = ctx
            .core
            .store
            .get(PROXIES_BUCKET, dn)
            .ok_or_else(|| Fault::service(format!("no stored proxy for {dn}")))?;
        let payload = open(password, dn, &sealed)
            .ok_or_else(|| Fault::not_authenticated("wrong password or corrupted proxy"))?;
        String::from_utf8(payload).map_err(|_| Fault::service("stored proxy payload is not UTF-8"))
    }
}

/// Serialize a delegation chain into the stored-proxy payload format
/// (client-side helper; the private key is appended by the caller since
/// the server never needs to parse it).
pub fn chain_payload(chain: &[Certificate], key_note: &str) -> String {
    let mut out = String::new();
    for cert in chain {
        out.push_str(&cert.to_text());
        out.push('\n');
    }
    out.push_str("key:\n");
    out.push_str(key_note);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal("hunter2", "/O=g/CN=a", b"secret payload");
        assert_eq!(
            open("hunter2", "/O=g/CN=a", &sealed).unwrap(),
            b"secret payload"
        );
        // Wrong password / wrong DN / tampering all fail.
        assert!(open("wrong", "/O=g/CN=a", &sealed).is_none());
        assert!(open("hunter2", "/O=g/CN=b", &sealed).is_none());
        let mut tampered = sealed.clone();
        tampered[14] ^= 1;
        assert!(open("hunter2", "/O=g/CN=a", &tampered).is_none());
        assert!(open("hunter2", "/O=g/CN=a", &sealed[..10]).is_none());
    }

    #[test]
    fn sealing_randomized() {
        let a = seal("pw", "/O=g/CN=a", b"same");
        let b = seal("pw", "/O=g/CN=a", b"same");
        assert_ne!(a, b, "fresh nonce per store");
    }
}
