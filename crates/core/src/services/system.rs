//! The `system` service: introspection, authentication, session control.
//!
//! `system.list_methods` is the method the paper's performance study calls
//! "as rapidly as possible" (§4); like the original, it performs "a
//! database lookup for all registered methods in the server" on every
//! invocation and serializes the result as an array of strings.

use clarens_pki::cert::{verify_chain, Certificate};
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service, METHODS_BUCKET};

/// The `system` service.
pub struct SystemService;

/// Version string reported by `system.version`.
pub const VERSION: &str = concat!("clarens-rs/", env!("CARGO_PKG_VERSION"));

impl Service for SystemService {
    fn module(&self) -> &str {
        "system"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "system.list_methods",
                "system.list_methods()",
                "List all registered method names",
            ),
            MethodInfo::new(
                "system.get_method_info",
                "system.get_method_info(name)",
                "Signature and documentation for one method",
            ),
            MethodInfo::new(
                "system.auth",
                "system.auth(chain, timestamp, signature)",
                "Authenticate with a certificate chain and challenge signature; returns a session",
            ),
            MethodInfo::new(
                "system.whoami",
                "system.whoami()",
                "The caller's identity DN",
            ),
            MethodInfo::new(
                "system.logout",
                "system.logout()",
                "Destroy the current session",
            ),
            MethodInfo::new(
                "system.version",
                "system.version()",
                "Server version string",
            ),
            MethodInfo::new("system.ping", "system.ping()", "Liveness probe"),
            MethodInfo::new(
                "system.session_count",
                "system.session_count()",
                "Number of live sessions (admin)",
            ),
            MethodInfo::new(
                "system.stats",
                "system.stats()",
                "DB and authorization-cache counters (admin)",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "system.list_methods" => {
                params::expect_len(params_in, 0, method)?;
                // Deliberately uncached: a fresh DB scan per request, as
                // the paper stresses ("No caching was performed on the
                // server").
                let names = ctx.core.store.keys(METHODS_BUCKET);
                Ok(Value::Array(names.into_iter().map(Value::from).collect()))
            }
            "system.get_method_info" => {
                params::expect_len(params_in, 1, method)?;
                let name = params::string(params_in, 0, "name")?;
                let bytes = ctx.core.store.get(METHODS_BUCKET, &name).ok_or_else(|| {
                    Fault::new(codes::NO_SUCH_METHOD, format!("no method {name}"))
                })?;
                let text = String::from_utf8(bytes)
                    .map_err(|_| Fault::new(codes::INTERNAL, "corrupt method record"))?;
                clarens_wire::json::parse(&text)
                    .map_err(|_| Fault::new(codes::INTERNAL, "corrupt method record"))
            }
            "system.auth" => self.auth(ctx, params_in),
            "system.whoami" => {
                params::expect_len(params_in, 0, method)?;
                Ok(Value::from(ctx.require_identity()?.to_string()))
            }
            "system.logout" => {
                params::expect_len(params_in, 0, method)?;
                match &ctx.session {
                    Some(session) => Ok(Value::Bool(ctx.core.sessions.logout(&session.id))),
                    None => Ok(Value::Bool(false)),
                }
            }
            "system.version" => {
                params::expect_len(params_in, 0, method)?;
                Ok(Value::from(VERSION))
            }
            "system.ping" => {
                params::expect_len(params_in, 0, method)?;
                Ok(Value::from("pong"))
            }
            "system.session_count" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("session_count requires site admin"));
                }
                Ok(Value::Int(ctx.core.sessions.count() as i64))
            }
            "system.stats" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("stats requires site admin"));
                }
                let db = ctx.core.store.stats();
                let cache_value = |stats: crate::cache::CacheStats| {
                    Value::structure([
                        ("hits", Value::Int(stats.hits as i64)),
                        ("misses", Value::Int(stats.misses as i64)),
                    ])
                };
                Ok(Value::structure([
                    (
                        "db",
                        Value::structure([
                            ("lookups", Value::Int(db.lookups as i64)),
                            ("scans", Value::Int(db.scans as i64)),
                            ("writes", Value::Int(db.writes as i64)),
                        ]),
                    ),
                    (
                        "cache",
                        Value::structure([
                            ("sessions", cache_value(ctx.core.sessions.cache_stats())),
                            ("vo_groups", cache_value(ctx.core.vo.cache_stats())),
                            ("acl_nodes", cache_value(ctx.core.acl.node_cache_stats())),
                            (
                                "acl_decisions",
                                cache_value(ctx.core.acl.decision_cache_stats()),
                            ),
                        ]),
                    ),
                ]))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}

impl SystemService {
    /// `system.auth(chain: [string], timestamp: int, signature: bytes)`.
    ///
    /// The challenge is self-dated: the client signs
    /// `clarens-auth:<timestamp>` with its leaf key; the server accepts it
    /// within the configured clock-skew window. The chain is validated
    /// against the server's trust roots; proxy chains authenticate as the
    /// underlying user (paper §2.6 delegation semantics).
    fn auth(&self, ctx: &CallContext<'_>, params_in: &[Value]) -> Result<Value, Fault> {
        params::expect_len(params_in, 3, "system.auth")?;
        let chain_values = params_in[0]
            .as_array()
            .ok_or_else(|| Fault::bad_params("parameter 0 (chain) must be an array"))?;
        let timestamp = params::int(params_in, 1, "timestamp")?;
        let signature = params::bytes(params_in, 2, "signature")?;

        let mut chain = Vec::with_capacity(chain_values.len());
        for value in chain_values {
            let text = value
                .as_str()
                .ok_or_else(|| Fault::bad_params("chain entries must be certificate text"))?;
            chain.push(
                Certificate::from_text(text)
                    .map_err(|e| Fault::bad_params(format!("bad certificate: {e}")))?,
            );
        }
        if chain.is_empty() {
            return Err(Fault::bad_params("empty certificate chain"));
        }

        let skew = ctx.core.config.auth_skew;
        if (ctx.now - timestamp).abs() > skew {
            return Err(Fault::not_authenticated(format!(
                "challenge timestamp outside ±{skew}s window"
            )));
        }

        let identity = verify_chain(&chain, &ctx.core.roots, ctx.now)
            .map_err(|e| Fault::not_authenticated(format!("certificate chain invalid: {e}")))?;

        let message = auth_challenge(timestamp);
        chain[0]
            .public_key
            .verify(message.as_bytes(), &signature)
            .map_err(|_| Fault::not_authenticated("challenge signature invalid"))?;

        let session = ctx.core.sessions.create(&identity, ctx.now);
        Ok(Value::structure([
            ("session", Value::from(session.id)),
            ("dn", Value::from(identity.to_string())),
            ("expires", Value::Int(session.expires)),
        ]))
    }
}

/// The challenge message a client signs for `system.auth`.
pub fn auth_challenge(timestamp: i64) -> String {
    format!("clarens-auth:{timestamp}")
}
