//! The `system` service: introspection, authentication, session control.
//!
//! `system.list_methods` is the method the paper's performance study calls
//! "as rapidly as possible" (§4); like the original, it performs "a
//! database lookup for all registered methods in the server" on every
//! invocation and serializes the result as an array of strings.

use clarens_pki::cert::{verify_chain, Certificate};
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service, METHODS_BUCKET};

/// The `system` service.
pub struct SystemService;

/// Version string reported by `system.version`.
pub const VERSION: &str = concat!("clarens-rs/", env!("CARGO_PKG_VERSION"));

impl Service for SystemService {
    fn module(&self) -> &str {
        "system"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "system.list_methods",
                "system.list_methods()",
                "List all registered method names",
            ),
            MethodInfo::new(
                "system.get_method_info",
                "system.get_method_info(name)",
                "Signature and documentation for one method",
            ),
            MethodInfo::new(
                "system.auth",
                "system.auth(chain, timestamp, signature)",
                "Authenticate with a certificate chain and challenge signature; returns a session",
            ),
            MethodInfo::new(
                "system.whoami",
                "system.whoami()",
                "The caller's identity DN",
            ),
            MethodInfo::new(
                "system.logout",
                "system.logout()",
                "Destroy the current session",
            ),
            MethodInfo::new(
                "system.version",
                "system.version()",
                "Server version string",
            ),
            MethodInfo::new("system.ping", "system.ping()", "Liveness probe"),
            MethodInfo::new(
                "system.health",
                "system.health()",
                "Readiness: role, leader epoch, replication cursor/lag, degraded flag",
            ),
            MethodInfo::new(
                "system.session_count",
                "system.session_count()",
                "Number of live sessions (admin)",
            ),
            MethodInfo::new(
                "system.stats",
                "system.stats()",
                "DB and authorization-cache counters (admin)",
            ),
            MethodInfo::new(
                "system.metrics",
                "system.metrics()",
                "Full telemetry snapshot: HTTP counters, per-phase and per-method latency (admin)",
            ),
            MethodInfo::new(
                "system.trace_tail",
                "system.trace_tail([limit])",
                "Most recent slow-request traces, newest first (admin)",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "system.list_methods" => {
                params::expect_len(params_in, 0, method)?;
                // Deliberately uncached: a fresh DB scan per request, as
                // the paper stresses ("No caching was performed on the
                // server").
                let names = ctx.core.store.keys(METHODS_BUCKET);
                Ok(Value::Array(names.into_iter().map(Value::from).collect()))
            }
            "system.get_method_info" => {
                params::expect_len(params_in, 1, method)?;
                let name = params::string(params_in, 0, "name")?;
                let bytes = ctx.core.store.get(METHODS_BUCKET, &name).ok_or_else(|| {
                    Fault::new(codes::NO_SUCH_METHOD, format!("no method {name}"))
                })?;
                let text = String::from_utf8(bytes)
                    .map_err(|_| Fault::new(codes::INTERNAL, "corrupt method record"))?;
                clarens_wire::json::parse(&text)
                    .map_err(|_| Fault::new(codes::INTERNAL, "corrupt method record"))
            }
            "system.auth" => self.auth(ctx, params_in),
            "system.whoami" => {
                params::expect_len(params_in, 0, method)?;
                Ok(Value::from(ctx.require_identity()?.to_string()))
            }
            "system.logout" => {
                params::expect_len(params_in, 0, method)?;
                match &ctx.session {
                    Some(session) => Ok(Value::Bool(ctx.core.sessions.logout(&session.id))),
                    None => Ok(Value::Bool(false)),
                }
            }
            "system.version" => {
                params::expect_len(params_in, 0, method)?;
                Ok(Value::from(VERSION))
            }
            "system.ping" => {
                params::expect_len(params_in, 0, method)?;
                Ok(Value::from("pong"))
            }
            "system.health" => {
                params::expect_len(params_in, 0, method)?;
                // Public (like ping): the election manager on peer nodes
                // queries this to rank promotion candidates by exact WAL
                // cursor, and operators point probes at it. Reports only
                // coarse cluster-role facts, no user or store data.
                let fed = &ctx.core.federation;
                let role = match fed.role() {
                    crate::config::FederationRole::Leader => "leader",
                    crate::config::FederationRole::Follower => "follower",
                    crate::config::FederationRole::Standalone => "standalone",
                };
                let degraded = ctx.core.store.is_degraded();
                let lag = ctx
                    .core
                    .replication_lag
                    .load(std::sync::atomic::Ordering::Relaxed);
                let ready = !degraded
                    && (fed.role() != crate::config::FederationRole::Leader || fed.is_writable());
                Ok(Value::structure([
                    ("ready", Value::Bool(ready)),
                    ("role", Value::from(role)),
                    ("leader_epoch", Value::Int(fed.epoch() as i64)),
                    ("leader", Value::from(fed.leader())),
                    ("wal_offset", Value::Int(ctx.core.store.wal_offset() as i64)),
                    (
                        "fence_epoch",
                        Value::Int(ctx.core.store.fence_epoch() as i64),
                    ),
                    // Leader-log offset a follower has applied; elections
                    // rank promotion candidates by this, not wal_offset.
                    ("applied", Value::Int(fed.applied() as i64)),
                    ("replication_lag", Value::Int(lag as i64)),
                    ("degraded", Value::Bool(degraded)),
                ]))
            }
            "system.session_count" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("session_count requires site admin"));
                }
                Ok(Value::Int(ctx.core.sessions.count() as i64))
            }
            "system.stats" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("stats requires site admin"));
                }
                // Served from the telemetry gauge registry: the same
                // numbers `system.metrics` and `GET /metrics` export.
                let gauge =
                    |name: &str| Value::Int(ctx.core.telemetry.gauge(name).unwrap_or(0) as i64);
                let cache_value = |name: &str| {
                    Value::structure([
                        ("hits", gauge(&format!("{name}.hits"))),
                        ("misses", gauge(&format!("{name}.misses"))),
                    ])
                };
                Ok(Value::structure([
                    (
                        "db",
                        Value::structure([
                            ("lookups", gauge("db.lookups")),
                            ("scans", gauge("db.scans")),
                            ("writes", gauge("db.writes")),
                            ("wal_syncs", gauge("db.wal_syncs")),
                            ("group_commits", gauge("db.group_commits")),
                            ("compactions", gauge("db.compactions")),
                            ("live_bytes", gauge("db.live_bytes")),
                            ("wal_offset", gauge("db.wal_offset")),
                            ("replication_lag", gauge("db.replication_lag")),
                        ]),
                    ),
                    (
                        "cache",
                        Value::structure([
                            ("sessions", cache_value("cache.sessions")),
                            ("vo_groups", cache_value("cache.vo_groups")),
                            ("acl_nodes", cache_value("cache.acl_nodes")),
                            ("acl_decisions", cache_value("cache.acl_decisions")),
                        ]),
                    ),
                ]))
            }
            "system.metrics" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("metrics requires site admin"));
                }
                Ok(metrics_snapshot(&ctx.core.telemetry))
            }
            "system.trace_tail" => {
                if params_in.len() > 1 {
                    return Err(Fault::bad_params("trace_tail takes at most one parameter"));
                }
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("trace_tail requires site admin"));
                }
                let limit = match params_in.first() {
                    None => 16,
                    Some(v) => v
                        .as_int()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| Fault::bad_params("limit must be a positive int"))?
                        as usize,
                };
                let tail = ctx.core.telemetry.trace_tail(limit);
                Ok(Value::Array(tail.iter().map(slow_trace_value).collect()))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}

impl SystemService {
    /// `system.auth(chain: [string], timestamp: int, signature: bytes)`.
    ///
    /// The challenge is self-dated: the client signs
    /// `clarens-auth:<timestamp>` with its leaf key; the server accepts it
    /// within the configured clock-skew window. The chain is validated
    /// against the server's trust roots; proxy chains authenticate as the
    /// underlying user (paper §2.6 delegation semantics).
    fn auth(&self, ctx: &CallContext<'_>, params_in: &[Value]) -> Result<Value, Fault> {
        params::expect_len(params_in, 3, "system.auth")?;
        let chain_values = params_in[0]
            .as_array()
            .ok_or_else(|| Fault::bad_params("parameter 0 (chain) must be an array"))?;
        let timestamp = params::int(params_in, 1, "timestamp")?;
        let signature = params::bytes(params_in, 2, "signature")?;

        let mut chain = Vec::with_capacity(chain_values.len());
        for value in chain_values {
            let text = value
                .as_str()
                .ok_or_else(|| Fault::bad_params("chain entries must be certificate text"))?;
            chain.push(
                Certificate::from_text(text)
                    .map_err(|e| Fault::bad_params(format!("bad certificate: {e}")))?,
            );
        }
        if chain.is_empty() {
            return Err(Fault::bad_params("empty certificate chain"));
        }

        let skew = ctx.core.config.auth_skew;
        if (ctx.now - timestamp).abs() > skew {
            return Err(Fault::not_authenticated(format!(
                "challenge timestamp outside ±{skew}s window"
            )));
        }

        let identity = verify_chain(&chain, &ctx.core.roots, ctx.now)
            .map_err(|e| Fault::not_authenticated(format!("certificate chain invalid: {e}")))?;

        let message = auth_challenge(timestamp);
        chain[0]
            .public_key
            .verify(message.as_bytes(), &signature)
            .map_err(|_| Fault::not_authenticated("challenge signature invalid"))?;

        let session = ctx.core.sessions.create(&identity, ctx.now);
        Ok(Value::structure([
            ("session", Value::from(session.id)),
            ("dn", Value::from(identity.to_string())),
            ("expires", Value::Int(session.expires)),
        ]))
    }
}

/// The challenge message a client signs for `system.auth`.
pub fn auth_challenge(timestamp: i64) -> String {
    format!("clarens-auth:{timestamp}")
}

/// Render a latency histogram snapshot as an RPC structure.
fn histogram_value(snap: &clarens_telemetry::HistogramSnapshot) -> Value {
    Value::structure([
        ("count", Value::Int(snap.count as i64)),
        ("sum_us", Value::Int(snap.sum as i64)),
        ("p50_us", Value::Int(snap.p50() as i64)),
        ("p95_us", Value::Int(snap.p95() as i64)),
        ("p99_us", Value::Int(snap.p99() as i64)),
        ("max_us", Value::Int(snap.max as i64)),
    ])
}

/// The full `system.metrics` response body.
fn metrics_snapshot(telemetry: &clarens_telemetry::Telemetry) -> Value {
    let http = &telemetry.http;
    let http_value = Value::structure([
        ("connections", Value::Int(http.connections.get() as i64)),
        ("requests", Value::Int(http.requests.get() as i64)),
        (
            "keepalive_reuse",
            Value::Int(http.keepalive_reuse.get() as i64),
        ),
        ("idle_timeouts", Value::Int(http.idle_timeouts.get() as i64)),
        ("peer_resets", Value::Int(http.peer_resets.get() as i64)),
        (
            "handshake_failures",
            Value::Int(http.handshake_failures.get() as i64),
        ),
        ("responses_5xx", Value::Int(http.responses_5xx.get() as i64)),
    ]);
    let protocols = Value::structure(telemetry.protocols_snapshot().into_iter().map(
        |(name, requests, faults)| {
            (
                name,
                Value::structure([
                    ("requests", Value::Int(requests as i64)),
                    ("faults", Value::Int(faults as i64)),
                ]),
            )
        },
    ));
    let phases = Value::structure(
        telemetry
            .phase_snapshots()
            .into_iter()
            .map(|(name, snap)| (name, histogram_value(&snap))),
    );
    let methods = Value::structure(telemetry.methods_snapshot().into_iter().map(
        |(name, stats)| {
            let latency = stats.latency.snapshot();
            (
                name,
                Value::structure([
                    ("calls", Value::Int(stats.calls.get() as i64)),
                    ("faults", Value::Int(stats.faults.get() as i64)),
                    ("latency", histogram_value(&latency)),
                ]),
            )
        },
    ));
    let gauges = Value::structure(
        telemetry
            .gauges_snapshot()
            .into_iter()
            .map(|(name, value)| (name, Value::Int(value as i64))),
    );
    Value::structure([
        ("http", http_value),
        ("protocols", protocols),
        ("phases", phases),
        ("methods", methods),
        ("gauges", gauges),
        (
            "slow_traces",
            Value::Int(telemetry.slow_trace_count() as i64),
        ),
    ])
}

/// Render one slow-request trace for `system.trace_tail`.
fn slow_trace_value(trace: &clarens_telemetry::SlowTrace) -> Value {
    use clarens_telemetry::PHASE_NAMES;
    Value::structure([
        ("seq", Value::Int(trace.seq as i64)),
        ("time", Value::Int(trace.unix_time)),
        (
            "method",
            Value::from(trace.method.clone().unwrap_or_default()),
        ),
        ("protocol", Value::from(trace.protocol.unwrap_or(""))),
        ("status", Value::Int(trace.status as i64)),
        ("fault", Value::Bool(trace.fault)),
        ("total_us", Value::Int(trace.total_us as i64)),
        (
            "phases",
            Value::structure(
                PHASE_NAMES
                    .iter()
                    .zip(trace.phase_us.iter())
                    .map(|(name, us)| (*name, Value::Int(*us as i64))),
            ),
        ),
    ])
}
