//! The built-in Clarens service modules.
//!
//! Paper §2 lists the core services: VO management, ACL management, remote
//! file access, discovery, the shell service, and the proxy service; the
//! `system` module provides introspection and authentication, and `echo`
//! is the trivial method used for cross-framework comparisons (the paper's
//! footnote 4 measures "a trivial method" on Globus GTK 3).

pub mod acl_admin;
pub mod discovery;
pub mod echo;
pub mod file;
pub mod im;
pub mod job;
pub mod proxy;
pub mod replication;
pub mod shell;
pub mod srm;
pub mod system;
pub mod vo_admin;

pub use acl_admin::AclAdminService;
pub use discovery::DiscoveryService;
pub use echo::EchoService;
pub use file::FileService;
pub use im::ImService;
pub use job::JobService;
pub use proxy::ProxyService;
pub use replication::ReplicationService;
pub use shell::ShellService;
pub use srm::SrmService;
pub use system::SystemService;
pub use vo_admin::VoAdminService;

/// Methods callable without an authenticated identity (they establish or
/// bootstrap identity). Everything else requires a session or TLS identity
/// plus an ACL grant.
pub const PUBLIC_METHODS: &[&str] = &[
    "system.auth",
    "system.version",
    "system.ping",
    "proxy.login",
];

/// Is `method` public?
pub fn is_public(method: &str) -> bool {
    PUBLIC_METHODS.contains(&method)
}
