//! The built-in Clarens service modules.
//!
//! Paper §2 lists the core services: VO management, ACL management, remote
//! file access, discovery, the shell service, and the proxy service; the
//! `system` module provides introspection and authentication, and `echo`
//! is the trivial method used for cross-framework comparisons (the paper's
//! footnote 4 measures "a trivial method" on Globus GTK 3).

pub mod acl_admin;
pub mod discovery;
pub mod echo;
pub mod file;
pub mod im;
pub mod job;
pub mod proxy;
pub mod replication;
pub mod shell;
pub mod srm;
pub mod system;
pub mod vo_admin;

pub use acl_admin::AclAdminService;
pub use discovery::DiscoveryService;
pub use echo::EchoService;
pub use file::FileService;
pub use im::ImService;
pub use job::JobService;
pub use proxy::ProxyService;
pub use replication::ReplicationService;
pub use shell::ShellService;
pub use srm::SrmService;
pub use system::SystemService;
pub use vo_admin::VoAdminService;

/// Methods callable without an authenticated identity (they establish or
/// bootstrap identity). Everything else requires a session or TLS identity
/// plus an ACL grant.
pub const PUBLIC_METHODS: &[&str] = &[
    "system.auth",
    "system.version",
    "system.ping",
    "system.health",
    "proxy.login",
];

/// Is `method` public?
pub fn is_public(method: &str) -> bool {
    PUBLIC_METHODS.contains(&method)
}

/// Methods that mutate the *replicated* store (sessions, VO groups, ACLs,
/// stored proxies, IM mailboxes). On a federated node these may only be
/// acknowledged by the current leader — a follower or a fenced/deposed
/// leader answers `NOT_LEADER` with a routing hint instead (DESIGN.md
/// §14). Node-local services (file, shell, job, srm) mutate the local
/// filesystem, not the shipped log, and are deliberately absent.
pub const REPLICATED_WRITE_METHODS: &[&str] = &[
    "system.auth",
    "system.logout",
    "proxy.login",
    "proxy.store",
    "proxy.attach",
    "proxy.remove",
    "vo.create_group",
    "vo.delete_group",
    "vo.add_member",
    "vo.remove_member",
    "vo.add_admin",
    "vo.remove_admin",
    "acl.set_method",
    "acl.clear_method",
    "acl.set_file",
    "acl.clear_file",
    "im.send",
    // `im.poll` consumes (deletes) delivered messages, so the consume
    // must happen on the leader to take effect cluster-wide.
    "im.poll",
];

/// Does `method` mutate replicated state (and therefore require the
/// leader)?
pub fn is_replicated_write(method: &str) -> bool {
    REPLICATED_WRITE_METHODS.contains(&method)
}
