//! The shell service (paper §2.5): sandboxed command execution for
//! authorized clients.
//!
//! "The command is executed by a designated local system user. The local
//! system user is designated by using an ACL file ... named
//! `.clarens_user_map` file, which maps user distinguished names to local
//! system users. ... Execution takes place in a sandbox owned by the local
//! system user. This sandbox can be created or re-used for subsequent
//! commands and is visible to the file service."
//!
//! **Substitution (see DESIGN.md):** executing arbitrary `/bin/sh` under
//! real UNIX accounts requires root and provisioned users; instead the
//! service interprets a safe builtin command set *inside* the per-user
//! sandbox directory. The security-relevant semantics are preserved: DN →
//! system-user mapping (by DN prefix or VO group), ACL-gated access,
//! per-user sandbox isolation, and sandbox visibility to the file service
//! (sandboxes live under the shell root, which deployments point the file
//! service at).

use std::path::{Path, PathBuf};

use clarens_pki::dn::DistinguishedName;
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::paths;
use crate::registry::{params, CallContext, MethodInfo, Service};
use crate::vo::VoManager;

/// One `.clarens_user_map` mapping tuple: "a system user name string,
/// followed by a list of user distinguished name strings, a list of group
/// name strings, and a final list reserved for future use".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMapping {
    /// The local system user commands run as.
    pub system_user: String,
    /// DN prefixes mapping to this user.
    pub dns: Vec<String>,
    /// VO groups mapping to this user.
    pub groups: Vec<String>,
}

/// The parsed user map.
#[derive(Debug, Clone, Default)]
pub struct UserMap {
    /// Mapping tuples in file order (first match wins).
    pub mappings: Vec<UserMapping>,
}

impl UserMap {
    /// Parse the user-map text. Format, one mapping per line:
    ///
    /// ```text
    /// # comment
    /// joe: dn=/DC=org/DC=doegrids/OU=People/CN=Joe User
    /// joe: group=cms.production
    /// ```
    ///
    /// Repeated lines for the same system user accumulate.
    pub fn parse(text: &str) -> Result<UserMap, String> {
        let mut map = UserMap::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (user, rest) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected 'user: ...'", lineno + 1))?;
            let user = user.trim();
            let rest = rest.trim();
            let mapping = match map.mappings.iter_mut().find(|m| m.system_user == user) {
                Some(existing) => existing,
                None => {
                    map.mappings.push(UserMapping {
                        system_user: user.to_owned(),
                        dns: Vec::new(),
                        groups: Vec::new(),
                    });
                    map.mappings.last_mut().unwrap()
                }
            };
            if let Some(dn) = rest.strip_prefix("dn=") {
                mapping.dns.push(dn.trim().to_owned());
            } else if let Some(group) = rest.strip_prefix("group=") {
                mapping.groups.push(group.trim().to_owned());
            } else {
                return Err(format!("line {}: expected dn=... or group=...", lineno + 1));
            }
        }
        Ok(map)
    }

    /// Map a caller DN to a local system user (first matching tuple wins).
    pub fn map(&self, dn: &DistinguishedName, vo: &VoManager) -> Option<&str> {
        for mapping in &self.mappings {
            let dn_hit = mapping.dns.iter().any(|entry| {
                DistinguishedName::parse(entry)
                    .map(|prefix| dn.has_prefix(&prefix))
                    .unwrap_or(false)
            });
            if dn_hit || mapping.groups.iter().any(|g| vo.is_member(g, dn)) {
                return Some(&mapping.system_user);
            }
        }
        None
    }
}

/// The `shell` service.
pub struct ShellService {
    root: PathBuf,
    user_map: UserMap,
}

impl ShellService {
    /// Create the service; sandboxes live under `root/<system_user>/`.
    pub fn new(root: PathBuf, user_map: UserMap) -> Self {
        ShellService { root, user_map }
    }

    fn sandbox_for(&self, ctx: &CallContext<'_>) -> Result<(String, PathBuf), Fault> {
        let dn = ctx.require_identity()?;
        let user = self
            .user_map
            .map(dn, &ctx.core.vo)
            .ok_or_else(|| Fault::access_denied(format!("no .clarens_user_map entry for {dn}")))?
            .to_owned();
        let sandbox = self.root.join(&user);
        std::fs::create_dir_all(&sandbox)
            .map_err(|e| Fault::service(format!("cannot create sandbox: {e}")))?;
        Ok((user, sandbox))
    }
}

impl Service for ShellService {
    fn module(&self) -> &str {
        "shell"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "shell.cmd",
                "shell.cmd(command)",
                "Run a sandboxed command as the mapped system user",
            ),
            MethodInfo::new(
                "shell.cmd_info",
                "shell.cmd_info()",
                "The mapped system user and sandbox directory",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "shell.cmd" => {
                params::expect_len(params_in, 1, method)?;
                let command = params::string(params_in, 0, "command")?;
                let (_user, sandbox) = self.sandbox_for(ctx)?;
                let outcome = interp::run(&sandbox, &command);
                Ok(Value::structure([
                    ("stdout", Value::from(outcome.stdout)),
                    ("stderr", Value::from(outcome.stderr)),
                    ("status", Value::Int(outcome.status)),
                ]))
            }
            "shell.cmd_info" => {
                params::expect_len(params_in, 0, method)?;
                let (user, _sandbox) = self.sandbox_for(ctx)?;
                // The *virtual* sandbox path (visible to the file service
                // when its root is the shell root).
                Ok(Value::structure([
                    ("user", Value::from(user.clone())),
                    ("sandbox", Value::from(format!("/{user}"))),
                ]))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}

/// The sandboxed mini-shell interpreter.
pub mod interp {
    use super::*;

    /// Result of one command.
    #[derive(Debug, Default, PartialEq, Eq)]
    pub struct Outcome {
        /// Captured stdout.
        pub stdout: String,
        /// Captured stderr.
        pub stderr: String,
        /// 0 on success.
        pub status: i64,
    }

    fn fail(message: impl Into<String>) -> Outcome {
        Outcome {
            stdout: String::new(),
            stderr: message.into(),
            status: 1,
        }
    }

    /// Tokenize a command line with single/double quotes.
    pub fn tokenize(line: &str) -> Result<Vec<String>, String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        let mut chars = line.chars().peekable();
        let mut in_token = false;
        while let Some(c) = chars.next() {
            match c {
                ' ' | '\t' => {
                    if in_token {
                        tokens.push(std::mem::take(&mut current));
                        in_token = false;
                    }
                }
                '\'' | '"' => {
                    in_token = true;
                    let quote = c;
                    loop {
                        match chars.next() {
                            Some(q) if q == quote => break,
                            Some(other) => current.push(other),
                            None => return Err("unterminated quote".into()),
                        }
                    }
                }
                other => {
                    in_token = true;
                    current.push(other);
                }
            }
        }
        if in_token {
            tokens.push(current);
        }
        Ok(tokens)
    }

    /// Resolve a sandbox-relative path; `None` on escape attempts.
    fn resolve(sandbox: &Path, path: &str) -> Option<PathBuf> {
        paths::resolve(sandbox, path)
    }

    /// Run one command line inside `sandbox`.
    pub fn run(sandbox: &Path, line: &str) -> Outcome {
        let tokens = match tokenize(line) {
            Ok(t) => t,
            Err(e) => return fail(format!("parse error: {e}")),
        };
        if tokens.is_empty() {
            return Outcome::default();
        }
        // Optional trailing redirection: cmd args > file / >> file.
        let (argv, redirect) = match tokens.iter().position(|t| t == ">" || t == ">>") {
            Some(pos) => {
                if pos + 2 != tokens.len() {
                    return fail("redirection expects exactly one target");
                }
                (
                    tokens[..pos].to_vec(),
                    Some((tokens[pos] == ">>", tokens[pos + 1].clone())),
                )
            }
            None => (tokens.clone(), None),
        };
        if argv.is_empty() {
            return fail("missing command");
        }
        let mut outcome = execute(sandbox, &argv[0], &argv[1..]);
        if let Some((append, target)) = redirect {
            if outcome.status == 0 {
                let Some(real) = resolve(sandbox, &target) else {
                    return fail(format!("{target}: outside sandbox"));
                };
                let result = if append {
                    use std::io::Write as _;
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&real)
                        .and_then(|mut f| f.write_all(outcome.stdout.as_bytes()))
                } else {
                    std::fs::write(&real, outcome.stdout.as_bytes())
                };
                if let Err(e) = result {
                    return fail(format!("{target}: {e}"));
                }
                outcome.stdout = String::new();
            }
        }
        outcome
    }

    fn execute(sandbox: &Path, cmd: &str, args: &[String]) -> Outcome {
        match cmd {
            "echo" => Outcome {
                stdout: format!("{}\n", args.join(" ")),
                ..Default::default()
            },
            "pwd" => Outcome {
                stdout: "/\n".into(),
                ..Default::default()
            },
            "true" => Outcome::default(),
            "false" => Outcome {
                status: 1,
                ..Default::default()
            },
            "whoami" => Outcome {
                stdout: format!(
                    "{}\n",
                    sandbox
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                ),
                ..Default::default()
            },
            "ls" => {
                let target = args.first().map(String::as_str).unwrap_or("/");
                let Some(real) = resolve(sandbox, target) else {
                    return fail(format!("ls: {target}: outside sandbox"));
                };
                match std::fs::read_dir(&real) {
                    Ok(entries) => {
                        let mut names: Vec<String> = entries
                            .filter_map(|e| e.ok())
                            .map(|e| {
                                let mut name = e.file_name().to_string_lossy().into_owned();
                                if e.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                                    name.push('/');
                                }
                                name
                            })
                            .collect();
                        names.sort();
                        Outcome {
                            stdout: names.join("\n") + if names.is_empty() { "" } else { "\n" },
                            ..Default::default()
                        }
                    }
                    Err(e) => fail(format!("ls: {target}: {e}")),
                }
            }
            "cat" => {
                if args.is_empty() {
                    return fail("cat: missing operand");
                }
                let mut stdout = String::new();
                for arg in args {
                    let Some(real) = resolve(sandbox, arg) else {
                        return fail(format!("cat: {arg}: outside sandbox"));
                    };
                    match std::fs::read_to_string(&real) {
                        Ok(text) => stdout.push_str(&text),
                        Err(e) => return fail(format!("cat: {arg}: {e}")),
                    }
                }
                Outcome {
                    stdout,
                    ..Default::default()
                }
            }
            "mkdir" => {
                if args.is_empty() {
                    return fail("mkdir: missing operand");
                }
                for arg in args {
                    let Some(real) = resolve(sandbox, arg) else {
                        return fail(format!("mkdir: {arg}: outside sandbox"));
                    };
                    if let Err(e) = std::fs::create_dir_all(&real) {
                        return fail(format!("mkdir: {arg}: {e}"));
                    }
                }
                Outcome::default()
            }
            "rm" => {
                if args.is_empty() {
                    return fail("rm: missing operand");
                }
                for arg in args {
                    let Some(real) = resolve(sandbox, arg) else {
                        return fail(format!("rm: {arg}: outside sandbox"));
                    };
                    let result = if real.is_dir() {
                        std::fs::remove_dir_all(&real)
                    } else {
                        std::fs::remove_file(&real)
                    };
                    if let Err(e) = result {
                        return fail(format!("rm: {arg}: {e}"));
                    }
                }
                Outcome::default()
            }
            "touch" => {
                if args.is_empty() {
                    return fail("touch: missing operand");
                }
                for arg in args {
                    let Some(real) = resolve(sandbox, arg) else {
                        return fail(format!("touch: {arg}: outside sandbox"));
                    };
                    if let Err(e) = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&real)
                    {
                        return fail(format!("touch: {arg}: {e}"));
                    }
                }
                Outcome::default()
            }
            "cp" | "mv" => {
                if args.len() != 2 {
                    return fail(format!("{cmd}: expects source and destination"));
                }
                let (Some(src), Some(dst)) =
                    (resolve(sandbox, &args[0]), resolve(sandbox, &args[1]))
                else {
                    return fail(format!("{cmd}: path outside sandbox"));
                };
                let result = if cmd == "cp" {
                    std::fs::copy(&src, &dst).map(|_| ())
                } else {
                    std::fs::rename(&src, &dst)
                };
                match result {
                    Ok(()) => Outcome::default(),
                    Err(e) => fail(format!("{cmd}: {e}")),
                }
            }
            "wc" => {
                if args.is_empty() {
                    return fail("wc: missing operand");
                }
                let Some(real) = resolve(sandbox, &args[0]) else {
                    return fail(format!("wc: {}: outside sandbox", args[0]));
                };
                match std::fs::read_to_string(&real) {
                    Ok(text) => Outcome {
                        stdout: format!(
                            "{} {} {} {}\n",
                            text.lines().count(),
                            text.split_whitespace().count(),
                            text.len(),
                            args[0]
                        ),
                        ..Default::default()
                    },
                    Err(e) => fail(format!("wc: {}: {e}", args[0])),
                }
            }
            "head" | "tail" => {
                let (n, file) = match args {
                    [flag, n, file] if flag == "-n" => match n.parse::<usize>() {
                        Ok(n) => (n, file),
                        Err(_) => return fail(format!("{cmd}: bad count {n:?}")),
                    },
                    [file] => (10, file),
                    _ => return fail(format!("{cmd}: usage: {cmd} [-n N] FILE")),
                };
                let Some(real) = resolve(sandbox, file) else {
                    return fail(format!("{cmd}: {file}: outside sandbox"));
                };
                match std::fs::read_to_string(&real) {
                    Ok(text) => {
                        let lines: Vec<&str> = text.lines().collect();
                        let selected: Vec<&str> = if cmd == "head" {
                            lines.iter().take(n).copied().collect()
                        } else {
                            lines.iter().rev().take(n).rev().copied().collect()
                        };
                        let mut stdout = selected.join("\n");
                        if !stdout.is_empty() {
                            stdout.push('\n');
                        }
                        Outcome {
                            stdout,
                            ..Default::default()
                        }
                    }
                    Err(e) => fail(format!("{cmd}: {file}: {e}")),
                }
            }
            "find" => {
                let start = args.first().map(String::as_str).unwrap_or("/");
                let pattern = args.get(1).map(String::as_str).unwrap_or("");
                let Some(real) = resolve(sandbox, start) else {
                    return fail(format!("find: {start}: outside sandbox"));
                };
                let mut hits = Vec::new();
                let virtual_start = paths::canonical(start).unwrap_or_else(|| "/".into());
                collect_find(&real, &virtual_start, pattern, &mut hits, 0);
                hits.sort();
                let mut stdout = hits.join("\n");
                if !stdout.is_empty() {
                    stdout.push('\n');
                }
                Outcome {
                    stdout,
                    ..Default::default()
                }
            }
            other => fail(format!("{other}: command not found")),
        }
    }

    fn collect_find(
        real: &Path,
        virtual_prefix: &str,
        pattern: &str,
        hits: &mut Vec<String>,
        depth: usize,
    ) {
        if depth > 16 {
            return;
        }
        let Ok(entries) = std::fs::read_dir(real) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            let vpath = if virtual_prefix == "/" {
                format!("/{name}")
            } else {
                format!("{virtual_prefix}/{name}")
            };
            if pattern.is_empty() || name.contains(pattern) {
                hits.push(vpath.clone());
            }
            if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                collect_find(&entry.path(), &vpath, pattern, hits, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_map_parsing() {
        let text = r#"
# comments ignored
joe: dn=/DC=org/DC=doegrids/OU=People/CN=Joe User
joe: group=cms.production
ops: dn=/O=grid/OU=Operations
"#;
        let map = UserMap::parse(text).unwrap();
        assert_eq!(map.mappings.len(), 2);
        assert_eq!(map.mappings[0].system_user, "joe");
        assert_eq!(map.mappings[0].dns.len(), 1);
        assert_eq!(map.mappings[0].groups, vec!["cms.production"]);
        assert!(UserMap::parse("bad line").is_err());
        assert!(UserMap::parse("joe: what=x").is_err());
    }

    #[test]
    fn tokenizer() {
        use interp::tokenize;
        assert_eq!(tokenize("ls /a b").unwrap(), vec!["ls", "/a", "b"]);
        assert_eq!(
            tokenize("echo 'hello world'").unwrap(),
            vec!["echo", "hello world"]
        );
        assert_eq!(tokenize("echo \"a 'b'\"").unwrap(), vec!["echo", "a 'b'"]);
        assert_eq!(tokenize("  spaced   out  ").unwrap(), vec!["spaced", "out"]);
        assert_eq!(tokenize("").unwrap(), Vec::<String>::new());
        assert!(tokenize("echo 'unterminated").is_err());
        // Empty quoted strings are real tokens.
        assert_eq!(tokenize("echo ''").unwrap(), vec!["echo", ""]);
    }

    fn sandbox(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clarens-shell-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn basic_commands() {
        let sb = sandbox("basic");
        let run = |line: &str| interp::run(&sb, line);

        assert_eq!(run("echo hello world").stdout, "hello world\n");
        assert_eq!(run("pwd").stdout, "/\n");
        assert_eq!(run("true").status, 0);
        assert_eq!(run("false").status, 1);

        assert_eq!(run("mkdir /data").status, 0);
        assert_eq!(run("echo content > /data/f.txt").status, 0);
        assert_eq!(run("cat /data/f.txt").stdout, "content\n");
        assert_eq!(run("echo more >> /data/f.txt").status, 0);
        assert_eq!(run("cat /data/f.txt").stdout, "content\nmore\n");

        let ls = run("ls /");
        assert!(ls.stdout.contains("data/"), "{}", ls.stdout);
        assert_eq!(run("cp /data/f.txt /copy.txt").status, 0);
        assert_eq!(run("cat /copy.txt").stdout, "content\nmore\n");
        assert_eq!(run("mv /copy.txt /moved.txt").status, 0);
        assert_eq!(run("cat /moved.txt").status, 0);
        assert_eq!(run("cat /copy.txt").status, 1);
        assert_eq!(run("rm /moved.txt").status, 0);

        let wc = run("wc /data/f.txt");
        assert!(wc.stdout.starts_with("2 2 13"), "{}", wc.stdout);
        std::fs::remove_dir_all(&sb).unwrap();
    }

    #[test]
    fn head_tail_find() {
        let sb = sandbox("headtail");
        let run = |line: &str| interp::run(&sb, line);
        run("mkdir /logs");
        for i in 0..20 {
            run(&format!("echo line{i} >> /logs/app.log"));
        }
        assert_eq!(run("head -n 2 /logs/app.log").stdout, "line0\nline1\n");
        assert_eq!(run("tail -n 2 /logs/app.log").stdout, "line18\nline19\n");
        assert_eq!(run("head /logs/app.log").stdout.lines().count(), 10);
        run("touch /logs/other.txt");
        let find = run("find / log");
        assert!(find.stdout.contains("/logs\n"), "{}", find.stdout);
        assert!(find.stdout.contains("/logs/app.log\n"), "{}", find.stdout);
        assert!(!find.stdout.contains("other.txt"), "{}", find.stdout);
        std::fs::remove_dir_all(&sb).unwrap();
    }

    #[test]
    fn sandbox_escapes_rejected() {
        let sb = sandbox("escape");
        let run = |line: &str| interp::run(&sb, line);
        for cmd in [
            "cat /../../../etc/passwd",
            "ls ..",
            "rm ../outside",
            "echo pwned > /../escape.txt",
            "cp /../../etc/passwd /steal",
            "find /.. passwd",
        ] {
            let outcome = run(cmd);
            assert_ne!(outcome.status, 0, "{cmd} must fail");
            assert!(
                outcome.stderr.contains("outside sandbox") || outcome.stderr.contains("error"),
                "{cmd}: {}",
                outcome.stderr
            );
        }
        // Nothing leaked above the sandbox.
        assert!(!sb.parent().unwrap().join("escape.txt").exists());
        std::fs::remove_dir_all(&sb).unwrap();
    }

    #[test]
    fn unknown_command_and_errors() {
        let sb = sandbox("unknown");
        let run = |line: &str| interp::run(&sb, line);
        let outcome = run("format_disk");
        assert_eq!(outcome.status, 1);
        assert!(outcome.stderr.contains("command not found"));
        assert_eq!(run("cat /ghost").status, 1);
        assert_eq!(run("cat").status, 1);
        assert_eq!(run("cp onlyone").status, 1);
        assert_eq!(run("echo x > a > b").status, 1); // double redirect
        assert_eq!(run("").status, 0); // empty line is a no-op
        std::fs::remove_dir_all(&sb).unwrap();
    }
}
