//! The instant-messaging service — the paper's §6 future-work item,
//! implemented as an extension.
//!
//! "The current Clarens Web Service implementation was designed for a
//! request response mode of operation, making it ill-suited for ...
//! asynchronous bi-directional communication ... An instant messaging (IM)
//! architecture provides the possibility to overcome this limitation.
//! Since messages can be sent and received by jobs asynchronously, jobs
//! can be instrumented to act as Clarens ... clients sending information
//! to monitoring systems or remote debugging tools."
//!
//! Model: per-identity mailboxes persisted in the store (so messages, like
//! sessions, survive server restarts). A job behind NAT polls its mailbox
//! over ordinary outbound HTTP — exactly the firewall-traversal pattern
//! the paper motivates.

use std::sync::atomic::{AtomicU64, Ordering};

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service};

/// DB bucket for queued messages. Keys are `<recipient-dn>|<seq:020>` so a
/// prefix scan per recipient yields messages in send order.
pub const IM_BUCKET: &str = "im.messages";

/// Upper bound on message body size.
pub const MAX_BODY: usize = 64 * 1024;
/// Upper bound on undelivered messages per recipient (backpressure).
pub const MAX_QUEUE: usize = 1024;

/// The `im` service.
pub struct ImService {
    seq: AtomicU64,
}

impl Default for ImService {
    fn default() -> Self {
        Self::new()
    }
}

impl ImService {
    /// Create the service (the sequence counter resumes past any persisted
    /// messages on first use).
    pub fn new() -> Self {
        ImService {
            seq: AtomicU64::new(0),
        }
    }

    fn next_seq(&self, ctx: &CallContext<'_>) -> u64 {
        // Lazily initialize past the largest persisted sequence.
        if self.seq.load(Ordering::Relaxed) == 0 {
            let max = ctx
                .core
                .store
                .keys(IM_BUCKET)
                .into_iter()
                .filter_map(|k| k.rsplit('|').next().and_then(|s| s.parse::<u64>().ok()))
                .max()
                .unwrap_or(0);
            let _ = self
                .seq
                .compare_exchange(0, max + 1, Ordering::SeqCst, Ordering::SeqCst);
        }
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    fn mailbox_prefix(dn: &str) -> String {
        format!("{dn}|")
    }
}

fn message_value(from: &str, body: &str, timestamp: i64, seq: u64) -> Value {
    Value::structure([
        ("from", Value::from(from)),
        ("body", Value::from(body)),
        ("timestamp", Value::Int(timestamp)),
        ("seq", Value::Int(seq as i64)),
    ])
}

impl Service for ImService {
    fn module(&self) -> &str {
        "im"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "im.send",
                "im.send(to_dn, body)",
                "Queue a message for another identity; returns the sequence number",
            ),
            MethodInfo::new(
                "im.poll",
                "im.poll(max)",
                "Receive (and consume) up to max queued messages for the caller",
            ),
            MethodInfo::new(
                "im.peek",
                "im.peek(max)",
                "Read up to max queued messages without consuming them",
            ),
            MethodInfo::new(
                "im.count",
                "im.count()",
                "Number of queued messages for the caller",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "im.send" => {
                params::expect_len(params_in, 2, method)?;
                let sender = ctx.require_identity()?.to_string();
                let to = params::string(params_in, 0, "to_dn")?;
                let body = params::string(params_in, 1, "body")?;
                if body.len() > MAX_BODY {
                    return Err(Fault::bad_params(format!(
                        "message body exceeds {MAX_BODY} bytes"
                    )));
                }
                // Recipient must be a parseable DN (messages to garbage
                // addresses would queue forever).
                clarens_pki::DistinguishedName::parse(&to)
                    .map_err(|e| Fault::bad_params(format!("bad recipient: {e}")))?;
                let queued = ctx
                    .core
                    .store
                    .scan_prefix(IM_BUCKET, &Self::mailbox_prefix(&to))
                    .len();
                if queued >= MAX_QUEUE {
                    return Err(Fault::service(format!(
                        "recipient mailbox full ({MAX_QUEUE} messages)"
                    )));
                }
                let seq = self.next_seq(ctx);
                let key = format!("{to}|{seq:020}");
                let value = message_value(&sender, &body, ctx.now, seq);
                ctx.core
                    .store
                    .put(
                        IM_BUCKET,
                        &key,
                        clarens_wire::json::to_string(&value).into_bytes(),
                    )
                    .map_err(|e| crate::store_fault("im queue", &e))?;
                Ok(Value::Int(seq as i64))
            }
            "im.poll" | "im.peek" => {
                params::expect_len(params_in, 1, method)?;
                let me = ctx.require_identity()?.to_string();
                let max = params::int(params_in, 0, "max")?.clamp(0, 256) as usize;
                let prefix = Self::mailbox_prefix(&me);
                let mut out = Vec::new();
                for (key, bytes) in ctx.core.store.scan_prefix(IM_BUCKET, &prefix) {
                    if out.len() >= max {
                        break;
                    }
                    if let Ok(text) = String::from_utf8(bytes) {
                        if let Ok(value) = clarens_wire::json::parse(&text) {
                            out.push(value);
                            if method == "im.poll" {
                                let _ = ctx.core.store.delete(IM_BUCKET, &key);
                            }
                        }
                    }
                }
                Ok(Value::Array(out))
            }
            "im.count" => {
                params::expect_len(params_in, 0, method)?;
                let me = ctx.require_identity()?.to_string();
                Ok(Value::Int(
                    ctx.core
                        .store
                        .scan_prefix(IM_BUCKET, &Self::mailbox_prefix(&me))
                        .len() as i64,
                ))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
