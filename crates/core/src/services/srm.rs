//! The SRM (Storage Resource Manager) service — the paper's §6 mass-storage
//! future-work item, implemented as an extension.
//!
//! "Although Clarens provides remote file access through a Web Service, it
//! does not support interfaces to mass storage facilities yet. Work is
//! under way to provide an SRM service interface to dCache such that
//! Clarens can support robust file transfer between different mass storage
//! facilities."
//!
//! Substitution (DESIGN.md): no dCache/tape silo exists here, so mass
//! storage is simulated by a staging model — every file is notionally "on
//! tape" until a stage request brings it "online" after a configurable
//! latency, which is precisely the SRM v1 `get`/`getRequestStatus`
//! interaction pattern. Third-party transfer (`srm.pull`) is real: this
//! server fetches a file from *another* Clarens server's streamed GET
//! endpoint, verifies its MD5, and lands it in local storage with retries.

use std::path::PathBuf;

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::acl::FileAccess;
use crate::paths;
use crate::registry::{params, CallContext, MethodInfo, Service};

/// DB bucket for stage requests (token → request record).
pub const SRM_BUCKET: &str = "srm.requests";

/// The `srm` service.
pub struct SrmService {
    root: PathBuf,
    /// Simulated tape latency: seconds between `srm.stage` and the file
    /// becoming online.
    stage_delay: i64,
}

impl SrmService {
    /// Create the service over the same root as the file service.
    pub fn new(root: PathBuf, stage_delay: i64) -> Self {
        SrmService { root, stage_delay }
    }

    fn load_request(&self, ctx: &CallContext<'_>, token: &str) -> Result<Value, Fault> {
        let bytes = ctx
            .core
            .store
            .get(SRM_BUCKET, token)
            .ok_or_else(|| Fault::service(format!("no such request {token}")))?;
        clarens_wire::json::parse(
            std::str::from_utf8(&bytes)
                .map_err(|_| Fault::new(codes::INTERNAL, "corrupt request record"))?,
        )
        .map_err(|_| Fault::new(codes::INTERNAL, "corrupt request record"))
    }

    fn state_of(&self, request: &Value, now: i64) -> &'static str {
        if request
            .get("released")
            .and_then(Value::as_bool)
            .unwrap_or(false)
        {
            return "released";
        }
        let ready_at = request
            .get("ready_at")
            .and_then(Value::as_int)
            .unwrap_or(i64::MAX);
        if now >= ready_at {
            "online"
        } else {
            "staging"
        }
    }
}

impl Service for SrmService {
    fn module(&self) -> &str {
        "srm"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "srm.stage",
                "srm.stage(path)",
                "Request a file be staged from mass storage; returns a request token",
            ),
            MethodInfo::new(
                "srm.status",
                "srm.status(token)",
                "Stage-request status: staging | online | released",
            ),
            MethodInfo::new(
                "srm.get",
                "srm.get(token, offset, nbytes)",
                "Read from a staged (online) file",
            ),
            MethodInfo::new(
                "srm.release",
                "srm.release(token)",
                "Release a staged file (it returns to tape)",
            ),
            MethodInfo::new(
                "srm.pull",
                "srm.pull(source_url, dest_path, expected_md5)",
                "Third-party transfer: fetch a remote Clarens file into local storage (MD5-verified, retried)",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "srm.stage" => {
                params_helper::expect(params_in, 1, method)?;
                let path = params::string(params_in, 0, "path")?;
                let dn = ctx.require_identity()?;
                let canonical = paths::canonical(&path)
                    .ok_or_else(|| Fault::bad_params(format!("illegal path {path:?}")))?;
                if !ctx
                    .core
                    .acl
                    .check_file(&canonical, FileAccess::Read, dn, &ctx.core.vo)
                {
                    return Err(Fault::access_denied(format!(
                        "no read access to {canonical}"
                    )));
                }
                let real = paths::resolve(&self.root, &path)
                    .ok_or_else(|| Fault::bad_params("illegal path"))?;
                if !real.is_file() {
                    return Err(Fault::service(format!("{canonical}: not in mass storage")));
                }
                // Mint a token and schedule the staging completion.
                let token = clarens_pki::sha256::to_hex(&clarens_pki::sha256::sha256(
                    format!("{canonical}|{}|{}", dn, ctx.now).as_bytes(),
                ));
                let record = Value::structure([
                    ("path", Value::from(canonical)),
                    ("owner", Value::from(dn.to_string())),
                    ("ready_at", Value::Int(ctx.now + self.stage_delay)),
                    ("released", Value::Bool(false)),
                ]);
                ctx.core
                    .store
                    .put(
                        SRM_BUCKET,
                        &token,
                        clarens_wire::json::to_string(&record).into_bytes(),
                    )
                    .map_err(|e| crate::store_fault("srm store", &e))?;
                Ok(Value::structure([
                    ("token", Value::from(token)),
                    ("estimated_seconds", Value::Int(self.stage_delay)),
                ]))
            }
            "srm.status" => {
                params_helper::expect(params_in, 1, method)?;
                ctx.require_identity()?;
                let token = params::string(params_in, 0, "token")?;
                let request = self.load_request(ctx, &token)?;
                Ok(Value::structure([
                    ("state", Value::from(self.state_of(&request, ctx.now))),
                    ("path", request.get("path").cloned().unwrap_or(Value::Nil)),
                ]))
            }
            "srm.get" => {
                params_helper::expect(params_in, 3, method)?;
                let dn = ctx.require_identity()?;
                let token = params::string(params_in, 0, "token")?;
                let offset = params::int(params_in, 1, "offset")?;
                let nbytes = params::int(params_in, 2, "nbytes")?;
                let request = self.load_request(ctx, &token)?;
                if request.get("owner").and_then(Value::as_str) != Some(&dn.to_string()) {
                    return Err(Fault::access_denied("not your stage request"));
                }
                match self.state_of(&request, ctx.now) {
                    "online" => {}
                    state => {
                        return Err(Fault::service(format!(
                            "file not online (state: {state}) — SRM_FILE_NOT_READY"
                        )))
                    }
                }
                let path = request
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| Fault::new(codes::INTERNAL, "corrupt request"))?;
                // Delegate to the file-service semantics for the read.
                let file_service = super::FileService::new(self.root.clone());
                crate::registry::Service::call(
                    &file_service,
                    ctx,
                    "file.read",
                    &[Value::from(path), Value::Int(offset), Value::Int(nbytes)],
                )
            }
            "srm.release" => {
                params_helper::expect(params_in, 1, method)?;
                let dn = ctx.require_identity()?;
                let token = params::string(params_in, 0, "token")?;
                let request = self.load_request(ctx, &token)?;
                if request.get("owner").and_then(Value::as_str) != Some(&dn.to_string()) {
                    return Err(Fault::access_denied("not your stage request"));
                }
                let mut map = request.as_struct().cloned().unwrap_or_default();
                map.insert("released".into(), Value::Bool(true));
                ctx.core
                    .store
                    .put(
                        SRM_BUCKET,
                        &token,
                        clarens_wire::json::to_string(&Value::Struct(map)).into_bytes(),
                    )
                    .map_err(|e| crate::store_fault("srm store", &e))?;
                Ok(Value::Bool(true))
            }
            "srm.pull" => {
                params_helper::expect(params_in, 3, method)?;
                let dn = ctx.require_identity()?;
                let source_url = params::string(params_in, 0, "source_url")?;
                let dest = params::string(params_in, 1, "dest_path")?;
                let expected_md5 = params::string(params_in, 2, "expected_md5")?;

                let canonical_dest = paths::canonical(&dest)
                    .ok_or_else(|| Fault::bad_params(format!("illegal path {dest:?}")))?;
                if !ctx
                    .core
                    .acl
                    .check_file(&canonical_dest, FileAccess::Write, dn, &ctx.core.vo)
                {
                    return Err(Fault::access_denied(format!(
                        "no write access to {canonical_dest}"
                    )));
                }
                // Parse "http://host:port/<target>".
                let rest = source_url
                    .strip_prefix("http://")
                    .ok_or_else(|| Fault::bad_params("source_url must be http://..."))?;
                let (host, target) = rest
                    .split_once('/')
                    .map(|(h, t)| (h.to_owned(), format!("/{t}")))
                    .ok_or_else(|| Fault::bad_params("source_url missing path"))?;

                // Robust transfer: bounded retries with MD5 verification.
                let mut last_error = String::new();
                for _attempt in 0..3 {
                    let mut http = clarens_httpd::HttpClient::new(host.clone());
                    let mut request =
                        clarens_httpd::Request::new(clarens_httpd::Method::Get, target.clone());
                    request.headers.set("host", host.clone());
                    match http.request(&request) {
                        Ok(response) if response.status == 200 => {
                            let body = response.body;
                            let digest = clarens_pki::md5::md5_hex(&body);
                            if !expected_md5.is_empty() && digest != expected_md5 {
                                last_error =
                                    format!("md5 mismatch: got {digest}, want {expected_md5}");
                                continue;
                            }
                            let real = paths::resolve(&self.root, &dest)
                                .ok_or_else(|| Fault::bad_params("illegal dest path"))?;
                            if let Some(parent) = real.parent() {
                                std::fs::create_dir_all(parent)
                                    .map_err(|e| crate::store_fault("srm store", &e))?;
                            }
                            std::fs::write(&real, &body)
                                .map_err(|e| crate::store_fault("srm store", &e))?;
                            return Ok(Value::structure([
                                ("bytes", Value::Int(body.len() as i64)),
                                ("md5", Value::from(digest)),
                                ("dest", Value::from(canonical_dest)),
                            ]));
                        }
                        Ok(response) => {
                            last_error = format!("HTTP {}", response.status);
                        }
                        Err(e) => {
                            last_error = e.to_string();
                        }
                    }
                }
                Err(Fault::service(format!(
                    "transfer failed after 3 attempts: {last_error}"
                )))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}

/// Tiny local alias so the match arms read uniformly.
mod params_helper {
    use clarens_wire::{Fault, Value};

    pub fn expect(params: &[Value], n: usize, method: &str) -> Result<(), Fault> {
        crate::registry::params::expect_len(params, n, method)
    }
}
