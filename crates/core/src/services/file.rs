//! The remote file access service (paper §2.3).
//!
//! "Clarens serves files in two different ways: in response to standard
//! HTTP GET requests, as well as via a `file.read()` service method. ...
//! The `file.read()` method takes a filename, an offset and the number of
//! bytes to return to the client." Plus `file.ls()`, `file.stat()`,
//! `file.md5()` and `file.find` (referenced in §2.5). All paths are
//! virtual (under the configured root) and every method is gated by the
//! hierarchical file ACLs with their read/write fields.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use clarens_pki::md5::Md5;
use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};
use parking_lot::Mutex;

use crate::acl::FileAccess;
use crate::paths;
use crate::registry::{params, CallContext, MethodInfo, Service};

/// Cap on a single `file.read` (larger transfers loop, exactly like the
/// paper's chunked client pulls).
pub const MAX_READ: i64 = 16 * 1024 * 1024;

/// Bound on cached `file.md5` digests; the cache is cleared wholesale when
/// it fills (digest entries are tiny, recomputation is the expensive part).
const MD5_CACHE_CAP: usize = 1024;

/// Cache key for one file state: canonical real path plus the metadata
/// that changes whenever the content does (mtime to nanosecond precision,
/// and length to catch same-mtime rewrites).
type Md5Key = (PathBuf, u64, u32, u64);

/// The `file` service.
pub struct FileService {
    root: PathBuf,
    /// `file.md5` digests keyed by `(canonical path, mtime, len)`. Large
    /// files are re-hashed end-to-end on every call otherwise; integrity
    /// checks after a transfer loop hit the same unchanged file repeatedly.
    md5_cache: Mutex<HashMap<Md5Key, String>>,
}

impl FileService {
    /// Serve files under `root`.
    pub fn new(root: PathBuf) -> Self {
        FileService {
            root,
            md5_cache: Mutex::new(HashMap::new()),
        }
    }

    /// ACL check + resolution for one virtual path.
    fn authorize(
        &self,
        ctx: &CallContext<'_>,
        virtual_path: &str,
        access: FileAccess,
    ) -> Result<(String, PathBuf), Fault> {
        let dn = ctx.require_identity()?;
        let canonical = paths::canonical(virtual_path)
            .ok_or_else(|| Fault::bad_params(format!("illegal path {virtual_path:?}")))?;
        if !ctx
            .core
            .acl
            .check_file(&canonical, access, dn, &ctx.core.vo)
        {
            return Err(Fault::access_denied(format!(
                "no {} access to {canonical}",
                match access {
                    FileAccess::Read => "read",
                    FileAccess::Write => "write",
                }
            )));
        }
        let real = paths::resolve(&self.root, virtual_path)
            .ok_or_else(|| Fault::bad_params(format!("illegal path {virtual_path:?}")))?;
        Ok((canonical, real))
    }
}

fn io_fault(context: &str, e: std::io::Error) -> Fault {
    match e.kind() {
        std::io::ErrorKind::NotFound => Fault::service(format!("{context}: not found")),
        other => Fault::service(format!("{context}: {other}")),
    }
}

impl Service for FileService {
    fn module(&self) -> &str {
        "file"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "file.read",
                "file.read(name, offset, nbytes)",
                "Read up to nbytes from a file at offset; returns base64 bytes",
            ),
            MethodInfo::new(
                "file.ls",
                "file.ls(dir)",
                "Directory listing with types and sizes",
            ),
            MethodInfo::new("file.stat", "file.stat(path)", "File or directory metadata"),
            MethodInfo::new("file.md5", "file.md5(path)", "MD5 integrity hash of a file"),
            MethodInfo::new(
                "file.find",
                "file.find(dir, pattern)",
                "Recursively find paths whose name contains pattern",
            ),
            MethodInfo::new(
                "file.put",
                "file.put(name, data, append)",
                "Write (or append) bytes to a file",
            ),
            MethodInfo::new(
                "file.mkdir",
                "file.mkdir(dir)",
                "Create a directory (and parents)",
            ),
            MethodInfo::new("file.rm", "file.rm(path)", "Remove a file"),
            MethodInfo::new("file.size", "file.size(path)", "File size in bytes"),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "file.read" => {
                params::expect_len(params_in, 3, method)?;
                let name = params::string(params_in, 0, "name")?;
                let offset = params::int(params_in, 1, "offset")?;
                let nbytes = params::int(params_in, 2, "nbytes")?;
                if offset < 0 || !(0..=MAX_READ).contains(&nbytes) {
                    return Err(Fault::bad_params("offset/nbytes out of range"));
                }
                let (_, real) = self.authorize(ctx, &name, FileAccess::Read)?;
                clarens_faults::check_io(clarens_faults::sites::FILE_OPEN)
                    .map_err(|e| io_fault(&name, e))?;
                let mut file = std::fs::File::open(&real).map_err(|e| io_fault(&name, e))?;
                // Clamp the buffer to what the file can actually yield from
                // this offset: a short tail read of a 16 MiB-chunked pull
                // must not allocate (and zero) the full chunk size.
                let remaining = file
                    .metadata()
                    .map_err(|e| io_fault(&name, e))?
                    .len()
                    .saturating_sub(offset as u64);
                let want = (nbytes as u64).min(remaining) as usize;
                file.seek(SeekFrom::Start(offset as u64))
                    .map_err(|e| io_fault(&name, e))?;
                let mut buf = vec![0u8; want];
                let mut filled = 0usize;
                while filled < buf.len() {
                    // A stalled disk must not hold the worker past the
                    // request budget: check the deadline between chunks.
                    ctx.check_deadline()?;
                    clarens_faults::check_io(clarens_faults::sites::FILE_READ)
                        .map_err(|e| io_fault(&name, e))?;
                    match file.read(&mut buf[filled..]) {
                        Ok(0) => break,
                        Ok(n) => filled += n,
                        Err(e) => return Err(io_fault(&name, e)),
                    }
                }
                buf.truncate(filled);
                Ok(Value::Bytes(buf))
            }
            "file.ls" => {
                params::expect_len(params_in, 1, method)?;
                let dir = params::string(params_in, 0, "dir")?;
                let (_, real) = self.authorize(ctx, &dir, FileAccess::Read)?;
                let mut entries = Vec::new();
                let read_dir = std::fs::read_dir(&real).map_err(|e| io_fault(&dir, e))?;
                for entry in read_dir {
                    let entry = entry.map_err(|e| io_fault(&dir, e))?;
                    let meta = entry.metadata().map_err(|e| io_fault(&dir, e))?;
                    entries.push(Value::structure([
                        (
                            "name",
                            Value::from(entry.file_name().to_string_lossy().into_owned()),
                        ),
                        (
                            "type",
                            Value::from(if meta.is_dir() { "dir" } else { "file" }),
                        ),
                        ("size", Value::Int(meta.len() as i64)),
                    ]));
                }
                entries.sort_by(|a, b| {
                    let name =
                        |v: &Value| v.get("name").and_then(|n| n.as_str().map(str::to_owned));
                    name(a).cmp(&name(b))
                });
                Ok(Value::Array(entries))
            }
            "file.stat" => {
                params::expect_len(params_in, 1, method)?;
                let path = params::string(params_in, 0, "path")?;
                let (canonical, real) = self.authorize(ctx, &path, FileAccess::Read)?;
                let meta = std::fs::metadata(&real).map_err(|e| io_fault(&path, e))?;
                let mtime = meta
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0);
                Ok(Value::structure([
                    ("path", Value::from(canonical)),
                    (
                        "type",
                        Value::from(if meta.is_dir() { "dir" } else { "file" }),
                    ),
                    ("size", Value::Int(meta.len() as i64)),
                    ("mtime", Value::Int(mtime)),
                ]))
            }
            "file.md5" => {
                params::expect_len(params_in, 1, method)?;
                let path = params::string(params_in, 0, "path")?;
                let (_, real) = self.authorize(ctx, &path, FileAccess::Read)?;
                let mut file = std::fs::File::open(&real).map_err(|e| io_fault(&path, e))?;
                // Key the digest cache on the file state *before* hashing;
                // a rewrite bumps mtime or length and misses the cache.
                let key = file.metadata().ok().and_then(|meta| {
                    let mtime = meta.modified().ok()?;
                    let since = mtime.duration_since(std::time::UNIX_EPOCH).ok()?;
                    let canonical = real.canonicalize().ok()?;
                    Some((canonical, since.as_secs(), since.subsec_nanos(), meta.len()))
                });
                if let Some(key) = &key {
                    if let Some(hex) = self.md5_cache.lock().get(key) {
                        return Ok(Value::from(hex.clone()));
                    }
                }
                let mut hasher = Md5::new();
                let mut buf = vec![0u8; 64 * 1024];
                loop {
                    ctx.check_deadline()?;
                    match file.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => hasher.update(&buf[..n]),
                        Err(e) => return Err(io_fault(&path, e)),
                    }
                }
                let hex = clarens_pki::sha256::to_hex(&hasher.finalize());
                if let Some(key) = key {
                    let mut cache = self.md5_cache.lock();
                    if cache.len() >= MD5_CACHE_CAP {
                        cache.clear();
                    }
                    cache.insert(key, hex.clone());
                }
                Ok(Value::from(hex))
            }
            "file.find" => {
                params::expect_len(params_in, 2, method)?;
                let dir = params::string(params_in, 0, "dir")?;
                let pattern = params::string(params_in, 1, "pattern")?;
                let (canonical, real) = self.authorize(ctx, &dir, FileAccess::Read)?;
                let mut hits = Vec::new();
                find_recursive(&real, &canonical, &pattern, &mut hits, 0)
                    .map_err(|e| io_fault(&dir, e))?;
                hits.sort();
                Ok(Value::Array(hits.into_iter().map(Value::from).collect()))
            }
            "file.put" => {
                params::expect_len(params_in, 3, method)?;
                let name = params::string(params_in, 0, "name")?;
                let data = params::bytes(params_in, 1, "data")?;
                let append = params_in[2]
                    .as_bool()
                    .ok_or_else(|| Fault::bad_params("parameter 2 (append) must be a boolean"))?;
                let (_, real) = self.authorize(ctx, &name, FileAccess::Write)?;
                if let Some(parent) = real.parent() {
                    std::fs::create_dir_all(parent).map_err(|e| io_fault(&name, e))?;
                }
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(append)
                    .write(true)
                    .truncate(!append)
                    .open(&real)
                    .map_err(|e| io_fault(&name, e))?;
                file.write_all(&data).map_err(|e| io_fault(&name, e))?;
                Ok(Value::Int(data.len() as i64))
            }
            "file.mkdir" => {
                params::expect_len(params_in, 1, method)?;
                let dir = params::string(params_in, 0, "dir")?;
                let (_, real) = self.authorize(ctx, &dir, FileAccess::Write)?;
                std::fs::create_dir_all(&real).map_err(|e| io_fault(&dir, e))?;
                Ok(Value::Bool(true))
            }
            "file.rm" => {
                params::expect_len(params_in, 1, method)?;
                let path = params::string(params_in, 0, "path")?;
                let (_, real) = self.authorize(ctx, &path, FileAccess::Write)?;
                std::fs::remove_file(&real).map_err(|e| io_fault(&path, e))?;
                Ok(Value::Bool(true))
            }
            "file.size" => {
                params::expect_len(params_in, 1, method)?;
                let path = params::string(params_in, 0, "path")?;
                let (_, real) = self.authorize(ctx, &path, FileAccess::Read)?;
                let meta = std::fs::metadata(&real).map_err(|e| io_fault(&path, e))?;
                Ok(Value::Int(meta.len() as i64))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}

fn find_recursive(
    real: &std::path::Path,
    virtual_prefix: &str,
    pattern: &str,
    hits: &mut Vec<String>,
    depth: usize,
) -> std::io::Result<()> {
    if depth > 32 {
        return Ok(()); // bounded recursion
    }
    for entry in std::fs::read_dir(real)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let virtual_path = if virtual_prefix == "/" {
            format!("/{name}")
        } else {
            format!("{virtual_prefix}/{name}")
        };
        let file_type = entry.file_type()?;
        if name.contains(pattern) {
            hits.push(virtual_path.clone());
        }
        if file_type.is_dir() {
            find_recursive(&entry.path(), &virtual_path, pattern, hits, depth + 1)?;
        }
    }
    Ok(())
}
