//! The VO management service: the RPC surface over [`crate::vo`]
//! (paper §2.1 — group/member administration for virtual organizations).

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service};
use crate::vo::VoError;

/// The `vo` service.
pub struct VoAdminService;

impl From<VoError> for Fault {
    fn from(e: VoError) -> Self {
        match e {
            VoError::NotAuthorized(m) => Fault::access_denied(m),
            VoError::BadGroup(m) => Fault::bad_params(m),
            VoError::Conflict(m) => Fault::service(m),
        }
    }
}

impl Service for VoAdminService {
    fn module(&self) -> &str {
        "vo"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "vo.create_group",
                "vo.create_group(name)",
                "Create a VO group",
            ),
            MethodInfo::new(
                "vo.delete_group",
                "vo.delete_group(name)",
                "Delete a VO group and its subgroups",
            ),
            MethodInfo::new(
                "vo.add_member",
                "vo.add_member(group, dn)",
                "Add a member DN (prefix) to a group",
            ),
            MethodInfo::new(
                "vo.remove_member",
                "vo.remove_member(group, dn)",
                "Remove a member DN from a group",
            ),
            MethodInfo::new(
                "vo.add_admin",
                "vo.add_admin(group, dn)",
                "Add a group admin",
            ),
            MethodInfo::new(
                "vo.remove_admin",
                "vo.remove_admin(group, dn)",
                "Remove a group admin",
            ),
            MethodInfo::new("vo.list_groups", "vo.list_groups()", "All group names"),
            MethodInfo::new(
                "vo.group_info",
                "vo.group_info(name)",
                "Members and admins of a group",
            ),
            MethodInfo::new(
                "vo.is_member",
                "vo.is_member(group, dn)",
                "Hierarchical membership test",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        let vo = &ctx.core.vo;
        match method {
            "vo.create_group" => {
                params::expect_len(params_in, 1, method)?;
                let name = params::string(params_in, 0, "name")?;
                vo.create_group(ctx.require_identity()?, &name)?;
                Ok(Value::Bool(true))
            }
            "vo.delete_group" => {
                params::expect_len(params_in, 1, method)?;
                let name = params::string(params_in, 0, "name")?;
                vo.delete_group(ctx.require_identity()?, &name)?;
                Ok(Value::Bool(true))
            }
            "vo.add_member" | "vo.remove_member" | "vo.add_admin" | "vo.remove_admin" => {
                params::expect_len(params_in, 2, method)?;
                let group = params::string(params_in, 0, "group")?;
                let dn = params::string(params_in, 1, "dn")?;
                let actor = ctx.require_identity()?;
                match method {
                    "vo.add_member" => vo.add_member(actor, &group, &dn)?,
                    "vo.remove_member" => vo.remove_member(actor, &group, &dn)?,
                    "vo.add_admin" => vo.add_admin(actor, &group, &dn)?,
                    _ => vo.remove_admin(actor, &group, &dn)?,
                }
                Ok(Value::Bool(true))
            }
            "vo.list_groups" => {
                params::expect_len(params_in, 0, method)?;
                ctx.require_identity()?;
                Ok(Value::Array(
                    vo.list_groups().into_iter().map(Value::from).collect(),
                ))
            }
            "vo.group_info" => {
                params::expect_len(params_in, 1, method)?;
                ctx.require_identity()?;
                let name = params::string(params_in, 0, "name")?;
                let group = vo
                    .group(&name)
                    .ok_or_else(|| Fault::service(format!("no group {name:?}")))?;
                Ok(Value::structure([
                    (
                        "members",
                        Value::Array(group.members.into_iter().map(Value::from).collect()),
                    ),
                    (
                        "admins",
                        Value::Array(group.admins.into_iter().map(Value::from).collect()),
                    ),
                ]))
            }
            "vo.is_member" => {
                params::expect_len(params_in, 2, method)?;
                ctx.require_identity()?;
                let group = params::string(params_in, 0, "group")?;
                let dn_text = params::string(params_in, 1, "dn")?;
                let dn = clarens_pki::DistinguishedName::parse(&dn_text)
                    .map_err(|e| Fault::bad_params(e.to_string()))?;
                Ok(Value::Bool(vo.is_member(&group, &dn)))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
