//! The ACL management service: the RPC surface over [`crate::acl`]
//! (paper §2.2 — "Access Control Lists allow you to prevent and manage"
//! access to administrative methods and files).
//!
//! All mutation methods require site-admin privilege: ACLs *are* the
//! protection mechanism, so editing them is the most privileged operation
//! on the server.

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::acl::{Acl, FileAcl, Order};
use crate::registry::{params, CallContext, MethodInfo, Service};

/// The `acl` service.
pub struct AclAdminService;

fn string_list(value: Option<&Value>) -> Vec<String> {
    value
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default()
}

/// Decode an ACL from its RPC struct form.
pub fn acl_from_value(value: &Value) -> Result<Acl, Fault> {
    let order = match value.get("order").and_then(Value::as_str) {
        None | Some("allow,deny") => Order::AllowDeny,
        Some("deny,allow") => Order::DenyAllow,
        Some(other) => return Err(Fault::bad_params(format!("bad order {other:?}"))),
    };
    Ok(Acl {
        order,
        allow_dns: string_list(value.get("allow_dns")),
        allow_groups: string_list(value.get("allow_groups")),
        deny_dns: string_list(value.get("deny_dns")),
        deny_groups: string_list(value.get("deny_groups")),
    })
}

/// Encode an ACL into its RPC struct form.
pub fn acl_to_value(acl: &Acl) -> Value {
    let list = |v: &[String]| Value::Array(v.iter().cloned().map(Value::from).collect());
    Value::structure([
        (
            "order",
            Value::from(match acl.order {
                Order::AllowDeny => "allow,deny",
                Order::DenyAllow => "deny,allow",
            }),
        ),
        ("allow_dns", list(&acl.allow_dns)),
        ("allow_groups", list(&acl.allow_groups)),
        ("deny_dns", list(&acl.deny_dns)),
        ("deny_groups", list(&acl.deny_groups)),
    ])
}

impl Service for AclAdminService {
    fn module(&self) -> &str {
        "acl"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "acl.set_method",
                "acl.set_method(node, acl)",
                "Attach an ACL to a method-hierarchy node (site admin)",
            ),
            MethodInfo::new(
                "acl.clear_method",
                "acl.clear_method(node)",
                "Remove a method ACL node (site admin)",
            ),
            MethodInfo::new(
                "acl.get_method",
                "acl.get_method(node)",
                "Read a method ACL node",
            ),
            MethodInfo::new("acl.list", "acl.list()", "All method ACL nodes"),
            MethodInfo::new(
                "acl.set_file",
                "acl.set_file(node, read_acl, write_acl)",
                "Attach a file ACL to a path node (site admin)",
            ),
            MethodInfo::new(
                "acl.clear_file",
                "acl.clear_file(node)",
                "Remove a file ACL node (site admin)",
            ),
            MethodInfo::new(
                "acl.check",
                "acl.check(method, dn)",
                "Would the given DN be allowed to call the method?",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        let require_admin = |ctx: &CallContext<'_>| -> Result<(), Fault> {
            let dn = ctx.require_identity()?;
            if ctx.core.vo.is_site_admin(dn) {
                Ok(())
            } else {
                Err(Fault::access_denied(
                    "ACL administration requires site admin",
                ))
            }
        };
        match method {
            "acl.set_method" => {
                params::expect_len(params_in, 2, method)?;
                require_admin(ctx)?;
                let node = params::string(params_in, 0, "node")?;
                let acl = acl_from_value(&params_in[1])?;
                ctx.core.acl.set_method_acl(&node, &acl);
                Ok(Value::Bool(true))
            }
            "acl.clear_method" => {
                params::expect_len(params_in, 1, method)?;
                require_admin(ctx)?;
                let node = params::string(params_in, 0, "node")?;
                ctx.core.acl.clear_method_acl(&node);
                Ok(Value::Bool(true))
            }
            "acl.get_method" => {
                params::expect_len(params_in, 1, method)?;
                ctx.require_identity()?;
                let node = params::string(params_in, 0, "node")?;
                match ctx.core.acl.method_acl(&node) {
                    Some(acl) => Ok(acl_to_value(&acl)),
                    None => Ok(Value::Nil),
                }
            }
            "acl.list" => {
                params::expect_len(params_in, 0, method)?;
                ctx.require_identity()?;
                Ok(Value::Array(
                    ctx.core
                        .acl
                        .method_acl_nodes()
                        .into_iter()
                        .map(Value::from)
                        .collect(),
                ))
            }
            "acl.set_file" => {
                params::expect_len(params_in, 3, method)?;
                require_admin(ctx)?;
                let node = params::string(params_in, 0, "node")?;
                let file_acl = FileAcl {
                    read: acl_from_value(&params_in[1])?,
                    write: acl_from_value(&params_in[2])?,
                };
                ctx.core.acl.set_file_acl(&node, &file_acl);
                Ok(Value::Bool(true))
            }
            "acl.clear_file" => {
                params::expect_len(params_in, 1, method)?;
                require_admin(ctx)?;
                let node = params::string(params_in, 0, "node")?;
                ctx.core.acl.clear_file_acl(&node);
                Ok(Value::Bool(true))
            }
            "acl.check" => {
                params::expect_len(params_in, 2, method)?;
                ctx.require_identity()?;
                let target = params::string(params_in, 0, "method")?;
                let dn_text = params::string(params_in, 1, "dn")?;
                let dn = clarens_pki::DistinguishedName::parse(&dn_text)
                    .map_err(|e| Fault::bad_params(e.to_string()))?;
                Ok(Value::Bool(ctx.core.acl.check_method(
                    &target,
                    &dn,
                    &ctx.core.vo,
                )))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
