//! The discovery service (paper §2.4): query the MonALISA-backed registry
//! and publish this server's own services.
//!
//! "The discovery service allows scientists and applications to query for
//! services and retrieve up to date information on the location and
//! interface of a service." Queries default to the aggregated local
//! database (the fast path Figure 3 motivates); `discovery.find_remote`
//! exposes the fan-out path so the two can be compared.

use std::sync::Arc;

use monalisa_sim::{
    DiscoveryAggregator, Publication, ServiceDescriptor, ServiceQuery, UdpPublisher,
};

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service, METHODS_BUCKET};

/// The `discovery` service.
pub struct DiscoveryService {
    aggregator: Arc<DiscoveryAggregator>,
    publisher: Option<UdpPublisher>,
}

impl DiscoveryService {
    /// Create the service. `publisher` is `None` for servers that only
    /// query.
    pub fn new(aggregator: Arc<DiscoveryAggregator>, publisher: Option<UdpPublisher>) -> Self {
        DiscoveryService {
            aggregator,
            publisher,
        }
    }

    /// The aggregated discovery view, shared with the proxy router so
    /// `proxy.call` resolves module owners from the same database
    /// `discovery.find` answers from.
    pub fn aggregator(&self) -> Arc<DiscoveryAggregator> {
        Arc::clone(&self.aggregator)
    }

    fn descriptor_value(d: &ServiceDescriptor) -> Value {
        d.to_value()
    }

    fn query_from_params(params_in: &[Value]) -> Result<ServiceQuery, Fault> {
        let mut query = ServiceQuery::default();
        if let Some(spec) = params_in.first() {
            match spec {
                Value::Str(name) => query.service = Some(name.clone()),
                Value::Struct(map) => {
                    if let Some(s) = map.get("service").and_then(Value::as_str) {
                        query.service = Some(s.to_owned());
                    }
                    if let Some(m) = map.get("method").and_then(Value::as_str) {
                        query.method = Some(m.to_owned());
                    }
                    if let Some(attrs) = map.get("attributes").and_then(Value::as_struct) {
                        for (k, v) in attrs {
                            if let Some(s) = v.as_str() {
                                query.attributes.insert(k.clone(), s.to_owned());
                            }
                        }
                    }
                }
                other => {
                    return Err(Fault::bad_params(format!(
                        "query must be a service name or struct, got {}",
                        other.type_name()
                    )))
                }
            }
        }
        Ok(query)
    }
}

impl Service for DiscoveryService {
    fn module(&self) -> &str {
        "discovery"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "discovery.find",
                "discovery.find(query)",
                "Find services via the aggregated local database (fast path)",
            ),
            MethodInfo::new(
                "discovery.find_remote",
                "discovery.find_remote(query)",
                "Find services by synchronous fan-out to station servers (slow path)",
            ),
            MethodInfo::new(
                "discovery.publish",
                "discovery.publish()",
                "Publish this server's service descriptors to the station network (site admin)",
            ),
            MethodInfo::new(
                "discovery.status",
                "discovery.status()",
                "Aggregation statistics",
            ),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "discovery.find" | "discovery.find_remote" => {
                params::expect_range(params_in, 0, 1, method)?;
                ctx.require_identity()?;
                let query = Self::query_from_params(params_in)?;
                let hits = if method == "discovery.find" {
                    self.aggregator.query_local(&query)
                } else {
                    self.aggregator.query_remote(&query)
                };
                Ok(Value::Array(
                    hits.iter().map(Self::descriptor_value).collect(),
                ))
            }
            "discovery.publish" => {
                params::expect_len(params_in, 0, method)?;
                let dn = ctx.require_identity()?;
                if !ctx.core.vo.is_site_admin(dn) {
                    return Err(Fault::access_denied("publishing requires site admin"));
                }
                let publisher = self
                    .publisher
                    .as_ref()
                    .ok_or_else(|| Fault::service("this server has no publisher configured"))?;
                // One descriptor per registered module, methods from the DB.
                // Descriptors carry live load/latency attributes so the
                // station network can steer clients toward lightly-loaded
                // servers (the paper's MonALISA monitoring integration).
                let telemetry = &ctx.core.telemetry;
                let latency = telemetry.total_snapshot();
                let load_attributes: Vec<(String, String)> = vec![
                    (
                        "requests_total".into(),
                        telemetry.http.requests.get().to_string(),
                    ),
                    (
                        "errors_total".into(),
                        telemetry.http.responses_5xx.get().to_string(),
                    ),
                    ("p50_us".into(), latency.p50().to_string()),
                    ("p95_us".into(), latency.p95().to_string()),
                    ("p99_us".into(), latency.p99().to_string()),
                ];
                let modules = ctx.core.registry.read().modules();
                let mut published = 0i64;
                for module in modules {
                    let methods: Vec<String> = ctx
                        .core
                        .store
                        .scan_prefix(METHODS_BUCKET, &format!("{module}."))
                        .into_iter()
                        .map(|(name, _)| name)
                        .collect();
                    let descriptor = ServiceDescriptor {
                        url: ctx.core.config.server_url.clone(),
                        server_dn: ctx.core.credential.certificate.subject.to_string(),
                        service: module,
                        methods,
                        attributes: load_attributes.iter().cloned().collect(),
                        timestamp: ctx.now,
                    };
                    // UDP publish is idempotent (stations keep the newest
                    // timestamp per key), so transient send failures are
                    // retried with a short backoff before giving up.
                    let publication = Publication::Service(descriptor);
                    let retries = ctx.core.config.client_retries;
                    let mut attempt = 0;
                    loop {
                        match publisher.publish(&publication) {
                            Ok(()) => break,
                            Err(_) if attempt < retries => {
                                attempt += 1;
                                ctx.core.telemetry.resilience.retries.inc();
                                std::thread::sleep(std::time::Duration::from_millis(
                                    2u64 << attempt.min(6),
                                ));
                            }
                            Err(e) => {
                                return Err(Fault::service(format!(
                                    "publish failed after {attempt} retries: {e}"
                                )))
                            }
                        }
                    }
                    published += 1;
                }
                Ok(Value::Int(published))
            }
            "discovery.status" => {
                params::expect_len(params_in, 0, method)?;
                ctx.require_identity()?;
                Ok(Value::structure([
                    (
                        "local_services",
                        Value::Int(self.aggregator.local_service_count() as i64),
                    ),
                    ("updates", Value::Int(self.aggregator.update_count() as i64)),
                ]))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
