//! The `echo` service: trivial methods for testing and cross-framework
//! benchmarking (the paper's footnote 4 compares "a trivial method" on
//! Globus Toolkit 3 against Clarens; `echo.echo` is that method here).

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service};

/// The `echo` service.
pub struct EchoService;

impl Service for EchoService {
    fn module(&self) -> &str {
        "echo"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "echo.echo",
                "echo.echo(value)",
                "Return the argument unchanged",
            ),
            MethodInfo::new("echo.sum", "echo.sum(a, b)", "Integer addition"),
            MethodInfo::new(
                "echo.concat",
                "echo.concat(parts)",
                "Concatenate an array of strings",
            ),
            MethodInfo::new(
                "echo.payload",
                "echo.payload(nbytes)",
                "Return nbytes of deterministic data (bandwidth testing)",
            ),
        ]
    }

    fn call(
        &self,
        _ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "echo.echo" => {
                params::expect_len(params_in, 1, method)?;
                Ok(params_in[0].clone())
            }
            "echo.sum" => {
                params::expect_len(params_in, 2, method)?;
                let a = params::int(params_in, 0, "a")?;
                let b = params::int(params_in, 1, "b")?;
                a.checked_add(b)
                    .map(Value::Int)
                    .ok_or_else(|| Fault::bad_params("integer overflow"))
            }
            "echo.concat" => {
                params::expect_len(params_in, 1, method)?;
                let parts = params_in[0]
                    .as_array()
                    .ok_or_else(|| Fault::bad_params("parameter 0 must be an array"))?;
                let mut out = String::new();
                for part in parts {
                    out.push_str(
                        part.as_str()
                            .ok_or_else(|| Fault::bad_params("array items must be strings"))?,
                    );
                }
                Ok(Value::from(out))
            }
            "echo.payload" => {
                params::expect_len(params_in, 1, method)?;
                let n = params::int(params_in, 0, "nbytes")?;
                if !(0..=64 * 1024 * 1024).contains(&n) {
                    return Err(Fault::bad_params("nbytes out of range"));
                }
                let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
                Ok(Value::Bytes(data))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
