//! The job submission service (paper §3 lists "job submission" among the
//! portal functionality; the RunJob and PEAC projects of §1 ran Monte
//! Carlo production and analysis jobs through Clarens services).
//!
//! Jobs are command lines executed asynchronously in the caller's shell
//! sandbox (same DN → system-user mapping and confinement as
//! [`super::shell`]); the submitter polls status and collects output —
//! the batch-like interaction the portal's job-submission page drove.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use clarens_wire::fault::codes;
use clarens_wire::{Fault, Value};

use crate::registry::{params, CallContext, MethodInfo, Service};
use crate::services::shell::{interp, UserMap};

/// One submitted job.
struct JobRecord {
    owner: String,
    command: String,
    submitted: i64,
    /// Populated when the job finishes.
    outcome: Option<interp::Outcome>,
    handle: Option<std::thread::JoinHandle<interp::Outcome>>,
}

impl JobRecord {
    fn state(&mut self) -> &'static str {
        if self.outcome.is_some() {
            return "done";
        }
        if let Some(handle) = &self.handle {
            if handle.is_finished() {
                let handle = self.handle.take().unwrap();
                self.outcome = Some(handle.join().unwrap_or_else(|_| interp::Outcome {
                    stdout: String::new(),
                    stderr: "job thread panicked".into(),
                    status: 1,
                }));
                return "done";
            }
            return "running";
        }
        "done"
    }
}

/// The `job` service.
pub struct JobService {
    root: PathBuf,
    user_map: UserMap,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    /// Maximum live jobs per identity.
    max_per_owner: usize,
}

impl JobService {
    /// Create the service; jobs run in sandboxes under `root` (normally
    /// the shell root).
    pub fn new(root: PathBuf, user_map: UserMap) -> Self {
        JobService {
            root,
            user_map,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_per_owner: 16,
        }
    }

    fn sandbox_for(&self, ctx: &CallContext<'_>) -> Result<PathBuf, Fault> {
        let dn = ctx.require_identity()?;
        let user = self
            .user_map
            .map(dn, &ctx.core.vo)
            .ok_or_else(|| Fault::access_denied(format!("no .clarens_user_map entry for {dn}")))?
            .to_owned();
        let sandbox = self.root.join(user);
        std::fs::create_dir_all(&sandbox)
            .map_err(|e| Fault::service(format!("cannot create sandbox: {e}")))?;
        Ok(sandbox)
    }

    fn job_value(id: u64, record: &mut JobRecord) -> Value {
        let state = record.state();
        let mut fields = vec![
            ("id", Value::Int(id as i64)),
            ("command", Value::from(record.command.clone())),
            ("submitted", Value::Int(record.submitted)),
            ("state", Value::from(state)),
        ];
        if let Some(outcome) = &record.outcome {
            fields.push(("status", Value::Int(outcome.status)));
            fields.push(("stdout", Value::from(outcome.stdout.clone())));
            fields.push(("stderr", Value::from(outcome.stderr.clone())));
        }
        Value::structure(fields)
    }
}

impl Service for JobService {
    fn module(&self) -> &str {
        "job"
    }

    fn methods(&self) -> Vec<MethodInfo> {
        vec![
            MethodInfo::new(
                "job.submit",
                "job.submit(command)",
                "Run a command asynchronously in the caller's sandbox; returns a job id",
            ),
            MethodInfo::new(
                "job.status",
                "job.status(id)",
                "Job state plus output once finished",
            ),
            MethodInfo::new("job.list", "job.list()", "The caller's jobs"),
            MethodInfo::new(
                "job.wait",
                "job.wait(id, timeout_ms)",
                "Block (bounded) until the job finishes; returns its record",
            ),
            MethodInfo::new("job.remove", "job.remove(id)", "Forget a finished job"),
        ]
    }

    fn call(
        &self,
        ctx: &CallContext<'_>,
        method: &str,
        params_in: &[Value],
    ) -> Result<Value, Fault> {
        match method {
            "job.submit" => {
                params::expect_len(params_in, 1, method)?;
                let command = params::string(params_in, 0, "command")?;
                let owner = ctx.require_identity()?.to_string();
                let sandbox = self.sandbox_for(ctx)?;

                let mut jobs = self.jobs.lock();
                let live = jobs
                    .values_mut()
                    .filter(|j| j.owner == owner)
                    .map(|j| j.state())
                    .filter(|state| *state == "running")
                    .count();
                if live >= self.max_per_owner {
                    return Err(Fault::service(format!(
                        "job limit reached ({} running)",
                        self.max_per_owner
                    )));
                }
                let id = self.next_id.fetch_add(1, Ordering::SeqCst);
                let thread_command = command.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("clarens-job-{id}"))
                    .spawn(move || interp::run(&sandbox, &thread_command))
                    .map_err(|e| Fault::service(format!("cannot spawn job: {e}")))?;
                jobs.insert(
                    id,
                    JobRecord {
                        owner,
                        command,
                        submitted: ctx.now,
                        outcome: None,
                        handle: Some(handle),
                    },
                );
                Ok(Value::Int(id as i64))
            }
            "job.status" | "job.wait" | "job.remove" => {
                let expected = if method == "job.wait" { 2 } else { 1 };
                params::expect_len(params_in, expected, method)?;
                let owner = ctx.require_identity()?.to_string();
                let id = params::int(params_in, 0, "id")? as u64;

                if method == "job.wait" {
                    let timeout_ms = params::int(params_in, 1, "timeout_ms")?.clamp(0, 60_000);
                    let deadline = std::time::Instant::now()
                        + std::time::Duration::from_millis(timeout_ms as u64);
                    loop {
                        {
                            let mut jobs = self.jobs.lock();
                            let record = jobs
                                .get_mut(&id)
                                .ok_or_else(|| Fault::service(format!("no job {id}")))?;
                            if record.owner != owner {
                                return Err(Fault::access_denied("not your job"));
                            }
                            if record.state() == "done" {
                                return Ok(Self::job_value(id, record));
                            }
                        }
                        if std::time::Instant::now() >= deadline {
                            let mut jobs = self.jobs.lock();
                            let record = jobs.get_mut(&id).unwrap();
                            return Ok(Self::job_value(id, record));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }

                let mut jobs = self.jobs.lock();
                let record = jobs
                    .get_mut(&id)
                    .ok_or_else(|| Fault::service(format!("no job {id}")))?;
                if record.owner != owner {
                    return Err(Fault::access_denied("not your job"));
                }
                if method == "job.remove" {
                    if record.state() != "done" {
                        return Err(Fault::service("job still running"));
                    }
                    jobs.remove(&id);
                    return Ok(Value::Bool(true));
                }
                Ok(Self::job_value(id, record))
            }
            "job.list" => {
                params::expect_len(params_in, 0, method)?;
                let owner = ctx.require_identity()?.to_string();
                let mut jobs = self.jobs.lock();
                let mut out: Vec<Value> = jobs
                    .iter_mut()
                    .filter(|(_, j)| j.owner == owner)
                    .map(|(id, j)| Self::job_value(*id, j))
                    .collect();
                out.sort_by_key(|v| v.get("id").and_then(Value::as_int).unwrap_or(0));
                Ok(Value::Array(out))
            }
            other => Err(Fault::new(
                codes::NO_SUCH_METHOD,
                format!("no method {other}"),
            )),
        }
    }
}
