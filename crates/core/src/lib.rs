//! # clarens — the Clarens Web Service Framework, reproduced in Rust
//!
//! A faithful reproduction of "The Clarens Web Service Framework for
//! Distributed Scientific Analysis in Grid Projects" (van Lingen et al.,
//! ICPP Workshops 2005). The framework hosts hierarchically-named web
//! service methods over HTTP(S) with:
//!
//! * X.509-style certificate authentication and **persistent sessions**
//!   that survive server restarts ([`session`]),
//! * **Virtual Organization management** — hierarchical groups with
//!   DN-prefix membership ([`vo`]),
//! * hierarchical, Apache-style **access control lists** on methods and
//!   files ([`acl`]),
//! * **remote file access** (RPC reads and streamed HTTP GET, [`services::file`]),
//! * a sandboxed **shell service** with DN→user mapping ([`services::shell`]),
//! * a **proxy certificate service** for delegation and password login
//!   ([`services::proxy`]),
//! * **dynamic service discovery** over a MonALISA-style network
//!   ([`services::discovery`]),
//! * multiple wire protocols — XML-RPC, SOAP, JSON-RPC — answered in kind,
//! * server-rendered **portal** pages ([`portal`]).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root; in short:
//! build a [`config::ClarensConfig`], assemble a [`core::ClarensCore`],
//! register services ([`server::register_builtin_services`]), start a
//! [`server::ClarensServer`], and talk to it with a [`client::ClarensClient`].

pub mod acl;
pub mod cache;
pub mod client;
pub mod config;
pub mod core;
pub mod federation;
pub mod paths;
pub mod portal;
pub mod registry;
pub mod server;
pub mod services;
pub mod session;
pub mod testkit;
pub mod vo;

pub use crate::core::ClarensCore;
pub use client::{ClarensClient, ClientError};
pub use config::{ClarensConfig, FederationRole};
pub use federation::FederationState;
pub use server::{install_permissive_acls, register_builtin_services, ClarensServer};

/// Map a store I/O error onto the right RPC fault: a degraded-mode
/// refusal (the store went read-only after a WAL failure) gets the
/// dedicated `DEGRADED` code so clients can tell "retry elsewhere" from
/// an ordinary service error.
pub fn store_fault(context: &str, e: &std::io::Error) -> clarens_wire::Fault {
    if clarens_db::is_degraded_error(e) {
        clarens_wire::Fault::degraded(format!("{context}: {e}"))
    } else {
        clarens_wire::Fault::service(format!("{context}: {e}"))
    }
}
