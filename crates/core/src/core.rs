//! The composed server core: everything a service needs at call time.

use std::sync::Arc;

use parking_lot::RwLock;

use clarens_db::Store;
use clarens_pki::cert::{Certificate, Credential};

use crate::acl::AclEngine;
use crate::config::ClarensConfig;
use crate::registry::{Registry, Service};
use crate::session::SessionManager;
use crate::vo::VoManager;

/// The assembled Clarens core — configuration, persistent store, session
/// manager, VO manager, ACL engine, trust anchors, server credential, and
/// the service registry. One `ClarensCore` backs one server instance; it is
/// shared (via `Arc`) between the HTTP handler and any in-process tooling.
pub struct ClarensCore {
    /// Server configuration.
    pub config: ClarensConfig,
    /// The persistent store (sessions, VO, ACLs, methods, discovery cache).
    pub store: Arc<Store>,
    /// Session manager.
    pub sessions: SessionManager,
    /// Virtual-organization manager.
    pub vo: VoManager,
    /// ACL engine.
    pub acl: AclEngine,
    /// Trust roots for validating client certificate chains.
    pub roots: Vec<Certificate>,
    /// This server's credential (certificate + key).
    pub credential: Credential,
    /// Registered services.
    pub registry: RwLock<Registry>,
    /// Clock (overridable for deterministic tests).
    pub now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
}

impl ClarensCore {
    /// Assemble a core. Opens (or creates) the persistent store per the
    /// config, repopulates the `admins` VO group, and installs nothing else
    /// — services are registered separately.
    pub fn new(
        config: ClarensConfig,
        roots: Vec<Certificate>,
        credential: Credential,
    ) -> std::io::Result<Arc<ClarensCore>> {
        let store = Arc::new(match &config.db_path {
            Some(path) => Store::open(path)?,
            None => Store::in_memory(),
        });
        let sessions =
            SessionManager::with_caching(Arc::clone(&store), config.session_ttl, config.auth_cache);
        let vo = VoManager::with_caching(Arc::clone(&store), &config.admin_dns, config.auth_cache);
        let acl = AclEngine::with_caching(Arc::clone(&store), config.auth_cache);
        Ok(Arc::new(ClarensCore {
            config,
            store,
            sessions,
            vo,
            acl,
            roots,
            credential,
            registry: RwLock::new(Registry::new()),
            now_fn: Arc::new(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0)
            }),
        }))
    }

    /// Current time per the configured clock.
    pub fn now(&self) -> i64 {
        (self.now_fn)()
    }

    /// Register a service module.
    pub fn register(&self, service: Arc<dyn Service>) {
        self.registry.write().register(service, &self.store);
    }
}
