//! The composed server core: everything a service needs at call time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use clarens_db::Store;
use clarens_pki::cert::{Certificate, Credential};
use clarens_telemetry::Telemetry;

use crate::acl::AclEngine;
use crate::config::ClarensConfig;
use crate::registry::{Registry, Service};
use crate::session::SessionManager;
use crate::vo::VoManager;

/// The assembled Clarens core — configuration, persistent store, session
/// manager, VO manager, ACL engine, trust anchors, server credential, and
/// the service registry. One `ClarensCore` backs one server instance; it is
/// shared (via `Arc`) between the HTTP handler and any in-process tooling.
pub struct ClarensCore {
    /// Server configuration.
    pub config: ClarensConfig,
    /// The persistent store (sessions, VO, ACLs, methods, discovery cache).
    pub store: Arc<Store>,
    /// Session manager.
    pub sessions: SessionManager,
    /// Virtual-organization manager.
    pub vo: VoManager,
    /// ACL engine.
    pub acl: AclEngine,
    /// Trust roots for validating client certificate chains.
    pub roots: Vec<Certificate>,
    /// This server's credential (certificate + key).
    pub credential: Credential,
    /// Registered services.
    pub registry: RwLock<Registry>,
    /// The observability plane: request counters, phase/method latency
    /// histograms, slow traces, and gauges over the DB and auth caches.
    pub telemetry: Arc<Telemetry>,
    /// Clock (overridable for deterministic tests).
    pub now_fn: Arc<dyn Fn() -> i64 + Send + Sync>,
    /// Replication lag in WAL bytes (leader committed length minus this
    /// node's applied cursor), maintained by the federation follower loop;
    /// stays 0 on non-followers. Shared so the `db.replication_lag` gauge
    /// and the replicator read/write the same cell.
    pub replication_lag: Arc<AtomicU64>,
    /// Leader-failover state: live role, leader epoch, believed leader
    /// address, lease, and the replicated-ack follower cursor
    /// (DESIGN.md §14). Initialized from the configured role; mutated by
    /// the election manager on promotion/demotion.
    pub federation: crate::federation::FederationState,
}

impl ClarensCore {
    /// Assemble a core. Opens (or creates) the persistent store per the
    /// config, repopulates the `admins` VO group, and installs nothing else
    /// — services are registered separately.
    pub fn new(
        config: ClarensConfig,
        roots: Vec<Certificate>,
        credential: Credential,
    ) -> std::io::Result<Arc<ClarensCore>> {
        let store = Arc::new(match &config.db_path {
            Some(path) => Store::open_with(
                path,
                clarens_db::StorageOptions {
                    backend: config.storage_backend,
                    sync: config.db_sync,
                    group_commit: config.group_commit,
                    compact_ratio: config.compact_ratio,
                    ..clarens_db::StorageOptions::default()
                },
            )?,
            None => Store::in_memory(),
        });
        let sessions =
            SessionManager::with_caching(Arc::clone(&store), config.session_ttl, config.auth_cache);
        let vo = VoManager::with_caching(Arc::clone(&store), &config.admin_dns, config.auth_cache);
        let acl = AclEngine::with_caching(Arc::clone(&store), config.auth_cache);
        let telemetry = Telemetry::new(
            config.telemetry,
            config.slow_trace_us,
            clarens_telemetry::DEFAULT_RING_CAPACITY,
        );
        let federation = crate::federation::FederationState::new(
            config.federation_role,
            config.federation_leader.as_deref(),
        );
        let core = Arc::new(ClarensCore {
            config,
            store,
            sessions,
            vo,
            acl,
            roots,
            credential,
            registry: RwLock::new(Registry::new()),
            telemetry,
            now_fn: Arc::new(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs() as i64)
                    .unwrap_or(0)
            }),
            replication_lag: Arc::new(AtomicU64::new(0)),
            federation,
        });
        core.register_gauges();
        Ok(core)
    }

    /// Expose DB and auth-cache counters as named telemetry gauges, so
    /// `system.stats`, `system.metrics`, and `GET /metrics` all read the
    /// same numbers through one registry.
    fn register_gauges(self: &Arc<Self>) {
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.lookups", move || store.stats().lookups);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.scans", move || store.stats().scans);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.writes", move || store.stats().writes);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.wal_syncs", move || store.stats().syncs);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.group_commits", move || store.stats().group_commits);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.compactions", move || store.stats().compactions);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.live_bytes", move || store.live_bytes());
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.degraded", move || store.is_degraded() as u64);
        let store = Arc::clone(&self.store);
        self.telemetry
            .register_gauge("db.wal_offset", move || store.wal_offset());
        let lag = Arc::clone(&self.replication_lag);
        self.telemetry
            .register_gauge("db.replication_lag", move || lag.load(Ordering::Relaxed));
        let weak = Arc::downgrade(self);
        self.telemetry
            .register_gauge("federation.leader_epoch", move || {
                weak.upgrade().map(|c| c.federation.epoch()).unwrap_or(0)
            });
        let weak = Arc::downgrade(self);
        self.telemetry
            .register_gauge("federation.is_leader", move || {
                weak.upgrade()
                    .map(|c| (c.federation.role() == crate::config::FederationRole::Leader) as u64)
                    .unwrap_or(0)
            });
        self.telemetry
            .register_gauge("faults.injected", clarens_faults::injected_total);
        // Cache gauges capture a weak handle: the telemetry plane lives
        // inside the core, so a strong Arc here would leak it.
        type CacheReader = fn(&ClarensCore) -> (u64, u64);
        let cache_gauges: [(&str, CacheReader); 4] = [
            ("cache.sessions", |core| {
                let s = core.sessions.cache_stats();
                (s.hits, s.misses)
            }),
            ("cache.vo_groups", |core| {
                let s = core.vo.cache_stats();
                (s.hits, s.misses)
            }),
            ("cache.acl_nodes", |core| {
                let s = core.acl.node_cache_stats();
                (s.hits, s.misses)
            }),
            ("cache.acl_decisions", |core| {
                let s = core.acl.decision_cache_stats();
                (s.hits, s.misses)
            }),
        ];
        for (name, read) in cache_gauges {
            let weak = Arc::downgrade(self);
            self.telemetry
                .register_gauge(format!("{name}.hits"), move || {
                    weak.upgrade().map(|core| read(&core).0).unwrap_or(0)
                });
            let weak = Arc::downgrade(self);
            self.telemetry
                .register_gauge(format!("{name}.misses"), move || {
                    weak.upgrade().map(|core| read(&core).1).unwrap_or(0)
                });
        }
    }

    /// Current time per the configured clock.
    pub fn now(&self) -> i64 {
        (self.now_fn)()
    }

    /// Register a service module.
    pub fn register(&self, service: Arc<dyn Service>) {
        self.registry.write().register(service, &self.store);
    }
}
