//! Epoch-invalidated in-memory caches for the per-request authorization
//! path.
//!
//! The paper's request pipeline performs two access checks per call — the
//! session check and the method ACL walk — and each one costs a DB lookup
//! plus JSON deserialization plus DN parsing. [`Sharded`] is the shared
//! cache primitive that removes that cost from the hot path: a sharded
//! hash map whose entries carry a *tag* (a [`clarens_db::Store`] bucket
//! generation, or a tuple of them). A lookup is a hit only if the stored
//! tag equals the tag the caller loaded from the store *before* asking, so
//! a cached record can never outlive a write to its backing bucket.
//!
//! The guarantee is one-sided by construction: writers bump the bucket
//! generation inside the store's write-lock scope after mutating, and
//! readers load the generation before reading, so a race can only produce
//! a *spurious miss* (an entry tagged with a superseded generation), never
//! a stale hit. There is no TTL and no background invalidation thread —
//! correctness comes entirely from the epoch comparison.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Number of independent shards (bounds lock contention).
const SHARDS: usize = 16;
/// Per-shard entry cap; a full shard is cleared wholesale. The caches hold
/// compiled ACL nodes, VO groups, sessions, and authorization decisions —
/// all small and cheap to recompute, so eviction never needs to be clever.
const CAP_PER_SHARD: usize = 4096;

/// Monotonic hit/miss counters, reported next to the store's own
/// lookup/scan/write counters (see `system.stats`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache with a current tag.
    pub hits: u64,
    /// Lookups that found nothing (or a superseded tag) and fell through
    /// to the store.
    pub misses: u64,
}

impl CacheStats {
    /// Combine counters from several caches.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A sharded, tag-validated cache. `T` is the tag type — a bucket
/// generation (`u64`), a pair of generations, or `()` for write-through
/// caches that are invalidated explicitly instead of by epoch.
pub struct Sharded<K, V, T = u64> {
    shards: Vec<Mutex<HashMap<K, (T, V)>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq, V: Clone, T: Copy + Eq> Sharded<K, V, T> {
    /// An empty cache.
    pub fn new() -> Self {
        Sharded {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard<Q: Hash + ?Sized>(&self, key: &Q) -> &Mutex<HashMap<K, (T, V)>> {
        let index = self.hasher.hash_one(key) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Look up `key`; a hit requires the stored tag to equal `tag`.
    /// Entries with superseded tags count as misses (and are evicted).
    pub fn get<Q>(&self, key: &Q, tag: T) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut shard = self.shard(key).lock();
        match shard.get(key) {
            Some((stored, value)) if *stored == tag => {
                let value = value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                shard.remove(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) an entry under `tag`.
    pub fn insert(&self, key: K, tag: T, value: V) {
        let mut shard = self.shard(&key).lock();
        if shard.len() >= CAP_PER_SHARD && !shard.contains_key(&key) {
            shard.clear();
        }
        shard.insert(key, (tag, value));
    }

    /// Remove one entry (explicit invalidation for write-through caches).
    pub fn remove<Q>(&self, key: &Q)
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard(key).lock().remove(key);
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<K: Hash + Eq, V: Clone, T: Copy + Eq> Default for Sharded<K, V, T> {
    fn default() -> Self {
        Sharded::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_tag() {
        let cache: Sharded<String, u32> = Sharded::new();
        cache.insert("k".into(), 1, 10);
        assert_eq!(cache.get("k", 1), Some(10));
        // A newer generation invalidates the entry.
        assert_eq!(cache.get("k", 2), None);
        // The stale entry was evicted — even asking with the old tag
        // misses now.
        assert_eq!(cache.get("k", 1), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn remove_and_clear() {
        let cache: Sharded<String, u32, ()> = Sharded::new();
        cache.insert("a".into(), (), 1);
        cache.insert("b".into(), (), 2);
        cache.remove("a");
        assert_eq!(cache.get("a", ()), None);
        assert_eq!(cache.get("b", ()), Some(2));
        cache.clear();
        assert_eq!(cache.get("b", ()), None);
    }

    #[test]
    fn tuple_tags_invalidate_on_either_axis() {
        let cache: Sharded<String, bool, (u64, u64)> = Sharded::new();
        cache.insert("decision".into(), (3, 7), true);
        assert_eq!(cache.get("decision", (3, 7)), Some(true));
        assert_eq!(cache.get("decision", (4, 7)), None);
        cache.insert("decision".into(), (4, 7), true);
        assert_eq!(cache.get("decision", (4, 8)), None);
    }

    #[test]
    fn cap_clears_rather_than_grows_unbounded() {
        let cache: Sharded<u64, u64> = Sharded::new();
        for i in 0..(SHARDS * CAP_PER_SHARD * 2) as u64 {
            cache.insert(i, 0, i);
        }
        let held: usize = (0..(SHARDS * CAP_PER_SHARD * 2) as u64)
            .filter(|i| cache.get(i, 0).is_some())
            .count();
        assert!(held <= SHARDS * CAP_PER_SHARD);
        assert!(held > 0);
    }

    #[test]
    fn merged_stats() {
        let a = CacheStats { hits: 2, misses: 3 };
        let b = CacheStats { hits: 5, misses: 7 };
        assert_eq!(
            a.merged(b),
            CacheStats {
                hits: 7,
                misses: 10
            }
        );
    }
}
