//! Test/bench/example harness: a one-call miniature grid.
//!
//! Building a working Clarens deployment needs a CA, server and user
//! credentials, a configured core, registered services, and a running
//! server. [`TestGrid`] assembles all of it so integration tests, examples,
//! and the benchmark harness share one canonical setup instead of
//! re-deriving it.

use std::path::PathBuf;
use std::sync::Arc;

use clarens_httpd::TlsConfig;
use clarens_pki::cert::{CertificateAuthority, Credential};
use clarens_pki::dn::DistinguishedName;
use clarens_pki::rsa;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::ClarensClient;
use crate::config::ClarensConfig;
use crate::core::ClarensCore;
use crate::server::{install_permissive_acls, register_builtin_services, ClarensServer};

/// Current wall-clock seconds.
pub fn now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// Parse a DN, panicking on error (test helper).
pub fn dn(text: &str) -> DistinguishedName {
    DistinguishedName::parse(text).expect("valid DN")
}

/// A self-contained PKI + server + users fixture.
pub struct TestGrid {
    /// The root CA.
    pub ca: CertificateAuthority,
    /// The server's credential.
    pub server_credential: Credential,
    /// An administrator user (in the configured `admins` group).
    pub admin: Credential,
    /// A regular user.
    pub user: Credential,
    /// The running server.
    pub server: ClarensServer,
    /// Scratch directory backing the file/shell services.
    pub data_dir: PathBuf,
}

/// Options for building a [`TestGrid`].
pub struct GridOptions {
    /// RNG seed for deterministic credentials.
    pub seed: u64,
    /// Enable the TLS transport.
    pub tls: bool,
    /// Install the permissive default ACLs.
    pub permissive_acls: bool,
    /// HTTP worker threads.
    pub workers: usize,
    /// Persist the DB at this path (None = in-memory).
    pub db_path: Option<PathBuf>,
    /// Enable the authorization caches (disable to measure the uncached
    /// request path).
    pub auth_cache: bool,
    /// Enable request span timing (disable to measure the untimed path).
    pub telemetry: bool,
    /// Encode responses with the streaming serializers (disable for the
    /// DOM reference encoders, e.g. in allocation ablations).
    pub streaming_encode: bool,
    /// Accept the negotiated clarens-binary protocol (disable to exercise
    /// the 415 negotiation + client XML-RPC fallback path).
    pub binary_protocol: bool,
    /// Recycle per-worker HTTP buffers across keep-alive requests.
    pub buffer_pool: bool,
    /// Cap on simultaneously live HTTP connections (beyond it: 503 shed).
    pub max_connections: usize,
    /// Park idle keep-alive connections off the worker pool (disable for
    /// the classic thread-per-connection path).
    pub park_idle: bool,
    /// Hand plaintext file-body writes to `sendfile(2)` (disable to force
    /// the portable fixed-buffer copy loop).
    pub zero_copy: bool,
    /// Per-request deadline in milliseconds (`0` disables deadlines).
    pub request_deadline_ms: u64,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            seed: 0xC1A2E5,
            tls: false,
            permissive_acls: true,
            workers: 16,
            db_path: None,
            auth_cache: true,
            telemetry: true,
            streaming_encode: true,
            binary_protocol: true,
            buffer_pool: true,
            max_connections: 4096,
            park_idle: true,
            zero_copy: true,
            request_deadline_ms: 5_000,
        }
    }
}

impl TestGrid {
    /// Build with default options (plaintext, permissive ACLs).
    pub fn start() -> TestGrid {
        TestGrid::start_with(GridOptions::default())
    }

    /// Build with explicit options.
    pub fn start_with(options: GridOptions) -> TestGrid {
        // RSA key generation dominates fixture cost, so the PKI (CA +
        // credentials) is built once per process and shared; the seed is
        // fixed because credentials are identity material, not entropy for
        // the scenario under test.
        struct Pki {
            ca: CertificateAuthority,
            server: Credential,
            admin: Credential,
            user: Credential,
        }
        static PKI: std::sync::OnceLock<Pki> = std::sync::OnceLock::new();
        let pki = PKI.get_or_init(|| {
            let t = now();
            let mut rng = StdRng::seed_from_u64(0xC1A2E5);
            let ca = CertificateAuthority::new(
                &mut rng,
                dn("/O=doesciencegrid.org/CN=Reproduction CA"),
                t - 3600,
                3650,
            );
            let issue = |rng: &mut StdRng, subject: &str| -> Credential {
                let kp = rsa::generate(rng, rsa::DEFAULT_KEY_BITS);
                Credential {
                    certificate: ca.issue(dn(subject), &kp.public, t - 3600, 365),
                    key: kp.private,
                    chain: vec![],
                }
            };
            let server = issue(
                &mut rng,
                "/O=doesciencegrid.org/OU=Services/CN=host\\/clarens.test",
            );
            let admin = issue(&mut rng, "/O=doesciencegrid.org/OU=People/CN=Ada Admin");
            let user = issue(&mut rng, "/O=doesciencegrid.org/OU=People/CN=Uma User");
            Pki {
                ca,
                server,
                admin,
                user,
            }
        });
        let ca = CertificateAuthority::with_keypair(
            clarens_pki::rsa::KeyPair {
                public: pki.ca.key.public.clone(),
                private: pki.ca.key.clone(),
            },
            pki.ca.certificate.subject.clone(),
            pki.ca.certificate.not_before,
            (pki.ca.certificate.not_after - pki.ca.certificate.not_before) / 86_400,
        );
        let server_credential = pki.server.clone();
        let admin = pki.admin.clone();
        let user = pki.user.clone();

        static GRID_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let grid_id = GRID_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let data_dir = std::env::temp_dir().join(format!(
            "clarens-grid-{}-{}-{}",
            std::process::id(),
            options.seed,
            grid_id
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        std::fs::create_dir_all(data_dir.join("files")).expect("create data dir");
        std::fs::create_dir_all(data_dir.join("shell")).expect("create shell dir");

        let config = ClarensConfig {
            server_url: "http://clarens.test/clarens".into(),
            admin_dns: vec![admin.certificate.subject.to_string()],
            file_root: Some(data_dir.join("files")),
            shell_root: Some(data_dir.join("shell")),
            shell_user_map: format!("uma: dn={}\nada: group=admins\n", user.certificate.subject),
            workers: options.workers,
            db_path: options.db_path,
            auth_cache: options.auth_cache,
            telemetry: options.telemetry,
            streaming_encode: options.streaming_encode,
            binary_protocol: options.binary_protocol,
            buffer_pool: options.buffer_pool,
            max_connections: options.max_connections,
            park_idle: options.park_idle,
            zero_copy: options.zero_copy,
            request_deadline_ms: options.request_deadline_ms,
            ..Default::default()
        };

        let core = ClarensCore::new(
            config,
            vec![ca.certificate.clone()],
            server_credential.clone(),
        )
        .expect("core");
        register_builtin_services(&core, None);
        if options.permissive_acls {
            install_permissive_acls(&core);
        }

        let tls = options.tls.then(|| TlsConfig {
            credential: server_credential.clone(),
            roots: vec![ca.certificate.clone()],
        });
        let server = ClarensServer::start(core, "127.0.0.1:0", tls).expect("server");

        TestGrid {
            ca,
            server_credential,
            admin,
            user,
            server,
            data_dir,
        }
    }

    /// The server's address as a string.
    pub fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// A plaintext client holding `credential` (not yet logged in).
    pub fn client(&self, credential: &Credential) -> ClarensClient {
        ClarensClient::new(self.addr()).with_credential(credential.clone())
    }

    /// A plaintext client already logged in as `credential`.
    pub fn logged_in_client(&self, credential: &Credential) -> ClarensClient {
        let mut client = self.client(credential);
        client.login().expect("login");
        client
    }

    /// A TLS client for `credential` (identity flows from the handshake).
    pub fn tls_client(&self, credential: &Credential) -> ClarensClient {
        ClarensClient::new_tls(
            self.addr(),
            credential.clone(),
            vec![self.ca.certificate.clone()],
        )
    }

    /// The shared core of the running server.
    pub fn core(&self) -> &Arc<ClarensCore> {
        &self.server.core
    }

    /// Write a file under the file-service root; returns its virtual path.
    pub fn write_file(&self, virtual_path: &str, contents: &[u8]) -> String {
        let real =
            crate::paths::resolve(&self.data_dir.join("files"), virtual_path).expect("legal path");
        if let Some(parent) = real.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(real, contents).expect("write");
        crate::paths::canonical(virtual_path).expect("canonical")
    }

    /// Remove the scratch directory (call at the end of a test).
    pub fn cleanup(self) {
        let dir = self.data_dir.clone();
        self.server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
